"""repro.telemetry — campaign observability subsystem.

FINJ-style injection tooling treats monitoring and structured log
collection as a first-class subsystem, not an afterthought; this
package is that subsystem for the reproduction's campaigns:

* :mod:`repro.telemetry.metrics` — fork-safe counters, gauges and
  fixed-bucket histograms; workers accumulate locally, the engine
  merges deltas shipped over its existing heartbeat pipe;
* :mod:`repro.telemetry.spans` — phase-timing spans with cross-process
  propagation, emitted as ``trace.jsonl``;
* :mod:`repro.telemetry.progress` — periodic one-line campaign status
  rendered from the merged metrics;
* :mod:`repro.telemetry.exporters` — Prometheus text, JSONL snapshots,
  and a ``util.tables`` summary;
* :mod:`repro.telemetry.clock` — wall/monotonic timestamp pairs used
  by every telemetry event.

:class:`Telemetry` bundles one registry + tracer + output configuration
for a campaign run; :data:`DISABLED` is the zero-cost off switch (null
registry, no-op tracer), and the module-level :func:`current_registry`
/ :func:`current_tracer` give deep code (the Supervisor, benchmark
guards) access to whatever telemetry the enclosing engine activated —
without threading a handle through every call signature.

Telemetry never draws from the campaign's RNG streams and never feeds
back into execution, so enabling it cannot change a single record.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterator

from repro.telemetry.clock import stamp
from repro.telemetry.convergence import (
    CellStats,
    ConvergenceMonitor,
    DriftFlag,
    PVF_OUTCOMES,
)
from repro.telemetry.exporters import (
    append_snapshot,
    parse_prometheus_samples,
    parse_prometheus_series,
    parse_prometheus_text,
    prometheus_text,
    snapshot_record,
    summary_table,
    write_metrics_file,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.telemetry.progress import NOOP_REPORTER, NoopReporter, ProgressReporter
from repro.telemetry.spans import NOOP_TRACER, NoopTracer, Span, SpanContext, Tracer
from repro.util.jsonlog import JsonlLog

__all__ = [
    "CellStats",
    "ConvergenceMonitor",
    "Counter",
    "DEFAULT_BUCKETS",
    "DISABLED",
    "DriftFlag",
    "Gauge",
    "Histogram",
    "JsonlLog",
    "MetricsRegistry",
    "PVF_OUTCOMES",
    "NOOP_REPORTER",
    "NOOP_TRACER",
    "NULL_REGISTRY",
    "NoopReporter",
    "NoopTracer",
    "NullRegistry",
    "ProgressReporter",
    "ShardTelemetry",
    "Span",
    "SpanContext",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "WorkerTelemetry",
    "activate",
    "append_snapshot",
    "current_registry",
    "current_tracer",
    "deactivate",
    "parse_prometheus_samples",
    "parse_prometheus_series",
    "parse_prometheus_text",
    "prometheus_text",
    "snapshot_record",
    "stamp",
    "summary_table",
    "write_metrics_file",
]


# -- ambient telemetry ---------------------------------------------------------

_REGISTRY: MetricsRegistry = NULL_REGISTRY
_TRACER: Any = NOOP_TRACER


def current_registry() -> MetricsRegistry:
    """The metrics registry of the innermost :func:`activate` scope."""
    return _REGISTRY


def current_tracer() -> Any:
    """The tracer of the innermost :func:`activate` scope."""
    return _TRACER


@contextmanager
def activate(registry: MetricsRegistry, tracer: Any) -> Iterator[None]:
    """Make ``registry``/``tracer`` ambient for the duration of the block."""
    global _REGISTRY, _TRACER
    previous = (_REGISTRY, _TRACER)
    _REGISTRY, _TRACER = registry, tracer
    try:
        yield
    finally:
        _REGISTRY, _TRACER = previous


def deactivate() -> None:
    """Hard-reset ambient telemetry to disabled (no restore).

    For processes that inherit an active telemetry scope they can never
    report back through — e.g. the isolation sandbox's grandchild
    workers, whose records travel over their own pipe while spans and
    metrics would silently pile up in a buffer nobody drains.
    """
    global _REGISTRY, _TRACER
    _REGISTRY, _TRACER = NULL_REGISTRY, NOOP_TRACER


# -- configuration and facades -------------------------------------------------


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect and where to put it."""

    metrics: bool = True
    """Collect counters/gauges/histograms (the registry)."""

    metrics_path: str | Path | None = None
    """Where :meth:`Telemetry.finalize` exports the registry:
    ``.json``/``.jsonl`` appends a snapshot record, anything else
    writes Prometheus text.  ``None`` skips the export."""

    trace_path: str | Path | None = None
    """``trace.jsonl`` destination; ``None`` disables span tracing."""

    progress_interval_s: float | None = None
    """Status-line period for the live progress reporter; ``None``
    disables the reporter."""

    progress_stream: IO[str] | None = None
    """Stream for progress lines (default: ``sys.stderr``)."""


@dataclass(frozen=True)
class ShardTelemetry:
    """Picklable telemetry coordinates for one shard worker process."""

    metrics: bool = False
    trace: bool = False
    context: SpanContext | None = None

    @property
    def enabled(self) -> bool:
        return self.metrics or self.trace


class Telemetry:
    """One campaign-side telemetry bundle: registry, tracer, outputs.

    Reusable across several campaigns in one invocation (the experiment
    runner shares a single bundle so the exported registry covers the
    whole session).  With ``enabled=False`` — or via the shared
    :data:`DISABLED` instance — every component is the corresponding
    no-op singleton and the bundle costs nothing.
    """

    def __init__(self, config: TelemetryConfig | None = None, *, enabled: bool = True):
        self.config = config or TelemetryConfig()
        self.enabled = bool(enabled)
        collect = self.enabled and self.config.metrics
        self.registry: MetricsRegistry = MetricsRegistry() if collect else NULL_REGISTRY
        self._trace_log: JsonlLog | None = None
        if self.enabled and self.config.trace_path is not None:
            self.tracer: Any = Tracer(
                self.trace_write, trace_id=f"{os.getpid():x}-{time.monotonic_ns():x}"
            )
        else:
            self.tracer = NOOP_TRACER

    # -- traces ----------------------------------------------------------------

    @property
    def tracing(self) -> bool:
        return self.tracer is not NOOP_TRACER

    def trace_write(self, record: dict[str, Any]) -> None:
        """Append one span dict to ``trace.jsonl`` (lazily opened)."""
        if self.config.trace_path is None:
            return
        if self._trace_log is None:
            self._trace_log = JsonlLog(self.config.trace_path)
        self._trace_log.append(record)

    # -- engine integration ----------------------------------------------------

    def activate(self) -> Any:
        """Context manager making this bundle the ambient telemetry."""
        return activate(self.registry, self.tracer)

    def progress_reporter(self, total_runs: int, label: str = "campaign") -> Any:
        if not self.enabled or self.config.progress_interval_s is None:
            return NOOP_REPORTER
        return ProgressReporter(
            self.registry,
            total_runs,
            interval_s=self.config.progress_interval_s,
            stream=self.config.progress_stream,
            label=label,
        )

    def shard_telemetry(self) -> ShardTelemetry:
        """The picklable payload shard workers rebuild their side from."""
        if not self.enabled:
            return ShardTelemetry()
        return ShardTelemetry(
            metrics=self.registry.enabled,
            trace=self.tracing,
            context=self.tracer.current_context() if self.tracing else None,
        )

    # -- finalisation ----------------------------------------------------------

    def finalize(self) -> Path | None:
        """Flush outputs: export the registry, close the trace log."""
        exported: Path | None = None
        if self.enabled and self.config.metrics_path is not None:
            exported = write_metrics_file(self.registry, self.config.metrics_path)
        if self._trace_log is not None:
            self._trace_log.close()
            self._trace_log = None
        return exported

    def close(self) -> None:
        self.finalize()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class WorkerTelemetry:
    """A shard worker's local accumulator, rebuilt from :class:`ShardTelemetry`.

    The worker's registry and span buffer fill locally (no locks, no
    shared state); :meth:`drain` hands back whatever accumulated since
    the previous drain, ready to ship over the heartbeat pipe.
    """

    def __init__(self, shard: ShardTelemetry):
        self.registry: MetricsRegistry = MetricsRegistry() if shard.metrics else NULL_REGISTRY
        self._spans: list[dict[str, Any]] = []
        if shard.trace:
            self.tracer: Any = Tracer(self._spans.append, parent=shard.context)
        else:
            self.tracer = NOOP_TRACER

    def activate(self) -> Any:
        return activate(self.registry, self.tracer)

    def drain(self) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """``(metrics_delta, finished_spans)`` accumulated since last drain."""
        delta = self.registry.drain_delta() if self.registry.enabled else {}
        # Clear in place: the tracer's sink is bound to this exact list.
        spans = list(self._spans)
        self._spans.clear()
        return delta, spans


#: The shared zero-cost disabled bundle (default wherever telemetry is optional).
DISABLED = Telemetry(enabled=False)
