"""Streaming statistical convergence monitoring for injection campaigns.

The engine's telemetry (PR 3) answers "how fast is the campaign
running"; this module answers the question the paper's conclusions
actually rest on — "has the *science* converged?".  Every PVF,
outcome-rate and FIT figure is a binomial proportion whose confidence
interval narrows as injections accumulate, so a campaign should run
exactly as many injections as the target precision requires and no
more.

:class:`ConvergenceMonitor` consumes injection records incrementally
(as the engine merges shard results, or post-hoc from a campaign log)
and maintains, per ``(benchmark, fault_model)`` cell:

* streaming outcome counts (Masked/SDC/DUE) and per-execution-window
  counts — enough to recompute every PVF slice of the paper;
* Wilson or anytime-valid confidence intervals for the SDC and DUE
  rates (:func:`repro.util.stats.wilson_ci` /
  :func:`repro.util.stats.anytime_proportion_ci`), exposed through the
  :meth:`ConvergenceMonitor.converged` predicate the engine uses for
  optional early stopping (``--target-ci``);
* per-shard outcome counts feeding a **cross-shard drift detector**
  (pooled two-proportion z-test of each shard against the rest of the
  campaign, Bonferroni-corrected) that catches seed bugs and
  nondeterminism the bit-identity tests cannot see at campaign scale —
  a shard whose SDC rate is statistically incompatible with its peers
  is flagged, because under the engine's determinism contract every
  shard samples the same underlying outcome distribution.

The monitor is pure bookkeeping: it never draws randomness, never
touches benchmark state, and costs a few dict increments per record,
so feeding it cannot perturb a single campaign record.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.util.stats import (
    CountEstimate,
    anytime_proportion_ci,
    two_proportion_z,
    wilson_ci,
)

__all__ = [
    "CellKey",
    "CellStats",
    "ConvergenceMonitor",
    "DriftFlag",
    "PVF_OUTCOMES",
]

#: One statistical cell: ``(benchmark, fault_model)``.
CellKey = tuple[str, str]

#: The outcome rates a convergence target applies to.  Masked is the
#: complement of these two, so its interval is never the binding one.
PVF_OUTCOMES: tuple[str, ...] = ("sdc", "due")

#: Supported interval constructions (see DESIGN §10 for the trade-off).
_INTERVALS = {"wilson": wilson_ci, "anytime": anytime_proportion_ci}


def _record_fields(record: Any) -> tuple[str, str, str, int]:
    """``(benchmark, fault_model, outcome, time_window)`` from a record.

    Accepts :class:`~repro.faults.outcome.InjectionRecord` instances and
    the plain dicts found in ``campaign.jsonl`` / shard checkpoints, so
    live engines and post-hoc log readers feed one code path.
    """
    if isinstance(record, Mapping):
        outcome = record["outcome"]
        return (
            str(record["benchmark"]),
            str(record["fault_model"]),
            str(getattr(outcome, "value", outcome)),
            int(record["time_window"]),
        )
    return (
        record.benchmark,
        record.fault_model,
        record.outcome.value,
        int(record.time_window),
    )


@dataclass
class CellStats:
    """Streaming counts of one ``(benchmark, fault_model)`` cell."""

    total: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    windows: dict[int, dict[str, int]] = field(default_factory=dict)
    shards: dict[int, dict[str, int]] = field(default_factory=dict)
    shard_totals: dict[int, int] = field(default_factory=dict)

    def add(self, outcome: str, window: int, shard: int | None) -> None:
        self.total += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        per_window = self.windows.setdefault(window, {})
        per_window[outcome] = per_window.get(outcome, 0) + 1
        if shard is not None:
            per_shard = self.shards.setdefault(shard, {})
            per_shard[outcome] = per_shard.get(outcome, 0) + 1
            self.shard_totals[shard] = self.shard_totals.get(shard, 0) + 1


@dataclass(frozen=True)
class DriftFlag:
    """One shard whose outcome rate is incompatible with its peers."""

    benchmark: str
    fault_model: str
    shard: int
    outcome: str
    shard_rate: float
    rest_rate: float
    shard_runs: int
    rest_runs: int
    z: float
    p_value: float
    alpha_per_test: float

    def to_dict(self) -> dict[str, Any]:
        """The ``failures.jsonl`` event payload for this flag."""
        return {
            "event": "drift",
            "benchmark": self.benchmark,
            "fault_model": self.fault_model,
            "shard": self.shard,
            "outcome": self.outcome,
            "shard_rate": round(self.shard_rate, 6),
            "rest_rate": round(self.rest_rate, 6),
            "shard_runs": self.shard_runs,
            "rest_runs": self.rest_runs,
            "z": round(self.z, 4),
            "p_value": self.p_value,
            "alpha_per_test": self.alpha_per_test,
        }


class ConvergenceMonitor:
    """Streaming per-cell outcome statistics with CIs and drift tests.

    ``interval`` selects the CI construction: ``"wilson"`` (fixed-n,
    the paper's reporting interval) or ``"anytime"`` (valid under
    continuous monitoring; conservative, never optimistic).  The engine
    checks convergence only at shard-merge boundaries, bounding the
    number of peeks by the shard count; see DESIGN §10 for why that
    keeps the Wilson default honest and when to prefer ``"anytime"``.
    """

    def __init__(self, confidence: float = 0.95, interval: str = "wilson"):
        if interval not in _INTERVALS:
            raise ValueError(f"interval must be one of {sorted(_INTERVALS)}, not {interval!r}")
        if not 0 < confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        self.confidence = confidence
        self.interval = interval
        self._ci = _INTERVALS[interval]
        self._cells: dict[CellKey, CellStats] = {}
        self.runs = 0

    # -- ingestion -------------------------------------------------------------

    def observe(self, record: Any, shard: int | None = None) -> None:
        """Fold one injection record (object or dict) into the counts."""
        benchmark, model, outcome, window = _record_fields(record)
        cell = self._cells.setdefault((benchmark, model), CellStats())
        cell.add(outcome, window, shard)
        self.runs += 1

    def observe_all(self, records: Iterable[Any], shard: int | None = None) -> None:
        for record in records:
            self.observe(record, shard=shard)

    # -- per-cell reads --------------------------------------------------------

    def cells(self) -> list[CellKey]:
        return sorted(self._cells)

    def cell(self, benchmark: str, fault_model: str) -> CellStats:
        return self._cells[(benchmark, fault_model)]

    def counts(self, benchmark: str, fault_model: str) -> dict[str, int]:
        """Outcome counts of one cell (missing outcomes read as 0)."""
        stats = self._cells[(benchmark, fault_model)]
        return {o: stats.outcomes.get(o, 0) for o in ("masked", "sdc", "due")}

    def ci(self, benchmark: str, fault_model: str, outcome: str) -> CountEstimate:
        """The cell's streaming CI for ``P(outcome | fault)``."""
        stats = self._cells[(benchmark, fault_model)]
        return self._ci(stats.outcomes.get(outcome, 0), stats.total, self.confidence)

    def half_width(self, benchmark: str, fault_model: str, outcome: str) -> float:
        estimate = self.ci(benchmark, fault_model, outcome)
        return (estimate.upper - estimate.lower) / 2.0

    def window_pvf(
        self, benchmark: str, fault_model: str, outcome: str = "sdc"
    ) -> dict[int, CountEstimate]:
        """Per-execution-window outcome estimate of one cell (Figure 6's slices)."""
        stats = self._cells[(benchmark, fault_model)]
        out: dict[int, CountEstimate] = {}
        for window in sorted(stats.windows):
            per_window = stats.windows[window]
            trials = sum(per_window.values())
            out[window] = self._ci(per_window.get(outcome, 0), trials, self.confidence)
        return out

    # -- convergence -----------------------------------------------------------

    def max_half_width(self, outcomes: tuple[str, ...] = PVF_OUTCOMES) -> float:
        """Widest CI half-width across every cell and target outcome.

        ``inf`` while no records have been observed — an empty campaign
        has not converged on anything.
        """
        if not self._cells:
            return math.inf
        widest = 0.0
        for benchmark, model in self._cells:
            for outcome in outcomes:
                widest = max(widest, self.half_width(benchmark, model, outcome))
        return widest

    def converged(
        self,
        target_halfwidth: float,
        outcomes: tuple[str, ...] = PVF_OUTCOMES,
        min_cell_runs: int = 1,
    ) -> bool:
        """True when every cell's CI half-width is at or below target.

        ``min_cell_runs`` guards the first few merges: a cell that has
        not yet reached it keeps the campaign unconverged no matter how
        narrow its (degenerate) interval is.
        """
        if target_halfwidth <= 0:
            raise ValueError("target_halfwidth must be positive")
        if not self._cells:
            return False
        if any(stats.total < min_cell_runs for stats in self._cells.values()):
            return False
        return self.max_half_width(outcomes) <= target_halfwidth

    # -- cross-shard drift -----------------------------------------------------

    def drift_flags(
        self,
        alpha: float = 0.01,
        outcomes: tuple[str, ...] = PVF_OUTCOMES,
        min_shard_runs: int = 8,
    ) -> list[DriftFlag]:
        """Shards whose outcome rates are incompatible with their peers.

        Per cell and outcome, each shard with at least ``min_shard_runs``
        records is z-tested against the pooled rest of the cell.  With a
        cell-count × shard-count × outcome-count family of tests, raw
        per-test p-values would flag *some* healthy shard in any big
        campaign, so ``alpha`` is the **family-wise** error rate and
        each test runs at ``alpha / n_tests`` (Bonferroni) — a flag
        means "statistically wrong", not "mildly unlucky".
        """
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        tests: list[tuple[CellKey, int, str, int, int, int, int]] = []
        for key in sorted(self._cells):
            stats = self._cells[key]
            for shard in sorted(stats.shards):
                n_shard = stats.shard_totals[shard]
                n_rest = stats.total - n_shard
                if n_shard < min_shard_runs or n_rest < min_shard_runs:
                    continue
                for outcome in outcomes:
                    hits_shard = stats.shards[shard].get(outcome, 0)
                    hits_rest = stats.outcomes.get(outcome, 0) - hits_shard
                    tests.append((key, shard, outcome, hits_shard, n_shard, hits_rest, n_rest))
        if not tests:
            return []
        per_test = alpha / len(tests)
        flags: list[DriftFlag] = []
        for (benchmark, model), shard, outcome, x1, n1, x2, n2 in tests:
            z, p_value = two_proportion_z(x1, n1, x2, n2)
            if p_value < per_test:
                flags.append(
                    DriftFlag(
                        benchmark=benchmark,
                        fault_model=model,
                        shard=shard,
                        outcome=outcome,
                        shard_rate=x1 / n1,
                        rest_rate=x2 / n2,
                        shard_runs=n1,
                        rest_runs=n2,
                        z=z,
                        p_value=p_value,
                        alpha_per_test=per_test,
                    )
                )
        return flags

    # -- reporting -------------------------------------------------------------

    def summary_rows(self) -> list[list[object]]:
        """``util.tables`` rows: one per cell, rates ± CI half-widths."""
        rows: list[list[object]] = []
        for benchmark, model in self.cells():
            stats = self._cells[(benchmark, model)]
            cells: list[object] = [benchmark, model, stats.total]
            for outcome in ("masked", "sdc", "due"):
                estimate = self.ci(benchmark, model, outcome)
                half = (estimate.upper - estimate.lower) / 2.0
                cells.append(f"{estimate.value:.4f} ±{half:.4f}")
            rows.append(cells)
        return rows
