"""Live one-line campaign progress rendered from merged metrics.

The engine's :class:`~repro.carolfi.engine.ShardProgress` heartbeats are
per-event; operators of a 90k-injection campaign want the opposite — a
periodic, single-line rollup answering "how far along, how fast, what
outcome mix, anything unhealthy".  :class:`ProgressReporter` renders
exactly that from the engine's (merged) metrics registry::

    [dgemm] 480/1600 runs 30.0% | 52.1/s eta 21s | masked 301 sdc 102
    due 77 | retries 1 quarantined 0 | slowest shard 7 (12/100)

The reporter is pull-based and rate-limited: the engine calls
:meth:`ProgressReporter.tick` as often as it likes (every supervision
loop iteration, every finished run) and a line is emitted at most once
per ``interval_s``.  A disabled reporter (:data:`NOOP_REPORTER`) makes
``tick`` a constant no-op.
"""

from __future__ import annotations

import math
import sys
import time
from typing import IO, Any

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["NOOP_REPORTER", "NoopReporter", "ProgressReporter"]

#: Failure-event names surfaced on the status line, with short labels.
_EVENT_LABELS = (
    ("retry", "retries"),
    ("quarantine", "quarantined"),
    ("reap", "reaped"),
)


class ProgressReporter:
    """Periodic one-line status renderer over a metrics registry.

    ETA discipline: the rate is estimated from *live* runs only
    (checkpoint replays complete thousands of runs in milliseconds and
    would make any blended rate meaningless), and no finite ETA is
    shown until at least ``eta_warmup_s`` of wall clock and one live
    run have accumulated — a resumed campaign's first ticks otherwise
    extrapolate a near-zero elapsed window into an absurdly optimistic
    ETA.  All counter deltas are clamped at zero so a baseline taken
    against a shared registry can never render negative progress.
    """

    #: Minimum observation window before a finite ETA is trusted.
    eta_warmup_s = 1.0

    def __init__(
        self,
        registry: MetricsRegistry,
        total_runs: int,
        interval_s: float = 10.0,
        stream: IO[str] | None = None,
        label: str = "campaign",
    ):
        if total_runs < 1:
            raise ValueError("total_runs must be positive")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.registry = registry
        self.total_runs = total_runs
        self.interval_s = float(interval_s)
        self.stream = stream
        self.label = label
        self._started = time.monotonic()
        self._last_emit = self._started
        # The registry may span several campaigns (the experiment runner
        # shares one bundle); baseline every counter at construction so
        # this reporter shows only its own campaign's progress.
        self._base: dict[tuple[str, str], dict[str, float]] = {}
        for name, label_key in (
            ("repro_runs_total", "outcome"),
            ("repro_failure_events_total", "event"),
        ):
            self._base[(name, label_key)] = self._raw_counter_by_label(name, label_key)
        self._base_replayed = float(self.registry.counter("repro_runs_replayed_total").value())

    # -- data ------------------------------------------------------------------

    def _raw_counter_by_label(self, name: str, label: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for labels, value in self.registry.counter(name).items():
            key = labels.get(label)
            if key is not None:
                out[key] = out.get(key, 0.0) + float(value)
        return out

    def _counter_by_label(self, name: str, label: str) -> dict[str, float]:
        current = self._raw_counter_by_label(name, label)
        base = self._base.get((name, label), {})
        return {k: max(0.0, v - base.get(k, 0.0)) for k, v in current.items()}

    def _replayed(self) -> float:
        return max(
            0.0,
            float(self.registry.counter("repro_runs_replayed_total").value())
            - self._base_replayed,
        )

    def _slowest_shard(self) -> tuple[int, int, int] | None:
        """(shard, done, planned) of the least-finished in-flight shard."""
        planned = {
            int(labels["shard"]): int(value)
            for labels, value in self.registry.gauge("repro_shard_runs_planned").items()
            if "shard" in labels
        }
        done = {
            int(labels["shard"]): int(value)
            for labels, value in self.registry.gauge("repro_shard_runs_done").items()
            if "shard" in labels
        }
        slowest: tuple[float, int, int, int] | None = None
        for shard, total in planned.items():
            finished = min(done.get(shard, 0), total)
            if total <= 0 or finished >= total:
                continue
            fraction = finished / total
            if slowest is None or fraction < slowest[0]:
                slowest = (fraction, shard, finished, total)
        if slowest is None:
            return None
        return slowest[1], slowest[2], slowest[3]

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        """The status line for the registry's current state."""
        outcomes = self._counter_by_label("repro_runs_total", "outcome")
        executed = max(0.0, sum(outcomes.values()))
        replayed = self._replayed()
        done = min(executed + replayed, float(self.total_runs))
        elapsed = max(time.monotonic() - self._started, 1e-9)
        rate = executed / elapsed
        remaining = max(self.total_runs - done, 0.0)
        if remaining == 0:
            eta = "0s"
        elif rate <= 0 or elapsed < self.eta_warmup_s:
            # No live runs yet, or too small a window to extrapolate —
            # a resumed campaign's burst of replays plus a few quick
            # runs is not a rate.
            eta = "?"
        else:
            projected = remaining / rate
            eta = f"{projected:.0f}s" if math.isfinite(projected) and projected >= 0 else "?"
        parts = [
            f"[{self.label}] {done:.0f}/{self.total_runs} runs "
            f"{100.0 * done / self.total_runs:.1f}% | {rate:.1f}/s eta {eta}",
            " ".join(
                f"{name} {outcomes.get(name, 0.0):.0f}" for name in ("masked", "sdc", "due")
            ),
        ]
        if replayed:
            parts[-1] += f" replayed {replayed:.0f}"
        events = self._counter_by_label("repro_failure_events_total", "event")
        health = " ".join(f"{shown} {events.get(name, 0.0):.0f}" for name, shown in _EVENT_LABELS)
        parts.append(health)
        slowest = self._slowest_shard()
        if slowest is not None:
            shard, finished, total = slowest
            parts.append(f"slowest shard {shard} ({finished}/{total})")
        return " | ".join(parts)

    def tick(self, force: bool = False) -> str | None:
        """Emit the status line if ``interval_s`` has elapsed (or forced)."""
        now = time.monotonic()
        if not force and now - self._last_emit < self.interval_s:
            return None
        self._last_emit = now
        line = self.render()
        stream = self.stream if self.stream is not None else sys.stderr
        print(line, file=stream, flush=True)
        return line


class NoopReporter:
    """Disabled reporter; ``tick`` costs one call and a comparison."""

    interval_s = math.inf

    def tick(self, force: bool = False) -> str | None:
        return None

    def render(self) -> str:
        return ""


#: Process-wide disabled reporter.
NOOP_REPORTER: Any = NoopReporter()
