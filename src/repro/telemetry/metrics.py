"""Fork-safe metrics: counters, gauges, fixed-bucket histograms.

The campaign engine fans out over worker processes, so a classic
shared-registry design (locks, shared memory) would couple telemetry to
the execution topology.  Instead every process owns a plain, lock-free
:class:`MetricsRegistry` and the *wire format* does the merging:

* a worker accumulates locally and periodically ships
  :meth:`MetricsRegistry.drain_delta` over the engine's existing
  heartbeat pipe;
* the engine folds each delta into its own registry with
  :meth:`MetricsRegistry.merge`.

Counters and histogram buckets merge by addition, gauges by
last-writer-wins, so a serial campaign (one registry, no merging) and a
parallel one (N registries, merged) report identical counter totals.

Disabled telemetry uses :data:`NULL_REGISTRY`, whose instruments are
shared no-op singletons: instrumented code pays one attribute lookup
and one no-op call, nothing else — and, critically, telemetry never
touches the campaign's RNG streams, so records stay bit-identical.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
]

#: Label set -> canonical hashable key ("outcome"="sdc" -> (("outcome","sdc"),)).
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds): spans injection runs
#: (~ms) through golden runs and whole shards (~minutes).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
    600.0,
)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _key_to_wire(key: LabelKey) -> list[list[str]]:
    return [[k, v] for k, v in key]


def _key_from_wire(pairs: Sequence[Sequence[str]]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in pairs))


class Metric:
    """Shared bookkeeping: values plus a since-last-drain delta."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, Any] = {}
        self._delta: dict[LabelKey, Any] = {}

    def items(self) -> Iterator[tuple[dict[str, str], Any]]:
        """Iterate ``(labels, value)`` pairs in sorted label order."""
        for key in sorted(self._values):
            yield dict(key), self._values[key]

    def _wire_values(self, values: Mapping[LabelKey, Any]) -> list[list[Any]]:
        return [[_key_to_wire(key), values[key]] for key in sorted(values)]

    def to_wire(self, *, delta: bool = False) -> dict[str, Any]:
        source = self._delta if delta else self._values
        payload: dict[str, Any] = {
            "kind": self.kind,
            "help": self.help,
            "values": self._wire_values(source),
        }
        return payload

    def clear_delta(self) -> None:
        self._delta = {}


class Counter(Metric):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount
        self._delta[key] = self._delta.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def total(self) -> float:
        return float(sum(self._values.values()))

    def merge_wire(self, values: Sequence[Sequence[Any]]) -> None:
        for pairs, amount in values:
            key = _key_from_wire(pairs)
            self._values[key] = self._values.get(key, 0.0) + float(amount)


class Gauge(Metric):
    """Point-in-time value; merge keeps the most recent write."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = float(value)
        self._delta[key] = float(value)

    def value(self, **labels: Any) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def merge_wire(self, values: Sequence[Sequence[Any]]) -> None:
        for pairs, value in values:
            self._values[_key_from_wire(pairs)] = float(value)


class Histogram(Metric):
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound it does not exceed, or in the implicit ``+Inf`` slot.
    The bounds are part of the wire format and must match to merge —
    histograms from differently-configured registries never mix
    silently.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be non-empty, sorted, unique")
        self.buckets = bounds

    def _slot(self, key: LabelKey, store: dict[LabelKey, Any]) -> dict[str, Any]:
        slot = store.get(key)
        if slot is None:
            slot = {"buckets": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
            store[key] = slot
        return slot

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        key = _label_key(labels)
        for store in (self._values, self._delta):
            slot = self._slot(key, store)
            slot["buckets"][index] += 1
            slot["sum"] += value
            slot["count"] += 1

    def count(self, **labels: Any) -> int:
        slot = self._values.get(_label_key(labels))
        return 0 if slot is None else int(slot["count"])

    def sum(self, **labels: Any) -> float:
        slot = self._values.get(_label_key(labels))
        return 0.0 if slot is None else float(slot["sum"])

    def to_wire(self, *, delta: bool = False) -> dict[str, Any]:
        payload = super().to_wire(delta=delta)
        payload["buckets"] = list(self.buckets)
        return payload

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimate the ``q``-quantile from bucket counts.

        Linear interpolation within the winning bucket, the same
        estimate ``histogram_quantile`` computes server-side in
        Prometheus.  With ``labels`` only that series is read; without,
        every label set is aggregated (the fleet view).  Observations in
        the ``+Inf`` overflow bucket clamp to the largest finite bound.
        Returns ``None`` when no observation matched.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if labels:
            slots = [self._values.get(_label_key(labels))]
        else:
            slots = list(self._values.values())
        counts = [0] * (len(self.buckets) + 1)
        total = 0
        for slot in slots:
            if slot is None:
                continue
            for i, n in enumerate(slot["buckets"]):
                counts[i] += int(n)
            total += int(slot["count"])
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            before = cumulative
            cumulative += counts[i]
            if cumulative >= rank and counts[i] > 0:
                fraction = (rank - before) / counts[i]
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
            lower = bound
        return self.buckets[-1]

    def merge_wire(self, values: Sequence[Sequence[Any]]) -> None:
        for pairs, incoming in values:
            slot = self._slot(_key_from_wire(pairs), self._values)
            if len(incoming["buckets"]) != len(slot["buckets"]):
                raise ValueError(f"histogram {self.name}: bucket layout mismatch")
            for i, n in enumerate(incoming["buckets"]):
                slot["buckets"][i] += int(n)
            slot["sum"] += float(incoming["sum"])
            slot["count"] += int(incoming["count"])


class MetricsRegistry:
    """One process's metrics, mergeable across processes via dicts."""

    #: False on :class:`NullRegistry`; hot paths may use this to skip
    #: work whose only purpose is feeding an instrument.
    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, factory: Any, **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {factory.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)  # type: ignore[no-any-return]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)  # type: ignore[no-any-return]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)  # type: ignore[no-any-return]

    def metrics(self) -> list[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # -- wire format -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Full state as a JSON-serialisable dict (totals, not deltas)."""
        return {name: metric.to_wire() for name, metric in sorted(self._metrics.items())}

    def drain_delta(self) -> dict[str, Any]:
        """Changes since the previous drain, clearing the delta buffer.

        The result merges into another registry exactly once; draining
        after every unit of work gives at-most-once loss (a killed
        worker loses only its undrained tail) and no double counting.
        Metrics with no changes are omitted; an idle registry drains to
        ``{}`` so callers can skip the send entirely.
        """
        out: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if metric._delta:
                out[name] = metric.to_wire(delta=True)
                metric.clear_delta()
        return out

    def merge(self, payload: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` or :meth:`drain_delta` dict into this registry."""
        factories = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for name, wire in payload.items():
            kind = wire.get("kind")
            factory = factories.get(kind)
            if factory is None:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            kwargs: dict[str, Any] = {"help": wire.get("help", "")}
            if factory is Histogram:
                kwargs["buckets"] = wire.get("buckets", DEFAULT_BUCKETS)
            metric = self._get(name, factory, **kwargs)
            metric.merge_wire(wire.get("values", []))

    # -- cheap reads for reporters and tests -----------------------------------

    def counter_values(self) -> dict[str, dict[str, float]]:
        """All counters as ``{name: {rendered-labels: value}}``.

        Label sets render as ``k=v,k=v`` (sorted) or ``""`` when bare —
        a stable, comparison-friendly shape for equivalence tests.
        """
        out: dict[str, dict[str, float]] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter):
                out[metric.name] = {
                    ",".join(f"{k}={v}" for k, v in sorted(labels.items())): value
                    for labels, value in metric.items()
                }
        return out


class _NullInstrument:
    """Accepts any instrument call and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def quantile(self, q: float, **labels: Any) -> float | None:
        return None

    def items(self) -> Iterator[tuple[dict[str, str], Any]]:
        return iter(())


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def merge(self, payload: Mapping[str, Any]) -> None:
        pass


#: Process-wide disabled registry (instruments are stateless, sharing is safe).
NULL_REGISTRY = NullRegistry()
