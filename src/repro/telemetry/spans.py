"""Phase timing: spans, tracers, and cross-process propagation.

A :class:`Span` times one phase of campaign execution (golden run,
corrupt, resume, compare, checkpoint write, a whole shard...).  Spans
nest: a :class:`Tracer` keeps the stack of open spans, and every span
records its parent, so the emitted events reconstruct into a tree.

Cross-process propagation is deliberately primitive — a
:class:`SpanContext` (trace id + parent span id) is a tiny frozen
dataclass the engine pickles into each shard worker's arguments.  The
worker builds its own tracer under that context, buffers finished
spans locally, and the engine folds the batches into one
``trace.jsonl``.  Span ids are ``pid.sequence`` pairs: unique across
the process tree without consuming randomness (telemetry must never
touch the campaign's RNG streams).

Each finished span is one JSONL dict (``kind: "span"``) readable with
:func:`repro.util.jsonlog.load_records_tolerant`, with the wall and
monotonic clocks of :mod:`repro.telemetry.clock`.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.telemetry.clock import stamp

__all__ = ["NOOP_TRACER", "NoopTracer", "Span", "SpanContext", "Tracer"]

SpanSink = Callable[[dict[str, Any]], None]


@dataclass(frozen=True)
class SpanContext:
    """The picklable coordinates a child process continues a trace from.

    Also JSON-serialisable (:meth:`to_wire` / :meth:`from_wire`) so the
    broker can attach it to lease frames and a ``repro-worker`` on
    another host can continue the campaign trace.
    """

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "SpanContext":
        return cls(trace_id=str(data["trace_id"]), span_id=str(data["span_id"]))


class Span:
    """One timed phase; use as a context manager (``with tracer.span(...)``)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_wall", "t_mono", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict[str, Any],
    ):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self._tracer = tracer
        start = stamp()
        self.t_wall = start["t_wall"]
        self.t_mono = start["t_mono"]

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    @property
    def context(self) -> SpanContext:
        return SpanContext(self._tracer.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._tracer._finish(self, exc)


class Tracer:
    """Creates spans and emits finished ones to a sink, one dict each.

    ``sink`` is any callable taking the span dict: ``JsonlLog.append``
    writes straight to ``trace.jsonl`` (serial engine), ``list.append``
    buffers for pipe shipment (shard workers).
    """

    enabled = True

    def __init__(
        self,
        sink: SpanSink,
        trace_id: str | None = None,
        parent: SpanContext | None = None,
    ):
        self._sink = sink
        if parent is not None:
            trace_id = parent.trace_id
        self.trace_id = trace_id or f"{os.getpid():x}-{time.monotonic_ns():x}"
        self._root_parent = parent.span_id if parent is not None else None
        self._stack: list[Span] = []
        self._seq = 0

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span; close it via the context-manager protocol."""
        self._seq += 1
        parent_id = self._stack[-1].span_id if self._stack else self._root_parent
        span = Span(self, name, f"{os.getpid():x}.{self._seq:x}", parent_id, attrs)
        self._stack.append(span)
        return span

    def current_context(self) -> SpanContext | None:
        """Context of the innermost open span (for child-process handoff)."""
        if self._stack:
            return self._stack[-1].context
        if self._root_parent is not None:
            return SpanContext(self.trace_id, self._root_parent)
        return None

    def _finish(self, span: Span, exc: Any) -> None:
        # Exiting out of order (an outer `with` unwinding past an inner
        # span leaked by an exception) still pops the inner ones.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        record: dict[str, Any] = {
            "kind": "span",
            "trace": self.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "pid": os.getpid(),
            "t_wall": span.t_wall,
            "t_mono": span.t_mono,
            "dur_s": max(0.0, time.monotonic() - span.t_mono),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if exc is not None:
            record["error"] = type(exc).__name__
        self._sink(record)


class _NoopSpan:
    """Shared do-nothing span for disabled tracing."""

    __slots__ = ()
    attrs: dict[str, Any] = {}

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: every span is the shared no-op singleton."""

    enabled = False
    trace_id = ""

    def span(self, name: str, **attrs: Any) -> Any:
        return _NOOP_SPAN

    def current_context(self) -> SpanContext | None:
        return None


#: Process-wide disabled tracer.
NOOP_TRACER = NoopTracer()
