"""Wall/monotonic timestamp pairs for telemetry events.

Campaign artifacts are written across process boundaries and survive
NTP slews, suspend/resume and manual clock changes, so a single
``time.time()`` stamp is not enough to order events reliably.  Every
telemetry event therefore carries *both* clocks:

* ``t_wall`` — ``time.time()``: human-readable, comparable across
  machines, but not monotonic;
* ``t_mono`` — ``time.monotonic()``: strictly ordered within one boot,
  immune to clock adjustments, but meaningless across hosts.

Readers order events by ``t_mono`` (same host) and display ``t_wall``.
"""

from __future__ import annotations

import time

__all__ = ["stamp"]


def stamp() -> dict[str, float]:
    """A fresh ``{"t_wall": ..., "t_mono": ...}`` pair for one event."""
    return {"t_wall": time.time(), "t_mono": time.monotonic()}
