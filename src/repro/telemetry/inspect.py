"""``repro-inspect`` — post-hoc campaign analytics over telemetry artifacts.

A finished (or checkpointed) campaign leaves a directory of structured
artifacts: ``campaign.jsonl`` (or per-shard ``shard-*.jsonl``
checkpoints), ``trace.jsonl`` spans, ``failures.jsonl`` events, and a
Prometheus metrics snapshot.  This module joins them into one report —
the analytical counterpart of the live progress line:

* an **outcome matrix** per ``(benchmark, fault_model)`` cell with
  Wilson or anytime-valid confidence intervals
  (:class:`~repro.telemetry.convergence.ConvergenceMonitor` replayed
  over the log);
* **convergence curves** — CI half-width versus runs — showing whether
  the campaign earned its precision or wasted injections past it;
* a **span waterfall**: per-phase time aggregates and the slowest
  shards, from ``trace.jsonl``;
* **cross-shard drift** recomputed post-hoc when the shard structure is
  known (checkpoint files present);
* a **reconciliation** check that the exported
  ``repro_records_total`` metric agrees with the campaign log —
  ``--strict`` turns a mismatch into a nonzero exit, so CI can use the
  report as an integrity gate;
* ``--diff``: cell-by-cell two-proportion z-tests between two
  campaigns (e.g. before/after an engine change).

Every JSONL artifact is read with the tolerant reader; skipped corrupt
lines are *surfaced* (per-file counts in the overview, plus a
``repro_corrupt_lines_total`` counter on the analysis registry), never
silently dropped.  Output is ``util.tables`` text on stdout and,
with ``--html``, a self-contained static HTML report (inline SVG
charts, no external assets) suitable for a CI artifact.
"""

from __future__ import annotations

import argparse
import html
import math
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO

from repro.telemetry.convergence import CellKey, ConvergenceMonitor, PVF_OUTCOMES
from repro.telemetry.exporters import (
    parse_prometheus_samples,
    prometheus_text,
    quantile_from_samples,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.util.jsonlog import load_records_tolerant
from repro.util.stats import two_proportion_z
from repro.util.tables import format_series, format_table

__all__ = [
    "CampaignData",
    "build_monitor",
    "convergence_curves",
    "load_campaign",
    "main",
    "render_html",
    "render_text",
]

#: Metric files probed (in order) inside a campaign directory.
_METRIC_CANDIDATES = ("metrics.prom", "metrics.txt", "metrics.json", "metrics.jsonl")

#: Outcome columns of the matrix, in reporting order.
_OUTCOMES = ("masked", "sdc", "due")


# -- artifact loading ----------------------------------------------------------


@dataclass
class CampaignData:
    """Everything ``repro-inspect`` could find for one campaign."""

    name: str
    root: Path
    records: list[dict[str, Any]] = field(default_factory=list)
    shard_of: dict[int, int] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[tuple[str, tuple[tuple[str, str], ...]], float] | None = None
    corrupt: dict[str, int] = field(default_factory=dict)

    @property
    def corrupt_total(self) -> int:
        return sum(self.corrupt.values())

    def outcome_counts(self) -> dict[str, int]:
        """Record counts by outcome across the whole campaign log."""
        out: dict[str, int] = {}
        for record in self.records:
            outcome = str(record.get("outcome"))
            out[outcome] = out.get(outcome, 0) + 1
        return out

    def metric_by_label(self, name: str, label: str) -> dict[str, float] | None:
        """Sum an exported metric's samples by one label's values."""
        if self.metrics is None:
            return None
        out: dict[str, float] = {}
        for (metric, labels), value in self.metrics.items():
            if metric != name:
                continue
            for key, val in labels:
                if key == label:
                    out[val] = out.get(val, 0.0) + value
        return out


def _shard_index(path: Path) -> int | None:
    """Shard index from a ``shard-00042.jsonl`` checkpoint file name."""
    stem = path.stem
    if not stem.startswith("shard-"):
        return None
    try:
        return int(stem.split("-", 1)[1])
    except ValueError:
        return None


def _load_metric_samples(
    path: Path,
) -> tuple[dict[tuple[str, tuple[tuple[str, str], ...]], float], int]:
    """Load a metrics artifact (Prometheus text or JSONL snapshots)."""
    if path.suffix in (".json", ".jsonl"):
        rows, skipped = load_records_tolerant(path)
        snapshots = [r for r in rows if r.get("kind") == "metrics"]
        if not snapshots:
            return {}, skipped
        registry = MetricsRegistry()
        registry.merge(snapshots[-1]["metrics"])
        return parse_prometheus_samples(prometheus_text(registry)), skipped
    return parse_prometheus_samples(path.read_text(encoding="utf-8")), 0


def load_campaign(
    root: str | Path,
    *,
    metrics_path: str | Path | None = None,
    trace_path: str | Path | None = None,
    registry: MetricsRegistry | None = None,
) -> CampaignData:
    """Load one campaign's artifacts from a directory (or a bare log file).

    ``root`` may be a checkpoint directory (``shard-*.jsonl`` plus
    optional ``campaign.jsonl``/``trace.jsonl``/``failures.jsonl``/
    metrics snapshot) or a single ``campaign.jsonl`` file.  Records are
    returned in canonical ``run_index`` order; when checkpoint files
    are present the run→shard mapping is recovered so drift tests can
    be recomputed post-hoc.  Corrupt lines in any artifact are counted
    per file and into ``repro_corrupt_lines_total`` on ``registry``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    corrupt_counter = registry.counter(
        "repro_corrupt_lines_total",
        help="Corrupt JSONL lines skipped while reading campaign artifacts, by file.",
    )
    data = CampaignData(name=Path(root).name, root=Path(root))

    def read(path: Path) -> list[dict[str, Any]]:
        rows, skipped = load_records_tolerant(path)
        if skipped:
            data.corrupt[path.name] = data.corrupt.get(path.name, 0) + skipped
            corrupt_counter.inc(skipped, file=path.name)
        return rows

    if data.root.is_file():
        base = data.root.parent
        data.records = read(data.root)
    else:
        base = data.root
        campaign_log = base / "campaign.jsonl"
        if campaign_log.exists():
            data.records = read(campaign_log)

    shard_records: list[dict[str, Any]] = []
    for path in sorted(base.glob("shard-*.jsonl")):
        index = _shard_index(path)
        if index is None:
            continue
        for row in read(path):
            if row.get("kind") != "record":
                continue
            payload = row.get("data")
            if isinstance(payload, dict) and "run_index" in payload:
                data.shard_of[int(payload["run_index"])] = index
                shard_records.append(payload)
    if not data.records and shard_records:
        data.records = sorted(shard_records, key=lambda r: int(r["run_index"]))

    trace = Path(trace_path) if trace_path is not None else base / "trace.jsonl"
    if trace.exists():
        data.spans = [row for row in read(trace) if "name" in row and "dur_s" in row]

    failure_log = base / "failures.jsonl"
    if failure_log.exists():
        data.failures = read(failure_log)

    metric_file: Path | None = None
    if metrics_path is not None:
        metric_file = Path(metrics_path)
    else:
        for candidate in _METRIC_CANDIDATES:
            if (base / candidate).exists():
                metric_file = base / candidate
                break
    if metric_file is not None and metric_file.exists():
        try:
            data.metrics, skipped = _load_metric_samples(metric_file)
        except ValueError:
            data.corrupt[metric_file.name] = data.corrupt.get(metric_file.name, 0) + 1
            corrupt_counter.inc(file=metric_file.name)
        else:
            if skipped:
                data.corrupt[metric_file.name] = data.corrupt.get(metric_file.name, 0) + skipped
                corrupt_counter.inc(skipped, file=metric_file.name)
    return data


# -- analysis ------------------------------------------------------------------


def build_monitor(
    data: CampaignData, confidence: float = 0.95, interval: str = "wilson"
) -> ConvergenceMonitor:
    """Replay a campaign log into a fresh :class:`ConvergenceMonitor`."""
    monitor = ConvergenceMonitor(confidence=confidence, interval=interval)
    for record in data.records:
        shard = data.shard_of.get(int(record["run_index"])) if "run_index" in record else None
        monitor.observe(record, shard=shard)
    return monitor


def convergence_curves(
    records: list[dict[str, Any]],
    confidence: float = 0.95,
    interval: str = "wilson",
    points: int = 12,
) -> dict[CellKey, tuple[list[int], list[float]]]:
    """Per-cell ``(runs, worst CI half-width)`` series at ~``points`` marks.

    One streaming pass: the monitor is replayed in canonical order and
    sampled at evenly spaced run counts, so the curve shows exactly
    what an early-stopping engine would have seen at each boundary.
    """
    total = len(records)
    if total == 0:
        return {}
    marks = sorted({max(1, (total * i) // points) for i in range(1, points + 1)})
    monitor = ConvergenceMonitor(confidence=confidence, interval=interval)
    curves: dict[CellKey, tuple[list[int], list[float]]] = {}
    mark_set = set(marks)
    for seen, record in enumerate(records, start=1):
        monitor.observe(record)
        if seen not in mark_set:
            continue
        for key in monitor.cells():
            benchmark, model = key
            width = max(monitor.half_width(benchmark, model, o) for o in PVF_OUTCOMES)
            xs, ys = curves.setdefault(key, ([], []))
            xs.append(seen)
            ys.append(width)
    return curves


def _span_aggregate(spans: list[dict[str, Any]]) -> list[list[object]]:
    """Waterfall rows: per span name — count, total, mean, max seconds."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        totals.setdefault(str(span["name"]), []).append(float(span["dur_s"]))
    rows: list[list[object]] = []
    for name in sorted(totals, key=lambda n: -sum(totals[n])):
        durations = totals[name]
        rows.append(
            [
                name,
                len(durations),
                sum(durations),
                sum(durations) / len(durations),
                max(durations),
            ]
        )
    return rows


def _slowest_shards(spans: list[dict[str, Any]], top: int) -> list[list[object]]:
    """Slowest ``top`` shard spans: shard, runs, duration, runs/s."""
    rows: list[list[object]] = []
    for span in spans:
        if span.get("name") != "shard":
            continue
        attrs = span.get("attrs", {})
        if "shard" not in attrs:
            continue
        runs = int(attrs.get("stop", 0)) - int(attrs.get("start", 0))
        duration = float(span["dur_s"])
        rate = runs / duration if duration > 0 else 0.0
        rows.append([int(attrs["shard"]), runs, duration, rate])
    rows.sort(key=lambda r: -float(r[2]))
    return rows[:top]


def _diff_rows(
    a: ConvergenceMonitor, b: ConvergenceMonitor, alpha: float = 0.05
) -> list[list[object]]:
    """Cell-by-cell two-proportion z-tests between two campaigns.

    One row per (cell, outcome) present in either campaign; the
    ``differs`` column applies a Bonferroni-corrected threshold across
    the whole comparison family, same policy as the drift detector.
    """
    cells = sorted(set(a.cells()) | set(b.cells()))
    tests: list[tuple[CellKey, str, int, int, int, int]] = []
    for key in cells:
        benchmark, model = key
        counts_a = a.counts(benchmark, model) if key in set(a.cells()) else {}
        counts_b = b.counts(benchmark, model) if key in set(b.cells()) else {}
        n_a = sum(counts_a.values())
        n_b = sum(counts_b.values())
        if n_a == 0 or n_b == 0:
            continue
        for outcome in PVF_OUTCOMES:
            tests.append((key, outcome, counts_a.get(outcome, 0), n_a, counts_b.get(outcome, 0), n_b))
    if not tests:
        return []
    per_test = alpha / len(tests)
    rows: list[list[object]] = []
    for (benchmark, model), outcome, x1, n1, x2, n2 in tests:
        z, p_value = two_proportion_z(x1, n1, x2, n2)
        rows.append(
            [
                benchmark,
                model,
                outcome,
                f"{x1 / n1:.4f} (n={n1})",
                f"{x2 / n2:.4f} (n={n2})",
                z,
                f"{p_value:.2e}",
                p_value < per_test,
            ]
        )
    return rows


# -- text report ---------------------------------------------------------------


def _overview_table(campaigns: list[CampaignData]) -> str:
    rows = []
    for data in campaigns:
        rows.append(
            [
                data.name,
                len(data.records),
                len({(str(r.get("benchmark")), str(r.get("fault_model"))) for r in data.records}),
                len(set(data.shard_of.values())),
                len(data.spans),
                len(data.failures),
                data.corrupt_total,
            ]
        )
    return format_table(
        ["campaign", "runs", "cells", "shards", "spans", "failure events", "corrupt lines"],
        rows,
        title="overview",
    )


def _reconcile(data: CampaignData) -> tuple[str, bool]:
    """Outcome-matrix vs exported-metric reconciliation (text, ok)."""
    if data.metrics is None:
        return f"[{data.name}] no metrics snapshot found — reconciliation skipped", True
    from_metrics = data.metric_by_label("repro_records_total", "outcome") or {}
    from_records = data.outcome_counts()
    ok = True
    rows = []
    for outcome in sorted(set(from_metrics) | set(from_records)):
        logged = from_records.get(outcome, 0)
        exported = from_metrics.get(outcome, 0.0)
        match = logged == int(exported)
        ok = ok and match
        rows.append([outcome, logged, int(exported), match])
    if not rows:
        rows.append(["(none)", 0, 0, True])
    table = format_table(
        ["outcome", "campaign.jsonl", "repro_records_total", "match"],
        rows,
        title=f"[{data.name}] metrics reconciliation",
    )
    return table, ok


def render_text(
    campaigns: list[CampaignData],
    *,
    confidence: float = 0.95,
    interval: str = "wilson",
    drift_alpha: float = 0.01,
    top: int = 5,
    diff: bool = False,
) -> tuple[str, list[str]]:
    """The full text report plus a list of integrity problems found."""
    sections: list[str] = [_overview_table(campaigns)]
    problems: list[str] = []
    monitors: list[ConvergenceMonitor] = []

    for data in campaigns:
        monitor = build_monitor(data, confidence, interval)
        monitors.append(monitor)
        title = f"[{data.name}] outcome matrix ({interval}, {confidence:.0%} CI)"
        sections.append(
            format_table(
                ["benchmark", "fault model", "runs", *_OUTCOMES],
                monitor.summary_rows() or [["(no records)", "-", 0, "-", "-", "-"]],
                title=title,
            )
        )

        curves = convergence_curves(data.records, confidence, interval)
        if curves:
            lines = [f"[{data.name}] convergence (runs, worst CI half-width)"]
            for (benchmark, model), (xs, ys) in sorted(curves.items()):
                lines.append(format_series(f"{benchmark}/{model}", xs, ys, floatfmt=".4f"))
            sections.append("\n".join(lines))

        if data.spans:
            sections.append(
                format_table(
                    ["span", "count", "total s", "mean s", "max s"],
                    _span_aggregate(data.spans),
                    title=f"[{data.name}] span waterfall",
                    floatfmt=".3f",
                )
            )
            slow = _slowest_shards(data.spans, top)
            if slow:
                sections.append(
                    format_table(
                        ["shard", "runs", "dur s", "runs/s"],
                        slow,
                        title=f"[{data.name}] slowest shards",
                        floatfmt=".3f",
                    )
                )

        if data.failures:
            by_event: dict[str, int] = {}
            for event in data.failures:
                kind = str(event.get("event", "unknown"))
                by_event[kind] = by_event.get(kind, 0) + 1
            sections.append(
                format_table(
                    ["event", "count"],
                    sorted(by_event.items()),
                    title=f"[{data.name}] failure events",
                )
            )

        if data.shard_of:
            flags = monitor.drift_flags(alpha=drift_alpha)
            if flags:
                sections.append(
                    format_table(
                        ["benchmark", "fault model", "shard", "outcome", "shard rate", "rest rate", "z"],
                        [
                            [
                                f.benchmark,
                                f.fault_model,
                                f.shard,
                                f.outcome,
                                f.shard_rate,
                                f.rest_rate,
                                f.z,
                            ]
                            for f in flags
                        ],
                        title=f"[{data.name}] cross-shard drift (family alpha={drift_alpha})",
                        floatfmt=".4f",
                    )
                )
                problems.append(f"{data.name}: {len(flags)} cross-shard drift flag(s)")
            else:
                sections.append(
                    f"[{data.name}] cross-shard drift: none detected "
                    f"({len(set(data.shard_of.values()))} shards, family alpha={drift_alpha})"
                )

        table, ok = _reconcile(data)
        sections.append(table)
        if not ok:
            problems.append(f"{data.name}: metrics do not reconcile with campaign log")
        if data.corrupt:
            detail = ", ".join(f"{name}: {count}" for name, count in sorted(data.corrupt.items()))
            sections.append(f"[{data.name}] corrupt lines skipped — {detail}")

    if diff and len(campaigns) == 2:
        rows = _diff_rows(monitors[0], monitors[1])
        sections.append(
            format_table(
                [
                    "benchmark",
                    "fault model",
                    "outcome",
                    campaigns[0].name,
                    campaigns[1].name,
                    "z",
                    "p",
                    "differs",
                ],
                rows or [["(no comparable cells)", "-", "-", "-", "-", 0.0, "-", False]],
                title="campaign diff (two-proportion z, Bonferroni family alpha=0.05)",
                floatfmt=".2f",
            )
        )
    return "\n\n".join(sections) + "\n", problems


# -- HTML report ---------------------------------------------------------------

# Palette roles (light / dark): chart chrome stays in neutral ink, the
# single convergence series takes categorical slot 1; a single series
# needs no legend — the figure caption names it.
_HTML_STYLE = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --bad: #d03b3b; --good: #006300;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --bad: #d03b3b; --good: #0ca30c;
  }
}
body { margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h3 { font-size: 13px; font-weight: 600; color: var(--ink-2); margin: 12px 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 12px 0; }
.tile { background: var(--surface); border: 1px solid var(--border); border-radius: 8px;
  padding: 10px 14px; min-width: 96px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { font-size: 11px; color: var(--muted); text-transform: uppercase;
  letter-spacing: 0.04em; }
table { border-collapse: collapse; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px; margin: 8px 0; }
th, td { padding: 5px 12px; text-align: left; font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-size: 11px; text-transform: uppercase;
  letter-spacing: 0.04em; border-bottom: 1px solid var(--grid); }
td { border-bottom: 1px solid var(--grid); }
tr:last-child td { border-bottom: none; }
td.num { text-align: right; }
td.bad { color: var(--bad); font-weight: 600; }
td.ok { color: var(--good); }
.charts { display: flex; gap: 16px; flex-wrap: wrap; }
figure { margin: 0; background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 12px; }
figcaption { font-size: 12px; color: var(--ink-2); margin-bottom: 4px; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .series { stroke: var(--series-1); stroke-width: 2; fill: none;
  stroke-linejoin: round; stroke-linecap: round; }
svg .pt { fill: var(--series-1); }
svg .pt:hover { r: 5; }
svg .target { stroke: var(--muted); stroke-width: 1; stroke-dasharray: 4 3; }
svg text { fill: var(--muted); font: 10px system-ui, sans-serif;
  font-variant-numeric: tabular-nums; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _nice_step(span: float, count: int = 4) -> float:
    if span <= 0:
        return 1.0
    raw = span / count
    power = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        if raw <= mult * power:
            return mult * power
    return 10.0 * power


def _svg_curve(
    xs: list[int],
    ys: list[float],
    *,
    target: float | None = None,
    width: int = 420,
    height: int = 190,
) -> str:
    """One single-series convergence line chart as inline SVG."""
    left, right, top, bottom = 46, 12, 10, 30
    plot_w, plot_h = width - left - right, height - top - bottom
    x_max = max(xs) if xs else 1
    y_max = max([*ys, target or 0.0, 1e-9]) * 1.08

    def px(x: float) -> float:
        return left + plot_w * (x / x_max)

    def py(y: float) -> float:
        return top + plot_h * (1.0 - y / y_max)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" role="img">'
    ]
    step = _nice_step(y_max)
    tick = step
    while tick < y_max:
        y = py(tick)
        parts.append(f'<line class="grid" x1="{left}" y1="{y:.1f}" x2="{width - right}" y2="{y:.1f}"/>')
        parts.append(f'<text x="{left - 5}" y="{y + 3:.1f}" text-anchor="end">{tick:g}</text>')
        tick += step
    parts.append(
        f'<line class="axis" x1="{left}" y1="{top + plot_h}" x2="{width - right}" y2="{top + plot_h}"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        x_val = int(round(x_max * frac))
        parts.append(
            f'<text x="{px(x_val):.1f}" y="{height - 10}" text-anchor="middle">{x_val}</text>'
        )
    parts.append(
        f'<text x="{left - 36}" y="{top + plot_h / 2:.1f}" '
        f'transform="rotate(-90 {left - 36} {top + plot_h / 2:.1f})" '
        'text-anchor="middle">CI half-width</text>'
    )
    parts.append(f'<text x="{left + plot_w / 2:.1f}" y="{height - 1}" text-anchor="middle">runs</text>')
    if target is not None and target < y_max:
        y = py(target)
        parts.append(f'<line class="target" x1="{left}" y1="{y:.1f}" x2="{width - right}" y2="{y:.1f}"/>')
        parts.append(f'<text x="{width - right}" y="{y - 3:.1f}" text-anchor="end">target {target:g}</text>')
    if xs:
        points = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys))
        parts.append(f'<polyline class="series" points="{points}"/>')
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle class="pt" cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5">'
                f"<title>{x} runs: half-width {y:.4f}</title></circle>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _html_table(
    headers: list[str], rows: list[list[object]], *, numeric_from: int = 0
) -> str:
    out = ["<table><thead><tr>"]
    out.extend(f"<th>{_esc(h)}</th>" for h in headers)
    out.append("</tr></thead><tbody>")
    for row in rows:
        out.append("<tr>")
        for i, cell in enumerate(row):
            classes = []
            if isinstance(cell, bool):
                classes.append("ok" if cell else "bad")
                shown = "yes" if cell else "NO"
            elif isinstance(cell, float):
                classes.append("num")
                shown = f"{cell:.4f}"
            elif isinstance(cell, int):
                classes.append("num")
                shown = str(cell)
            else:
                shown = str(cell)
                if numeric_from and i >= numeric_from:
                    classes.append("num")
            attr = f' class="{" ".join(classes)}"' if classes else ""
            out.append(f"<td{attr}>{_esc(shown)}</td>")
        out.append("</tr>")
    out.append("</tbody></table>")
    return "".join(out)


def render_html(
    campaigns: list[CampaignData],
    *,
    confidence: float = 0.95,
    interval: str = "wilson",
    drift_alpha: float = 0.01,
    top: int = 5,
    diff: bool = False,
    target_ci: float | None = None,
) -> str:
    """The self-contained static HTML report (no external assets)."""
    body: list[str] = [
        "<h1>repro-inspect report</h1>",
        f'<p class="sub">{_esc(", ".join(str(c.root) for c in campaigns))} &middot; '
        f"{_esc(interval)} intervals at {confidence:.0%} confidence</p>",
    ]
    monitors: list[ConvergenceMonitor] = []
    for data in campaigns:
        monitor = build_monitor(data, confidence, interval)
        monitors.append(monitor)
        body.append(f"<h2>{_esc(data.name)}</h2>")
        tiles = [
            ("runs", len(data.records)),
            ("cells", len(monitor.cells())),
            ("shards", len(set(data.shard_of.values()))),
            ("failure events", len(data.failures)),
            ("corrupt lines", data.corrupt_total),
        ]
        body.append(
            '<div class="tiles">'
            + "".join(
                f'<div class="tile"><div class="v">{_esc(v)}</div><div class="k">{_esc(k)}</div></div>'
                for k, v in tiles
            )
            + "</div>"
        )
        body.append("<h3>Outcome matrix</h3>")
        body.append(
            _html_table(
                ["benchmark", "fault model", "runs", *_OUTCOMES],
                monitor.summary_rows(),
                numeric_from=2,
            )
        )
        curves = convergence_curves(data.records, confidence, interval)
        if curves:
            body.append("<h3>Convergence — CI half-width vs runs</h3>")
            body.append('<div class="charts">')
            for (benchmark, model), (xs, ys) in sorted(curves.items()):
                body.append(
                    f"<figure><figcaption>{_esc(benchmark)} &middot; {_esc(model)}</figcaption>"
                    + _svg_curve(xs, ys, target=target_ci)
                    + "</figure>"
                )
            body.append("</div>")
        if data.spans:
            body.append("<h3>Span waterfall</h3>")
            body.append(
                _html_table(
                    ["span", "count", "total s", "mean s", "max s"],
                    [[n, c, round(t, 3), round(m, 4), round(x, 3)] for n, c, t, m, x in _span_aggregate(data.spans)],
                )
            )
            slow = _slowest_shards(data.spans, top)
            if slow:
                body.append("<h3>Slowest shards</h3>")
                body.append(
                    _html_table(
                        ["shard", "runs", "dur s", "runs/s"],
                        [[s, r, round(d, 3), round(v, 2)] for s, r, d, v in slow],
                    )
                )
        if data.shard_of:
            flags = monitor.drift_flags(alpha=drift_alpha)
            body.append("<h3>Cross-shard drift</h3>")
            if flags:
                body.append(
                    _html_table(
                        ["benchmark", "fault model", "shard", "outcome", "shard rate", "rest rate", "z"],
                        [
                            [f.benchmark, f.fault_model, f.shard, f.outcome,
                             round(f.shard_rate, 4), round(f.rest_rate, 4), round(f.z, 2)]
                            for f in flags
                        ],
                    )
                )
            else:
                body.append(
                    f'<p class="sub">None detected across {len(set(data.shard_of.values()))} shards '
                    f"(family alpha={drift_alpha:g}).</p>"
                )
        body.append("<h3>Metrics reconciliation</h3>")
        if data.metrics is None:
            body.append('<p class="sub">No metrics snapshot found.</p>')
        else:
            from_metrics = data.metric_by_label("repro_records_total", "outcome") or {}
            from_records = data.outcome_counts()
            rows = [
                [o, from_records.get(o, 0), int(from_metrics.get(o, 0.0)),
                 from_records.get(o, 0) == int(from_metrics.get(o, 0.0))]
                for o in sorted(set(from_metrics) | set(from_records))
            ]
            body.append(
                _html_table(["outcome", "campaign.jsonl", "repro_records_total", "match"], rows)
            )
        if data.corrupt:
            detail = ", ".join(f"{n}: {c}" for n, c in sorted(data.corrupt.items()))
            body.append(f'<p class="sub">Corrupt lines skipped &mdash; {_esc(detail)}</p>')

    if diff and len(campaigns) == 2:
        body.append("<h2>Campaign diff</h2>")
        rows = _diff_rows(monitors[0], monitors[1])
        if rows:
            body.append(
                _html_table(
                    ["benchmark", "fault model", "outcome",
                     campaigns[0].name, campaigns[1].name, "z", "p", "differs"],
                    [[b, m, o, ra, rb, round(z, 2), p, d] for b, m, o, ra, rb, z, p, d in rows],
                )
            )
        else:
            body.append('<p class="sub">No comparable cells.</p>')

    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">"
        "<title>repro-inspect report</title>"
        f"<style>{_HTML_STYLE}</style></head><body>" + "".join(body) + "</body></html>"
    )


# -- CLI -----------------------------------------------------------------------


def _fuzz_main(argv: list[str], out: IO[str]) -> int:
    """``repro-inspect fuzz``: list fuzz reproducer artifacts."""
    parser = argparse.ArgumentParser(
        prog="repro-inspect fuzz",
        description="Summarize fuzz reproducer artifacts (repro-*.json).",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="Reproducer files or directories containing repro-*.json.",
    )
    args = parser.parse_args(argv)

    from repro.fuzz.artifact import load_reproducer

    files: list[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("repro-*.json")))
        else:
            files.append(path)
    if not files:
        print("repro-inspect fuzz: no reproducer artifacts found", file=sys.stderr)
        return 2

    rows = []
    for path in files:
        try:
            repro = load_reproducer(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro-inspect fuzz: skipping {path}: {exc}", file=sys.stderr)
            continue
        rows.append(
            (
                path.name,
                repro.scenario.benchmark,
                repro.flag.kind,
                f"{repro.original_len}->{repro.shrunk_len}",
                repro.expected.outcome,
                len(repro.expected.faults),
                repro.expected.recoveries,
            )
        )
    if not rows:
        print("repro-inspect fuzz: no readable reproducer artifacts", file=sys.stderr)
        return 2
    header = ("artifact", "benchmark", "flag", "steps", "outcome", "faults", "recoveries")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) for i in range(len(header))
    ]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)), file=out)
    for row in rows:
        print(
            "  ".join(str(v).ljust(widths[i]) for i, v in enumerate(row)),
            file=out,
        )
    return 0


def _lease_fate(
    lease_id: str,
    done: set[str],
    re_leased: dict[str, int],
    stolen: dict[str, int],
) -> str:
    """A lease's fate, compressed to one cell."""
    parts: list[str] = []
    if lease_id in stolen:
        parts.append(f"stolen@{stolen[lease_id]}")
    if lease_id in re_leased:
        parts.append(f"re-leased@{re_leased[lease_id]}")
    if lease_id in done:
        parts.append("done")
    return ", ".join(parts) or "lost"


def _sum_by_label(
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float],
    name: str,
    label: str,
) -> dict[str, float]:
    """Sum one metric's samples by a label's values (parsed-scrape view)."""
    out: dict[str, float] = {}
    for (metric, labels), value in samples.items():
        if metric != name:
            continue
        for key, val in labels:
            if key == label:
                out[val] = out.get(val, 0.0) + value
    return out


def _campaign_samples(
    base: Path,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float] | None:
    """Parsed samples from a campaign dir's metrics snapshot, if any."""
    for candidate in _METRIC_CANDIDATES:
        metric_file = base / candidate
        if metric_file.exists():
            try:
                samples, _skipped = _load_metric_samples(metric_file)
            except (OSError, ValueError):
                return None
            return samples
    return None


def _service_main(argv: list[str], out: IO[str]) -> int:
    """``repro-inspect service``: lease table and worker timeline.

    Joins the scheduler's ``failures.jsonl`` events from a distributed
    (broker-mode) campaign into four views: every lease with its range
    and fate, a per-worker summary (joined with the broker's per-worker
    metrics when a snapshot sits next to the log), the campaign's
    service counters, and the chronological disruption log (steals,
    re-leases, deaths, quarantines, reaps).
    """
    parser = argparse.ArgumentParser(
        prog="repro-inspect service",
        description="Lease table, per-worker timeline and disruption log "
        "from a distributed campaign's failures.jsonl.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="failures.jsonl files or campaign directories containing one.",
    )
    args = parser.parse_args(argv)

    files: list[Path] = []
    for raw in args.paths:
        path = Path(raw)
        files.append(path / "failures.jsonl" if path.is_dir() else path)
    missing = [str(p) for p in files if not p.exists()]
    if missing:
        print(
            f"repro-inspect service: not found: {', '.join(missing)}", file=sys.stderr
        )
        return 2

    status = 0
    for path in files:
        events, skipped = load_records_tolerant(path)
        if skipped:
            print(
                f"repro-inspect service: {path}: skipped {skipped} corrupt line(s)",
                file=sys.stderr,
            )
        leases = [e for e in events if e.get("event") == "lease" and "lease" in e]
        if not leases:
            print(
                f"repro-inspect service: {path}: no lease events — "
                "not a distributed campaign log?",
                file=sys.stderr,
            )
            status = 2
            continue

        done = {str(e["lease"]) for e in events if e.get("event") == "lease_done"}
        re_leased = {
            str(e["lease"]): int(e["resume_from"])
            for e in events
            if e.get("event") == "re_lease"
        }
        stolen = {
            str(e["victim"]): int(e["split"])
            for e in events
            if e.get("event") == "steal"
        }

        rows = [
            [
                str(e["lease"]),
                int(e["shard"]),
                f"[{e['start']}, {e['stop']})",
                int(e.get("attempt", 0)),
                str(e.get("worker", "?")),
                _lease_fate(str(e["lease"]), done, re_leased, stolen),
            ]
            for e in leases
        ]
        print(
            format_table(
                ["lease", "shard", "runs", "attempt", "worker", "fate"],
                rows,
                title=f"[{path.parent.name or path.name}] lease table",
            ),
            file=out,
        )

        workers: dict[str, dict[str, Any]] = {}

        def slot(name: str) -> dict[str, Any]:
            return workers.setdefault(
                name,
                {
                    "leases": 0,
                    "runs": 0,
                    "shards": set(),
                    "deaths": 0,
                    "lost": 0,
                    "addr": "-",
                    "pid": "-",
                },
            )

        for e in events:
            kind = e.get("event")
            if kind in ("worker_connected", "worker_lost") and "worker" in e:
                w = slot(str(e["worker"]))
                if e.get("addr"):
                    w["addr"] = str(e["addr"])
                if e.get("pid") is not None:
                    w["pid"] = str(e["pid"])
                if kind == "worker_lost":
                    w["lost"] += 1
            elif kind == "lease" and "worker" in e:
                w = slot(str(e["worker"]))
                w["leases"] += 1
                w["runs"] += int(e["stop"]) - int(e["start"])
                w["shards"].add(int(e["shard"]))
            elif kind == "worker_death" and "worker" in e:
                slot(str(e["worker"]))["deaths"] += 1

        # Join the broker's per-worker series when a metrics snapshot
        # sits in the campaign directory (records streamed, heartbeat
        # RTT, disconnects) — the fleet view the event log alone lacks.
        samples = _campaign_samples(path.parent)
        headers = ["worker", "addr", "pid", "leases", "runs leased", "shards", "deaths", "lost"]
        if samples is not None:
            headers += ["recs", "rtt p50 ms"]
            recs = _sum_by_label(samples, "repro_service_worker_runs_total", "worker")
        rows = []
        for name, w in sorted(workers.items()):
            row: list[Any] = [
                name, w["addr"], w["pid"], w["leases"], w["runs"],
                len(w["shards"]), w["deaths"], w["lost"],
            ]
            if samples is not None:
                rtt = quantile_from_samples(
                    samples, "repro_service_heartbeat_rtt_seconds", 0.5, worker=name
                )
                row += [
                    int(recs.get(name, 0.0)),
                    "-" if rtt is None else f"{rtt * 1000:.2f}",
                ]
            rows.append(row)
        print(
            format_table(
                headers, rows, title=f"[{path.parent.name or path.name}] workers"
            ),
            file=out,
        )

        if samples is not None:
            lease_events = _sum_by_label(samples, "repro_service_leases_total", "event")
            steals = sum(
                value
                for (metric, _labels), value in samples.items()
                if metric == "repro_service_steals_total"
            )
            disconnects = sum(
                _sum_by_label(samples, "repro_service_disconnects_total", "worker").values()
            )
            counter_rows: list[list[Any]] = [
                [f"leases {event}", int(value)]
                for event, value in sorted(lease_events.items())
            ]
            counter_rows.append(["steals", int(steals)])
            counter_rows.append(["worker disconnects", int(disconnects)])
            print(
                format_table(
                    ["counter", "value"],
                    counter_rows,
                    title=f"[{path.parent.name or path.name}] service counters",
                ),
                file=out,
            )

        disruptions = []
        for i, e in enumerate(events):
            kind = str(e.get("event", ""))
            if kind == "steal":
                what = (
                    f"split {e['victim']} at run {e['split']} "
                    f"(was stop {e['stop']}, victim {e.get('victim_worker', '?')})"
                )
            elif kind == "re_lease":
                what = f"{e['lease']} resumes at run {e['resume_from']}: {e.get('detail', '')}"
            elif kind == "worker_death":
                run = e.get("run")
                where = f"run {run}" if run is not None else "between runs"
                what = f"{e.get('worker', e.get('lease', '?'))} died at {where}: {e.get('detail', '')}"
            elif kind == "quarantine":
                what = f"run {e['run']} quarantined: {e.get('detail', '')}"
            elif kind == "worker_lost":
                origin = ", ".join(
                    part
                    for part in (
                        str(e["addr"]) if e.get("addr") else "",
                        f"pid {e['pid']}" if e.get("pid") is not None else "",
                    )
                    if part
                )
                who = str(e.get("worker", "?")) + (f" ({origin})" if origin else "")
                what = f"{who}: {e.get('detail', '')}"
            elif kind in ("reap", "shard_failed"):
                what = str(e.get("detail", ""))
            else:
                continue
            disruptions.append([i, kind, e.get("shard", "-"), what])
        if disruptions:
            print(
                format_table(
                    ["#", "event", "shard", "what"],
                    disruptions,
                    title=f"[{path.parent.name or path.name}] disruptions",
                ),
                file=out,
            )
        else:
            print(
                f"[{path.parent.name or path.name}] disruptions: none — "
                "every lease ran to completion undisturbed",
                file=out,
            )
    return status


def _normalize_metrics_url(raw: str) -> str:
    """Accept ``host:port``, a bare URL, or a full ``/metrics`` URL."""
    url = raw if "://" in raw else f"http://{raw}"
    scheme, _, rest = url.partition("://")
    if "/" not in rest:
        rest += "/metrics"
    return f"{scheme}://{rest}"


def _scrape_metrics(url: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    import urllib.request

    with urllib.request.urlopen(url, timeout=10) as response:  # noqa: S310 — user-given URL
        text = response.read().decode("utf-8")
    return parse_prometheus_samples(text)


def _live_render(
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float],
    prev_runs: dict[str, float],
    dt: float | None,
    out: IO[str],
) -> dict[str, float]:
    """One refresh of the fleet view; returns per-worker run totals."""
    up = _sum_by_label(samples, "repro_service_worker_up", "worker")
    runs = _sum_by_label(samples, "repro_service_worker_runs_total", "worker")
    lag = _sum_by_label(samples, "repro_service_worker_idle_seconds", "worker")
    slowest = _sum_by_label(samples, "repro_service_lease_slowest_seconds", "worker")
    lease_events = _sum_by_label(samples, "repro_service_leases_total", "event")
    steals = sum(
        value
        for (metric, _labels), value in samples.items()
        if metric == "repro_service_steals_total"
    )
    mixes: dict[str, dict[str, int]] = {}
    for (metric, labels), value in samples.items():
        if metric != "repro_service_worker_runs_total":
            continue
        label_map = dict(labels)
        worker = label_map.get("worker")
        outcome = label_map.get("outcome", "?")
        if worker is not None:
            mixes.setdefault(worker, {})[outcome] = int(value)

    rows: list[list[Any]] = []
    for worker in sorted(set(up) | set(runs)):
        delta = runs.get(worker, 0.0) - prev_runs.get(worker, 0.0)
        rate = "-" if not dt or dt <= 0 else f"{max(0.0, delta) / dt:.1f}"
        rtt = quantile_from_samples(
            samples, "repro_service_heartbeat_rtt_seconds", 0.5, worker=worker
        )
        mix = " ".join(
            f"{o}:{n}" for o, n in sorted(mixes.get(worker, {}).items())
        )
        rows.append(
            [
                worker,
                "up" if up.get(worker, 0.0) >= 1 else "DOWN",
                int(runs.get(worker, 0.0)),
                rate,
                f"{lag.get(worker, 0.0):.2f}",
                "-" if rtt is None else f"{rtt * 1000:.2f}",
                f"{slowest.get(worker, 0.0):.3f}" if worker in slowest else "-",
                mix or "-",
            ]
        )
    total_runs = int(sum(runs.values()))
    issued = int(lease_events.get("issued", 0.0))
    done = int(lease_events.get("done", 0.0))
    print(
        f"fleet: {total_runs} runs streamed | leases {done}/{issued} done | "
        f"steals {int(steals)} | workers {sum(1 for v in up.values() if v >= 1)}"
        f"/{len(up)} up",
        file=out,
    )
    print(
        format_table(
            ["worker", "state", "runs", "runs/s", "lag s", "rtt p50 ms", "slowest lease s", "outcomes"],
            rows or [["(no workers yet)", "-", 0, "-", "-", "-", "-", "-"]],
            title="fleet workers",
        ),
        file=out,
    )
    return runs


def _live_main(argv: list[str], out: IO[str]) -> int:
    """``repro-inspect live``: refreshing fleet view from a /metrics URL.

    Scrapes a broker's (``BrokerBackend(metrics_port=...)``) or
    ``repro-serve``'s ``/metrics`` endpoint and renders a per-worker
    table — liveness, streamed records, run rate (from scrape deltas),
    broker-observed lag, heartbeat RTT p50, slowest completed lease and
    the outcome mix — refreshed every ``--interval`` seconds.
    """
    parser = argparse.ArgumentParser(
        prog="repro-inspect live",
        description="Live per-worker fleet table from a /metrics scrape endpoint.",
    )
    parser.add_argument(
        "url", help="scrape endpoint: host:port or http://host:port/metrics"
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    parser.add_argument(
        "--count", type=int, default=0, help="refreshes before exiting (0 = forever)"
    )
    parser.add_argument(
        "--once", action="store_true", help="scrape and render once, then exit"
    )
    args = parser.parse_args(argv)
    url = _normalize_metrics_url(args.url)
    limit = 1 if args.once else args.count
    prev_runs: dict[str, float] = {}
    prev_t: float | None = None
    iteration = 0
    while True:
        try:
            samples = _scrape_metrics(url)
        except (OSError, ValueError) as exc:
            print(f"repro-inspect live: scrape failed: {exc}", file=sys.stderr)
            return 2
        now = time.monotonic()
        dt = None if prev_t is None else now - prev_t
        prev_runs = _live_render(samples, prev_runs, dt, out)
        prev_t = now
        iteration += 1
        if limit and iteration >= limit:
            return 0
        time.sleep(args.interval)


def main(argv: list[str] | None = None, stream: IO[str] | None = None) -> int:
    """Entry point for the ``repro-inspect`` console script."""
    args_in = list(sys.argv[1:]) if argv is None else list(argv)
    out_stream = stream if stream is not None else sys.stdout
    if args_in and args_in[0] == "fuzz":
        return _fuzz_main(args_in[1:], out_stream)
    if args_in and args_in[0] == "service":
        return _service_main(args_in[1:], out_stream)
    if args_in and args_in[0] == "live":
        return _live_main(args_in[1:], out_stream)
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Join campaign.jsonl, trace.jsonl and metrics into one analytics report.",
    )
    parser.add_argument(
        "campaigns",
        nargs="+",
        help="Campaign directories (checkpoint dirs) or campaign.jsonl files.",
    )
    parser.add_argument("--metrics", help="Explicit metrics snapshot path (single campaign).")
    parser.add_argument("--trace", help="Explicit trace.jsonl path (single campaign).")
    parser.add_argument("--html", help="Also write a self-contained HTML report here.")
    parser.add_argument("--confidence", type=float, default=0.95, help="CI confidence level.")
    parser.add_argument(
        "--interval",
        choices=("wilson", "anytime"),
        default="wilson",
        help="CI construction (see DESIGN §10).",
    )
    parser.add_argument(
        "--drift-alpha", type=float, default=0.01, help="Family-wise drift alpha."
    )
    parser.add_argument(
        "--target-ci",
        type=float,
        default=None,
        help="Annotate convergence charts with this half-width target.",
    )
    parser.add_argument("--top", type=int, default=5, help="Slowest shards shown.")
    parser.add_argument(
        "--diff",
        action="store_true",
        help="Compare exactly two campaigns cell-by-cell (two-proportion z).",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="Exit nonzero on reconciliation mismatch or drift flags.",
    )
    args = parser.parse_args(argv)
    out = stream if stream is not None else sys.stdout

    if args.diff and len(args.campaigns) != 2:
        parser.error("--diff requires exactly two campaigns")
    if (args.metrics or args.trace) and len(args.campaigns) != 1:
        parser.error("--metrics/--trace apply to a single campaign")

    registry = MetricsRegistry()
    campaigns = [
        load_campaign(
            root,
            metrics_path=args.metrics if len(args.campaigns) == 1 else None,
            trace_path=args.trace if len(args.campaigns) == 1 else None,
            registry=registry,
        )
        for root in args.campaigns
    ]
    missing = [c.name for c in campaigns if not c.records]
    if missing:
        print(f"repro-inspect: no records found for: {', '.join(missing)}", file=sys.stderr)
        return 2

    text, problems = render_text(
        campaigns,
        confidence=args.confidence,
        interval=args.interval,
        drift_alpha=args.drift_alpha,
        top=args.top,
        diff=args.diff,
    )
    print(text, file=out)
    if args.html:
        report = render_html(
            campaigns,
            confidence=args.confidence,
            interval=args.interval,
            drift_alpha=args.drift_alpha,
            top=args.top,
            diff=args.diff,
            target_ci=args.target_ci,
        )
        target = Path(args.html)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(report, encoding="utf-8")
        print(f"repro-inspect: wrote {target}", file=sys.stderr)
    for problem in problems:
        print(f"repro-inspect: {problem}", file=sys.stderr)
    return 1 if (args.strict and problems) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
