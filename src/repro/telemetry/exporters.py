"""Metric exporters: Prometheus text, JSONL snapshots, summary tables.

Three consumers, three formats:

* a scrape endpoint or CI assertion wants the **Prometheus text
  exposition format** (:func:`prometheus_text`, with
  :func:`parse_prometheus_text` as the matching reader so round-trip
  checks need no third-party client);
* longitudinal tooling wants **JSONL snapshots** appended over time
  (:func:`append_snapshot`), in the same tolerant-reader dialect as
  every other campaign artifact;
* a human at the end of a run wants the **summary table**
  (:func:`summary_table`), rendered with :mod:`repro.util.tables`.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any

from repro.telemetry.clock import stamp
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.util.jsonlog import JsonlLog
from repro.util.tables import format_table

__all__ = [
    "append_snapshot",
    "parse_prometheus_samples",
    "parse_prometheus_series",
    "parse_prometheus_text",
    "prometheus_text",
    "quantile_from_samples",
    "snapshot_record",
    "summary_table",
    "write_metrics_file",
]


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """Escape HELP text per the exposition format (``\\`` and LF only).

    A help string containing a raw newline would otherwise split the
    comment mid-line and corrupt the sample that follows it.
    """
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape(value: str) -> str:
    """Invert :func:`_escape_label` (handles ``\\\\``, ``\\"``, ``\\n``)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value) and value[i + 1] in ('\\', '"', "n"):
            out.append("\n" if value[i + 1] == "n" else value[i + 1])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _series(name: str, labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return name
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sorted(merged.items()))
    return f"{name}{{{inner}}}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, slot in metric.items():
                cumulative = 0
                for bound, count in zip(metric.buckets, slot["buckets"]):
                    cumulative += int(count)
                    series = _series(
                        f"{metric.name}_bucket", labels, {"le": _format_value(bound)}
                    )
                    lines.append(f"{series} {cumulative}")
                cumulative += int(slot["buckets"][-1])
                lines.append(
                    f"{_series(f'{metric.name}_bucket', labels, {'le': '+Inf'})} {cumulative}"
                )
                lines.append(f"{_series(f'{metric.name}_sum', labels)} {float(slot['sum'])!r}")
                lines.append(f"{_series(f'{metric.name}_count', labels)} {int(slot['count'])}")
        elif isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.items():
                lines.append(f"{_series(metric.name, labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{series: value}``.

    Series keys keep their label block verbatim (sorted as written by
    :func:`prometheus_text`), e.g. ``repro_records_total{outcome="sdc"}``.
    Raises ``ValueError`` on any malformed sample line, so a CI step
    using this *is* the format check.
    """
    out: dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        brace = line.rfind("}")
        split_at = line.index(" ", brace) if brace != -1 else line.index(" ")
        series, value = line[:split_at], line[split_at + 1 :].strip()
        if not series:
            raise ValueError(f"malformed sample line: {raw!r}")
        out[series] = float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))
    return out


def parse_prometheus_series(series: str) -> tuple[str, dict[str, str]]:
    """Split a sample's series key into ``(name, labels)``, unescaping.

    The inverse of the series rendering in :func:`prometheus_text`:
    label values written with ``\\\\``/``\\"``/``\\n`` escapes come back
    as the original strings, so
    ``parse_prometheus_series(render(name, labels)) == (name, labels)``
    for every legal label set — including values holding backslashes,
    double quotes and newlines.
    """
    brace = series.find("{")
    if brace == -1:
        return series, {}
    if not series.endswith("}"):
        raise ValueError(f"malformed series key: {series!r}")
    name, inner = series[:brace], series[brace + 1 : -1]
    labels: dict[str, str] = {}
    i = 0
    while i < len(inner):
        if inner[i] in (",", " "):
            i += 1
            continue
        try:
            eq = inner.index("=", i)
        except ValueError:
            raise ValueError(f"malformed label block in {series!r}") from None
        key = inner[i:eq].strip()
        if eq + 1 >= len(inner) or inner[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {series!r}")
        j = eq + 2
        raw: list[str] = []
        while True:
            if j >= len(inner):
                raise ValueError(f"unterminated label value in {series!r}")
            ch = inner[j]
            if ch == "\\" and j + 1 < len(inner):
                raw.append(inner[j : j + 2])
                j += 2
            elif ch == '"':
                break
            else:
                raw.append(ch)
                j += 1
        labels[key] = _unescape("".join(raw))
        i = j + 1
    return name, labels


def parse_prometheus_samples(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Structured samples: ``{(name, sorted label items): value}``.

    Unlike :func:`parse_prometheus_text` (whose keys keep the label
    block verbatim, escapes included), this view unescapes every label
    value, so exporting a registry and parsing the text round-trips the
    exact label strings.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for series, value in parse_prometheus_text(text).items():
        name, labels = parse_prometheus_series(series)
        out[(name, tuple(sorted(labels.items())))] = value
    return out


def quantile_from_samples(
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float],
    name: str,
    q: float,
    **labels: str,
) -> float | None:
    """Estimate a histogram quantile from parsed ``<name>_bucket`` samples.

    The scrape-side twin of :meth:`~repro.telemetry.metrics.Histogram.
    quantile`: ``samples`` is the output of
    :func:`parse_prometheus_samples`, ``labels`` filters the series
    (e.g. ``worker="w0"``); series differing only in unfiltered labels
    are aggregated.  Returns ``None`` when no matching bucket sample
    exists or the histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    cumulative_by_bound: dict[float, float] = {}
    for (metric, label_items), value in samples.items():
        if metric != f"{name}_bucket":
            continue
        label_map = dict(label_items)
        le = label_map.pop("le", None)
        if le is None:
            continue
        if any(label_map.get(k) != str(v) for k, v in labels.items()):
            continue
        bound = math.inf if le == "+Inf" else float(le)
        cumulative_by_bound[bound] = cumulative_by_bound.get(bound, 0.0) + value
    if not cumulative_by_bound:
        return None
    bounds = sorted(cumulative_by_bound)
    total = cumulative_by_bound[bounds[-1]]
    if total <= 0:
        return None
    rank = q * total
    lower = 0.0
    before = 0.0
    largest_finite = max((b for b in bounds if math.isfinite(b)), default=0.0)
    for bound in bounds:
        cumulative = cumulative_by_bound[bound]
        in_bucket = cumulative - before
        if cumulative >= rank and in_bucket > 0:
            if not math.isfinite(bound):
                return largest_finite
            fraction = (rank - before) / in_bucket
            return lower + (bound - lower) * min(1.0, max(0.0, fraction))
        before = cumulative
        lower = bound if math.isfinite(bound) else lower
    return largest_finite


def snapshot_record(registry: MetricsRegistry, **extra: Any) -> dict[str, Any]:
    """One JSONL-able snapshot: timestamp pair, metrics, caller extras."""
    return {"kind": "metrics", **stamp(), "metrics": registry.snapshot(), **extra}


def append_snapshot(registry: MetricsRegistry, path: str | Path, **extra: Any) -> None:
    """Append a snapshot record to a JSONL file (created on first use)."""
    with JsonlLog(path) as log:
        log.append(snapshot_record(registry, **extra))


def summary_table(registry: MetricsRegistry, title: str = "campaign metrics") -> str:
    """Human-readable end-of-run table of every metric series."""
    rows: list[list[object]] = []
    for metric in registry.metrics():
        for labels, value in metric.items():
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"
            if isinstance(metric, Histogram):
                count = int(value["count"])
                mean = float(value["sum"]) / count if count else 0.0
                shown = f"n={count} mean={mean:.4f}s"
            else:
                shown = _format_value(float(value))
            rows.append([metric.name, metric.kind, rendered, shown])
    if not rows:
        rows.append(["(no metrics recorded)", "-", "-", "-"])
    return format_table(["metric", "kind", "labels", "value"], rows, title=title)


def write_metrics_file(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write a registry to ``path`` in the format its suffix implies.

    ``.json`` / ``.jsonl`` append a snapshot record (so repeated runs
    build a time series); anything else (``.prom``, ``.txt``, no
    suffix) overwrites with Prometheus exposition text.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if target.suffix in (".json", ".jsonl"):
        append_snapshot(registry, target)
    else:
        target.write_text(prometheus_text(registry), encoding="utf-8")
    return target
