"""Config-file driven campaigns — the artifact's workflow (Appendix A.4).

"Then, a configuration file is produced with all the information needed
by the fault injector.  Finally, the fault injector is executed with
the configuration file as an argument and how many times the experiment
should be repeated."  This module reproduces that interface: an INI
config names the benchmark, its parameters, the fault models, the site
policy and the log destination; the ``repro-carolfi`` CLI takes the
config plus a repetition count and runs the campaign.

Example config::

    [carol-fi]
    benchmark = dgemm
    injections = 1000
    seed = 2017
    fault_models = single, double, random, zero
    policy = weighted
    log = logs/dgemm.jsonl

    [benchmark.params]
    n = 60
    n_threads = 20
"""

from __future__ import annotations

import argparse
import configparser
import sys
from collections.abc import Sequence
from dataclasses import replace
from pathlib import Path

from repro.analysis.pvf import outcome_shares
from repro.benchmarks.registry import BENCHMARKS
from repro.carolfi.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.carolfi.flipscript import SitePolicy
from repro.faults.models import FaultModel

__all__ = ["load_config", "main", "parse_config_text", "run_from_config"]

_SECTION = "carol-fi"
_PARAMS_SECTION = "benchmark.params"


def _coerce(value: str):
    """INI values to Python: int, then float, then bool, then string."""
    text = value.strip()
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def parse_config_text(text: str) -> tuple[CampaignConfig, Path | None]:
    """Parse artifact-style INI *text* into a campaign plan + log path.

    The file-less twin of :func:`load_config`, shared with
    ``repro-serve`` where the config arrives as an HTTP request body
    rather than a file on this host's disk.
    """
    parser = configparser.ConfigParser()
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ValueError(f"unparseable config: {exc}") from exc
    return _config_from_parser(parser)


def load_config(path: str | Path) -> tuple[CampaignConfig, Path | None]:
    """Parse an artifact-style config file into a campaign plan + log path."""
    parser = configparser.ConfigParser()
    read = parser.read(str(path))
    if not read:
        raise FileNotFoundError(f"config file not found: {path}")
    return _config_from_parser(parser)


def _config_from_parser(
    parser: configparser.ConfigParser,
) -> tuple[CampaignConfig, Path | None]:
    if _SECTION not in parser:
        raise ValueError(f"config must have a [{_SECTION}] section")
    section = parser[_SECTION]

    benchmark = section.get("benchmark", "").strip()
    if benchmark not in BENCHMARKS:
        raise ValueError(
            f"unknown benchmark {benchmark!r}; known: {sorted(BENCHMARKS)}"
        )
    models_raw = section.get("fault_models", "single, double, random, zero")
    fault_models = tuple(
        FaultModel(m.strip().lower()) for m in models_raw.split(",") if m.strip()
    )
    params = {}
    if _PARAMS_SECTION in parser:
        params = {key: _coerce(value) for key, value in parser[_PARAMS_SECTION].items()}

    config = CampaignConfig(
        benchmark=benchmark,
        injections=section.getint("injections", 1000),
        seed=section.getint("seed", 2017),
        fault_models=fault_models,
        policy=SitePolicy(section.get("policy", "weighted").strip().lower()),
        watchdog_factor=section.getfloat("watchdog_factor", 10.0),
        benchmark_params=params,
        snapshots=section.getboolean("snapshots", True),
        batch_size=section.getint("batch_size", 1),
        target_ci=section.getfloat("target_ci", fallback=None),
    )
    log_value = section.get("log", "").strip()
    return config, (Path(log_value) if log_value else None)


def run_from_config(
    path: str | Path, repetitions: int | None = None
) -> CampaignResult:
    """Run the campaign a config describes.

    ``repetitions`` overrides the config's injection count — the second
    CLI argument of the artifact's workflow.
    """
    config, log_path = load_config(path)
    if repetitions is not None:
        if repetitions < 1:
            raise ValueError("repetitions must be positive")
        # dataclasses.replace keeps every other field — including ones
        # added after this code was written — instead of a hand-copied
        # constructor call silently resetting them to defaults.
        config = replace(config, injections=repetitions)
    return run_campaign(config, log_path=log_path)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-carolfi",
        description="Run a CAROL-FI campaign from an artifact-style config file.",
    )
    parser.add_argument("config", help="INI configuration file")
    parser.add_argument(
        "repetitions",
        nargs="?",
        type=int,
        default=None,
        help="how many injections to run (overrides the config)",
    )
    args = parser.parse_args(argv)
    result = run_from_config(args.config, args.repetitions)
    shares = outcome_shares(result.records)
    print(
        f"{result.config.benchmark}: {len(result)} injections -> "
        + "  ".join(f"{k} {100 * v:.1f}%" for k, v in shares.items())
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
