"""Campaign driver: thousands of injections per benchmark.

The paper injects at least 10,000 faults per benchmark, spread
uniformly over the four fault models and the whole execution time.
:func:`run_campaign` reproduces that sampling plan deterministically
under a single seed, optionally persisting every record to JSONL (the
public-log analogue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.benchmarks.registry import create
from repro.carolfi.flipscript import SitePolicy
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.faults.outcome import InjectionRecord, Outcome
from repro.util.jsonlog import JsonlLog

__all__ = ["CampaignConfig", "CampaignResult", "model_for", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """One benchmark's injection campaign plan."""

    benchmark: str
    injections: int = 1000
    seed: int = 2017
    fault_models: tuple[FaultModel, ...] = FaultModel.all()
    policy: SitePolicy = SitePolicy.WEIGHTED
    watchdog_factor: float = 10.0
    benchmark_params: dict[str, Any] = field(default_factory=dict)
    snapshots: bool = True
    """Enable the execution-prefix snapshot fast path (see
    :mod:`repro.carolfi.prefixcache`).  Pure execution strategy: records
    are bit-identical either way, so the flag is excluded from the
    checkpoint fingerprint — a campaign checkpointed with snapshots on
    may resume with them off, and vice versa."""

    batch_size: int = 1
    """Vectorized batch width for the batched-injection fast path (see
    :mod:`repro.carolfi.batchrunner`).  ``1`` disables batching; larger
    values group runs sharing a prefix-snapshot anchor and step their
    corrupted states together through the benchmarks' batched kernels.
    Like ``snapshots``, a pure execution strategy: per-run RNG streams
    are keyed by run index and divergent runs fall back to the scalar
    path, so records are byte-identical at any batch size — the knob is
    excluded from the checkpoint fingerprint and checkpoints stay
    resumable across batch-size changes.  Both isolation modes batch:
    in-process through the engine's shard loop, subprocess by shipping
    run groups into the sandboxed worker (fallback members return to
    the parent's scalar sandbox path)."""

    shared_store: bool = True
    """Map golden prefix snapshots and the pristine input from a
    host-wide shared-memory segment (:mod:`repro.carolfi.shmstore`)
    instead of cloning them per worker process; restores become
    copy-on-write views.  Engine campaigns only (the plain serial path
    keeps private copies).  Pure execution strategy like ``snapshots``:
    records are bit-identical either way and the flag is excluded from
    the checkpoint fingerprint.  ``REPRO_SHM=0`` in the environment
    overrides it off host-wide."""

    target_ci: float | None = None
    """Optional early-stopping precision target: stop the campaign at
    the first shard-merge boundary where every ``(benchmark,
    fault_model)`` cell's SDC and DUE confidence-interval half-width is
    at or below this value (see
    :class:`repro.telemetry.convergence.ConvergenceMonitor`).
    ``injections`` remains the run-budget cap.  Deliberately excluded
    from the checkpoint fingerprint: the target changes *where the
    campaign stops*, never what any record contains, so a checkpointed
    campaign may resume with a different target (or none) and the
    records stay bit-identical — a stopped campaign is always a prefix
    of the uncapped one."""

    def __post_init__(self) -> None:
        if self.injections < 1:
            raise ValueError("injections must be positive")
        if not self.fault_models:
            raise ValueError("at least one fault model is required")
        if self.target_ci is not None and not 0 < self.target_ci < 1:
            raise ValueError("target_ci must be in (0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe dict for shipping a campaign plan over the service
        wire (broker leases, ``repro-serve`` submissions).

        Exactly inverted by :meth:`from_wire`; both directions are pure
        value mappings, so a config survives any number of hops intact
        — which the determinism contract requires, because the config
        (with the seed inside) is what keys every run's RNG stream.
        """
        return {
            "benchmark": self.benchmark,
            "injections": self.injections,
            "seed": self.seed,
            "fault_models": [m.value for m in self.fault_models],
            "policy": self.policy.value,
            "watchdog_factor": self.watchdog_factor,
            "benchmark_params": dict(self.benchmark_params),
            "snapshots": self.snapshots,
            "batch_size": self.batch_size,
            "shared_store": self.shared_store,
            "target_ci": self.target_ci,
        }

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "CampaignConfig":
        """Rebuild a config from :meth:`to_wire` output (validating)."""
        known = {
            "benchmark",
            "injections",
            "seed",
            "fault_models",
            "policy",
            "watchdog_factor",
            "benchmark_params",
            "snapshots",
            "batch_size",
            "shared_store",
            "target_ci",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign config fields: {sorted(unknown)}")
        if "benchmark" not in data:
            raise ValueError("campaign config needs a benchmark")
        kwargs: dict[str, Any] = {"benchmark": str(data["benchmark"])}
        if "fault_models" in data:
            kwargs["fault_models"] = tuple(
                FaultModel(m) for m in data["fault_models"]
            )
        if "policy" in data:
            kwargs["policy"] = SitePolicy(data["policy"])
        for key in ("injections", "seed", "batch_size"):
            if key in data and data[key] is not None:
                kwargs[key] = int(data[key])
        if "watchdog_factor" in data and data["watchdog_factor"] is not None:
            kwargs["watchdog_factor"] = float(data["watchdog_factor"])
        if "benchmark_params" in data and data["benchmark_params"] is not None:
            kwargs["benchmark_params"] = dict(data["benchmark_params"])
        if "snapshots" in data and data["snapshots"] is not None:
            kwargs["snapshots"] = bool(data["snapshots"])
        if "shared_store" in data and data["shared_store"] is not None:
            kwargs["shared_store"] = bool(data["shared_store"])
        if "target_ci" in data and data["target_ci"] is not None:
            kwargs["target_ci"] = float(data["target_ci"])
        return cls(**kwargs)


@dataclass
class CampaignResult:
    """All records of one campaign plus cheap aggregations."""

    config: CampaignConfig
    records: list[InjectionRecord]
    stopped_early: bool = False
    """True when a ``target_ci`` convergence target stopped the
    campaign before exhausting ``config.injections``; the records are
    then a bit-identical prefix of the uncapped campaign's."""

    def __len__(self) -> int:
        return len(self.records)

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.records if r.outcome is outcome)

    def outcome_fractions(self) -> dict[str, float]:
        """Masked/SDC/DUE shares of all injections (Figure 4's bars)."""
        total = len(self.records)
        if total == 0:
            raise ValueError("empty campaign")
        return {o.value: self.count(o) / total for o in Outcome.all()}

    def by_fault_model(self) -> dict[str, list[InjectionRecord]]:
        out: dict[str, list[InjectionRecord]] = {}
        for record in self.records:
            out.setdefault(record.fault_model, []).append(record)
        return out

    def by_time_window(self) -> dict[int, list[InjectionRecord]]:
        out: dict[int, list[InjectionRecord]] = {}
        for record in self.records:
            out.setdefault(record.time_window, []).append(record)
        return out

    def by_var_class(self) -> dict[str, list[InjectionRecord]]:
        out: dict[str, list[InjectionRecord]] = {}
        for record in self.records:
            out.setdefault(record.site.var_class, []).append(record)
        return out


def model_for(config: CampaignConfig, run_index: int) -> FaultModel:
    """Fault model of one run under the round-robin sampling plan.

    The single source of the rotation rule: the serial driver, the
    sharded engine and the batch runner all derive a run's model here,
    so the plan can never drift between execution topologies.
    """
    return config.fault_models[run_index % len(config.fault_models)]


def run_campaign(
    config: CampaignConfig,
    log_path: str | Path | None = None,
    *,
    workers: int | None = 1,
    checkpoint_dir: str | Path | None = None,
    shard_size: int | None = None,
    progress: Any | None = None,
    isolation: Any | None = None,
    retry: Any | None = None,
    failure_log: str | Path | None = None,
    telemetry: Any | None = None,
    golden_cache: str | Path | None = None,
    backend: Any | None = None,
    steal: Any | None = None,
) -> CampaignResult:
    """Run a full injection campaign.

    Fault models rotate round-robin so every model receives an equal
    share; interrupt times are drawn uniformly per run by the
    Supervisor.  Deterministic for a given config: every run's random
    stream is keyed by ``(seed, benchmark, run_index)``, so the result
    is bit-identical for any ``workers`` count, shard layout or
    isolation mode.

    ``workers`` > 1 (or ``None`` for ``REPRO_WORKERS`` / cpu-count
    auto-detection), ``checkpoint_dir``, ``shard_size``, ``progress``,
    ``isolation`` (an :class:`~repro.carolfi.isolation.IsolationConfig`
    selecting subprocess sandboxing), ``retry`` (an
    :class:`~repro.carolfi.engine.RetryPolicy`) or ``failure_log``
    route the campaign through the sharded engine
    (:mod:`repro.carolfi.engine`), which adds parallel execution,
    resumable per-shard JSONL checkpoints and fault-domain supervision.
    ``telemetry`` (a :class:`~repro.telemetry.Telemetry` bundle) also
    routes through the engine, which populates the bundle's metrics
    registry and trace as the campaign runs.  The default (``workers=1``,
    no checkpointing, inproc isolation) keeps the plain in-process
    serial path below.

    ``golden_cache`` points at an on-disk golden-run cache directory
    (:mod:`repro.carolfi.goldencache`); it is an execution accelerator
    usable on both paths and never changes records.
    """
    engine_requested = (
        workers != 1
        or checkpoint_dir is not None
        or shard_size is not None
        or progress
        or isolation is not None
        or retry is not None
        or failure_log is not None
        or telemetry is not None
        or config.target_ci is not None
        or backend is not None
    )
    if engine_requested:
        from repro.carolfi.engine import run_sharded_campaign

        return run_sharded_campaign(
            config,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            shard_size=shard_size,
            progress=progress,
            log_path=log_path,
            isolation=isolation,
            retry=retry,
            failure_log=failure_log,
            telemetry=telemetry,
            golden_cache=golden_cache,
            backend=backend,
            steal=steal,
        )
    benchmark = create(config.benchmark, **config.benchmark_params)
    supervisor = Supervisor(
        benchmark,
        seed=config.seed,
        policy=config.policy,
        watchdog_factor=config.watchdog_factor,
        snapshots=config.snapshots,
        golden_cache=golden_cache,
    )
    log = JsonlLog(log_path) if log_path is not None else None
    records: list[InjectionRecord] = []
    runs = [
        (run_index, model_for(config, run_index))
        for run_index in range(config.injections)
    ]
    batched: dict[int, InjectionRecord] = {}
    if config.batch_size > 1:
        from repro.carolfi.batchrunner import BatchRunner

        batched = BatchRunner(supervisor, config.batch_size).run_many(runs)
    try:
        for run_index, model in runs:
            record = batched.get(run_index)
            if record is None:
                record = supervisor.run_one(run_index, model)
            records.append(record)
            if log is not None:
                log.append(record.to_dict())
    finally:
        if log is not None:
            log.close()
    return CampaignResult(config=config, records=records)
