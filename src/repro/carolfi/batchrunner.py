"""Vectorized batched injection for the CAROL-FI supervisor.

The prefix cache (PR 4) removed pre-injection replay; what remains is
the post-injection *suffix*, executed one run at a time through Python
orchestration.  This module batches those suffixes: the run list is
sorted by interrupt step and chunked into groups of ``batch_size``; a
group walks the golden trajectory once from the earliest member's
prefix anchor, members join at their own interrupt steps, and the
group's corrupted states are stepped together through the benchmark's
vectorized batch protocol
(:meth:`~repro.benchmarks.base.Benchmark.step_batch`), turning N Python
step loops into one loop over batched NumPy kernels.

**The golden carrier.**  Each group walks one scalar "carrier" state
along the pure golden trajectory from the anchor to the end.  Members
join the walk at their interrupt step — the carrier is cloned (that
clone *is* the bit-exact golden prefix the scalar path would have
produced) and corrupted with the member's own RNG.  Before every
batched step, each member's control state is compared against the
carrier (:meth:`~repro.benchmarks.base.Benchmark.batch_coherent`); any
divergence — a corrupted pointer, dimension, cursor, or out-of-range
residue, i.e. exactly the faults whose scalar execution would branch
differently or crash — routes the member to the **scalar fallback**:
the caller simply re-runs it through ``Supervisor.run_one``, which
re-derives the per-run RNG from scratch and is therefore byte-identical
by construction.  The coherence contract is one-sided (a false negative
only costs a fallback), so implementations are strict, never clever.

Records produced on the vectorized path are byte-identical to the
scalar path because every ingredient is shared: the per-run RNG is
keyed by run index (``Supervisor.run_rng``), the injected prefix state
is a bit-exact clone, the benchmarks' ``step_batch`` contract requires
bit-identical outputs, and classification goes through the same
``Supervisor.classify_output``/``make_record`` helpers.

Batch-path telemetry (all new families; like the other fast-path
counters they describe *work saved in this process* and may differ
across execution topologies — fallback decisions can depend on cache
state and wall-clock deadlines):

* ``repro_batch_groups_total{benchmark}`` — carrier walks executed;
* ``repro_batch_runs_total{benchmark, path}`` — runs completed on the
  ``vectorized`` path versus handed back for ``fallback``;
* ``repro_batch_fallback_total{benchmark, reason}`` — why members left
  the batch (``unsupported``, ``incoherent``, ``exception``,
  ``deadline``);
* ``repro_batch_occupancy`` — histogram of members per group (higher is
  better amortisation).
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.benchmarks.base import BenchmarkHang, arm_deadline
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.faults.outcome import InjectionRecord
from repro.faults.site import FaultSite
from repro.telemetry import current_registry, current_tracer

__all__ = ["BatchRunner", "OCCUPANCY_BUCKETS"]

#: Histogram buckets for members-per-group occupancy (powers of two up
#: to the largest batch size the tests exercise).
OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class _Member:
    """One run riding a batch group: planner output plus live state."""

    __slots__ = ("run_index", "model", "interrupt_step", "rng", "state", "site", "bits")

    def __init__(
        self,
        run_index: int,
        model: FaultModel,
        interrupt_step: int,
        rng: np.random.Generator,
    ):
        self.run_index = run_index
        self.model = model
        self.interrupt_step = interrupt_step
        self.rng = rng
        self.state: Any = None
        self.site: FaultSite | None = None
        self.bits: tuple[int, ...] | None = None


class BatchRunner:
    """Plans and executes vectorized batch groups for one supervisor.

    ``run_many`` is *total*: it never raises for any per-run condition.
    Runs it cannot complete on the vectorized path are simply absent
    from the returned mapping, and the caller finishes them through the
    ordinary scalar ``Supervisor.run_one`` — which is what makes every
    failure mode (divergence, exception, deadline, unsupported
    benchmark) correct by construction rather than by case analysis.
    """

    def __init__(self, supervisor: Supervisor, batch_size: int):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.supervisor = supervisor
        self.batch_size = int(batch_size)

    # -- telemetry ------------------------------------------------------------

    def _mark_fallback(self, count: int, reason: str) -> None:
        if count <= 0:
            return
        name = self.supervisor.benchmark.name
        registry = current_registry()
        registry.counter(
            "repro_batch_fallback_total", help="Batch members routed to scalar fallback."
        ).inc(float(count), benchmark=name, reason=reason)
        registry.counter(
            "repro_batch_runs_total", help="Runs finished per execution path."
        ).inc(float(count), benchmark=name, path="fallback")

    def _mark_vectorized(self, count: int) -> None:
        if count <= 0:
            return
        current_registry().counter(
            "repro_batch_runs_total", help="Runs finished per execution path."
        ).inc(float(count), benchmark=self.supervisor.benchmark.name, path="vectorized")

    # -- planning -------------------------------------------------------------

    def run_many(
        self,
        runs: Sequence[tuple[int, FaultModel]],
        interrupt_steps: Mapping[int, int] | None = None,
    ) -> dict[int, InjectionRecord]:
        """Execute as many of ``runs`` as possible on the batch path.

        Returns records keyed by run index for every run completed
        vectorized; a missing key means "finish this one with
        ``run_one``".  ``interrupt_steps`` optionally pins specific
        runs' interrupt steps (mirroring ``run_one``'s parameter: the
        pinned run skips its RNG interrupt draw).
        """
        sup = self.supervisor
        records: dict[int, InjectionRecord] = {}
        if not runs:
            return records
        if not sup.benchmark.supports_batching:
            self._mark_fallback(len(runs), "unsupported")
            return records

        total = sup.total_steps
        members: list[_Member] = []
        for run_index, model in runs:
            rng = sup.run_rng(run_index)
            if interrupt_steps is not None and run_index in interrupt_steps:
                step = int(interrupt_steps[run_index])
            else:
                step = int(rng.integers(0, total))
            if not 0 <= step < total:
                raise ValueError(f"interrupt step {step} out of range")
            members.append(_Member(run_index, FaultModel(model), step, rng))

        # One group is simply a chunk of the interrupt-step-sorted run
        # list: members join the walk at their own steps, and the walk
        # starts at the prefix anchor of the *earliest* member.  Groups
        # deliberately span anchors — borrowing the golden reference
        # from the snapshot store makes the extra walked steps free, so
        # occupancy (amortisation) is limited only by ``batch_size``.
        members.sort(key=lambda m: (m.interrupt_step, m.run_index))
        for lo in range(0, len(members), self.batch_size):
            chunk = members[lo : lo + self.batch_size]
            anchor = (
                sup.prefix.anchor_step(chunk[0].interrupt_step)
                if sup.prefix is not None
                else 0
            )
            self._run_group(anchor, chunk, records)
        return records

    # -- one group ------------------------------------------------------------

    def _run_group(
        self,
        anchor: int,
        members: list[_Member],
        records: dict[int, InjectionRecord],
    ) -> None:
        """One carrier walk: restore once, join, gate, batch-step, classify."""
        sup = self.supervisor
        bench = sup.benchmark
        total = sup.total_steps
        registry = current_registry()
        registry.counter(
            "repro_batch_groups_total", help="Vectorized batch groups executed."
        ).inc(1.0, benchmark=bench.name)
        registry.histogram(
            "repro_batch_occupancy",
            help="Members per vectorized batch group.",
            buckets=OCCUPANCY_BUCKETS,
        ).observe(float(len(members)), benchmark=bench.name)

        # One deadline for the whole walk, scaled by occupancy: the group
        # does the work of len(members) scalar runs.  Tripping it is not
        # a DUE — members fall back to run_one, whose own watchdog then
        # observes any genuine hang scalar-side.
        deadline = (
            time.perf_counter()
            + sup.watchdog_factor * sup.golden_runtime * max(len(members), 1)
            + 1.0
        )
        active: list[_Member] = []
        joined = 0
        span = current_tracer().span(
            "batch_group", anchor=anchor, members=len(members)
        )
        with span:
            try:
                arm_deadline(deadline)
                # The golden reference at the entry of each step.  When
                # the snapshot store holds the next step (dense stores:
                # interval 1 means *every* step), the reference is
                # *borrowed* read-only straight from the store — zero
                # copies, zero golden re-stepping.  Only across store
                # gaps does a mutable carrier materialise and step the
                # golden trajectory scalar-side (and then it fills the
                # store's gaps opportunistically, exactly like
                # run_one's pre-injection replay).
                carrier: Any = None  # mutable golden state, ours to step
                borrowed: Any = None  # read-only golden state, store-owned
                # step_batch's opaque carry: member bulk data stays
                # stacked across consecutive steps while membership is
                # unchanged.  Any membership change (join, incoherence
                # drop) flushes the old carry back into its states
                # first; a step_batch exception discards it (everyone
                # falls back to the scalar path anyway).
                carry: Any = None
                carry_states: list[Any] = []
                borrowed_snap: Any = None  # the store Snapshot behind `borrowed`
                if anchor > 0 and sup.prefix is not None:
                    snap = sup.prefix.latest(anchor)
                    if snap is not None and snap.step == anchor:
                        borrowed = snap.state
                        borrowed_snap = snap
                if borrowed is None:
                    anchor = 0
                    borrowed = sup._pristine

                def clone_view() -> Any:
                    # A writable copy of the current golden reference.
                    # Snapshot- and pristine-backed views go through the
                    # store / supervisor so a shared-memory segment can
                    # hand out copy-on-write mappings; a stepped carrier
                    # is plainly deep-copied.  All three are bit-exact.
                    if (
                        borrowed_snap is not None
                        and sup.prefix is not None
                        and borrowed is borrowed_snap.state
                    ):
                        return sup.prefix.materialize(borrowed_snap)
                    if borrowed is not None and borrowed is sup._pristine:
                        return sup._fresh_state()
                    return bench.restore(view)

                for index in range(anchor, total):
                    view = carrier if borrowed is None else borrowed
                    if (
                        carrier is not None
                        and sup.prefix is not None
                        and sup.prefix.wants(index)
                    ):
                        sup.prefix.capture(index, carrier)
                    while (
                        joined < len(members)
                        and members[joined].interrupt_step == index
                    ):
                        member = members[joined]
                        joined += 1
                        # The clone is the member's bit-exact golden
                        # prefix: restore-at-anchor plus golden steps is
                        # indistinguishable from the scalar path's own
                        # restore-and-replay.
                        member.state = clone_view()
                        member.site, member.bits = sup.flip.inject(
                            bench, member.state, index, member.model, member.rng
                        )
                        # Coherence is gated once, at injection: the
                        # batch contract forbids ``step_batch`` from
                        # deriving control state from member data, so a
                        # member coherent here stays on the golden
                        # control trajectory for the rest of the walk.
                        if bench.batch_coherent(member.state, view, index):
                            active.append(member)
                        else:
                            self._mark_fallback(1, "incoherent")
                    if not active and joined == len(members):
                        break  # everyone finished or fell back: no walk left
                    if active:
                        batch_states = [m.state for m in active]
                        if carry is not None and (
                            len(batch_states) != len(carry_states)
                            or any(
                                a is not b
                                for a, b in zip(batch_states, carry_states)
                            )
                        ):
                            bench.batch_flush(carry_states, carry)
                            carry = None
                        try:
                            carry = bench.step_batch(batch_states, index, carry)
                            carry_states = batch_states if carry is not None else []
                        except BenchmarkHang:
                            raise
                        except Exception:
                            # A raise with coherent controls should be
                            # impossible; whatever it was, the scalar
                            # fallback classifies it authoritatively.
                            self._mark_fallback(len(active), "exception")
                            active = []
                            carry, carry_states = None, []
                    if index + 1 < total:
                        if joined == len(members):
                            # No joins left: the golden reference has no
                            # remaining reader, so stop maintaining it
                            # (dropping it also stops opportunistic
                            # store fills from a now-stale carrier).
                            borrowed, carrier, borrowed_snap = None, None, None
                        else:
                            nxt = (
                                sup.prefix.latest(index + 1)
                                if sup.prefix is not None
                                else None
                            )
                            if nxt is not None and nxt.step == index + 1:
                                borrowed, carrier = nxt.state, None
                                borrowed_snap = nxt
                            else:
                                if carrier is None:
                                    carrier = clone_view()
                                bench.step(carrier, index)
                                borrowed, borrowed_snap = None, None
                    if time.perf_counter() > deadline:
                        raise BenchmarkHang("batch group deadline expired")
                if carry is not None:
                    # Classification reads member data: restore full
                    # bit-exact states first.
                    bench.batch_flush(carry_states, carry)
                    carry, carry_states = None, []
                for member in active:
                    observed = sup._quantize(bench.output(member.state))
                    outcome, sdc_metrics = sup.classify_output(observed)
                    records[member.run_index] = sup.make_record(
                        member.run_index,
                        member.model,
                        member.interrupt_step,
                        member.site,
                        member.bits,
                        outcome,
                        sdc_metrics=sdc_metrics,
                    )
                    self._mark_vectorized(1)
            except BenchmarkHang:
                remaining = len(
                    [m for m in active + members[joined:] if m.run_index not in records]
                )
                self._mark_fallback(remaining, "deadline")
            except Exception:
                # Carrier-walk or classification failure: golden carriers
                # never raise, so this is defensive — every unrecorded
                # member finishes scalar.
                remaining = len(
                    [m for m in active + members[joined:] if m.run_index not in records]
                )
                self._mark_fallback(remaining, "exception")
            finally:
                arm_deadline(None)
