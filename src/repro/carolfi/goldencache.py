"""On-disk golden-run cache keyed by campaign identity.

The golden run (plus its warm-up) is the one piece of work the
``fork``-based supervisor cache cannot amortise everywhere: spawn-based
platforms pay it once per worker process, and a resumed campaign pays it
again even when every shard replays from its checkpoint.  This cache
persists the quantized golden output, its measured runtime and the step
count under a key hashing *exactly* the inputs that determine them —
the same identity :func:`repro.carolfi.isolation.supervisor_key` uses —
so any process, in any session, can skip straight to injecting.

Entries are written atomically (temp file + ``os.replace``) and carry a
SHA-256 digest of the array bytes; a corrupt, truncated or
foreign-dtype entry fails verification and is treated as a miss, never
an error — the Supervisor just recomputes and rewrites it.

The cache directory comes from an explicit path (the engine defaults to
``<checkpoint_dir>/golden-cache``) or the ``REPRO_GOLDEN_CACHE``
environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "GOLDEN_CACHE_ENV",
    "GoldenCache",
    "GoldenEntry",
    "golden_cache_key",
    "resolve_golden_cache",
]

#: Environment variable naming a default golden-cache directory.
GOLDEN_CACHE_ENV = "REPRO_GOLDEN_CACHE"

#: Entry format version (bump on incompatible layout changes).
_ENTRY_VERSION = 1


def golden_cache_key(
    benchmark: str,
    seed: int,
    watchdog_factor: float,
    benchmark_params: dict[str, Any],
) -> str:
    """Stable hash of everything that determines one golden run.

    Note what is *absent*: the site policy (it only affects where faults
    land, never the fault-free execution), the snapshot flag, and every
    engine knob.  Two campaigns differing only in those share one entry.
    ``watchdog_factor`` is included because the stored runtime feeds the
    watchdog budget — conservatively invalidating on a change keeps the
    stored-vs-measured runtime question out of the hang classifier.
    """
    payload = {
        "version": _ENTRY_VERSION,
        "benchmark": benchmark,
        "seed": int(seed),
        "watchdog_factor": float(watchdog_factor),
        "benchmark_params": benchmark_params,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class GoldenEntry:
    """One cached golden run."""

    golden: np.ndarray
    runtime: float
    total_steps: int


class GoldenCache:
    """Directory of golden runs, one ``.npy`` + ``.json`` pair per key."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.npy", self.root / f"{key}.json"

    @staticmethod
    def _digest(golden: np.ndarray) -> str:
        return hashlib.sha256(np.ascontiguousarray(golden).tobytes()).hexdigest()

    def load(self, key: str) -> GoldenEntry | None:
        """The entry for ``key``, or ``None`` on miss/corruption."""
        array_path, meta_path = self._paths(key)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            golden = np.load(array_path, allow_pickle=False)
        except (OSError, ValueError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("version") != _ENTRY_VERSION:
            return None
        try:
            runtime = float(meta["runtime"])
            total_steps = int(meta["total_steps"])
            digest = str(meta["digest"])
        except (KeyError, TypeError, ValueError):
            return None
        if runtime <= 0 or total_steps < 1 or digest != self._digest(golden):
            return None
        return GoldenEntry(golden=golden, runtime=runtime, total_steps=total_steps)

    def store(self, key: str, entry: GoldenEntry) -> None:
        """Persist ``entry`` atomically; IO failures are swallowed.

        The cache is an accelerator: a read-only or full disk must never
        fail a campaign that could simply recompute.
        """
        array_path, meta_path = self._paths(key)
        meta = {
            "version": _ENTRY_VERSION,
            "runtime": float(entry.runtime),
            "total_steps": int(entry.total_steps),
            "digest": self._digest(entry.golden),
            "dtype": str(entry.golden.dtype),
            "shape": list(entry.golden.shape),
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._write_atomic(array_path, entry.golden)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(meta, fh, sort_keys=True)
            os.replace(tmp, meta_path)
        except OSError:
            pass

    def _write_atomic(self, path: Path, golden: np.ndarray) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npy.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, golden, allow_pickle=False)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def resolve_golden_cache(
    cache: "GoldenCache | str | Path | None",
) -> GoldenCache | None:
    """Coerce a cache argument: instance, path, or ``None`` (then env)."""
    if isinstance(cache, GoldenCache):
        return cache
    if cache is not None:
        return GoldenCache(cache)
    env = os.environ.get(GOLDEN_CACHE_ENV, "").strip()
    return GoldenCache(env) if env else None
