"""Parser scripts for persisted campaign logs.

The paper ships parser scripts that turn the raw public logs into the
figures; this module re-reads the JSONL campaign logs written by
:func:`repro.carolfi.campaign.run_campaign` (and by the beam driver)
back into typed records, so all downstream analysis can run from logs
alone.
"""

from __future__ import annotations

from pathlib import Path

from repro.faults.outcome import InjectionRecord
from repro.util.jsonlog import load_records

__all__ = ["load_injection_log", "merge_logs"]


def load_injection_log(path: str | Path) -> list[InjectionRecord]:
    """Read one campaign's JSONL log back into records."""
    return [InjectionRecord.from_dict(raw) for raw in load_records(path)]


def merge_logs(*paths: str | Path) -> list[InjectionRecord]:
    """Concatenate several campaign logs (e.g. per-model shards)."""
    records: list[InjectionRecord] = []
    for path in paths:
        records.extend(load_injection_log(path))
    return records
