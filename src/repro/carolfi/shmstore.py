"""Shared-memory snapshot segments: one golden prefix per host.

The prefix-snapshot store (:mod:`repro.carolfi.prefixcache`) and the
memoised pristine input dataset are pure functions of the campaign
identity — every worker process on a host rebuilds (or clones) the
same bytes.  This module serialises them **once per host** into an
mmap-backed segment file and gives every other process a zero-copy
read path:

* the segment lives under ``/dev/shm`` (tmpfs) where available, so
  "file" means "page cache shared by every mapper", not disk I/O;
* attachers map the payload ``ACCESS_READ`` and borrow snapshot states
  as read-only ndarray views — the golden reference the batch runner
  walks costs zero copies in every process;
* restores map the payload ``ACCESS_COPY`` (``MAP_PRIVATE``): the
  restored state's arrays are copy-on-write views whose pages are
  duplicated by the OS only when the injected execution actually
  writes them, so per-worker RSS no longer scales with the snapshot
  set.

**Integrity.**  A segment carries a JSON manifest with SHA-256 digests
of both the pickled state skeleton and the raw array payload; attach
verifies the digests *before* unpickling and returns a miss on any
mismatch, so a torn write or corrupted segment degrades to the
per-process clone path, never to wrong records.  Publication is atomic
(temp file + ``os.replace``), and the content is a deterministic
function of the key, so a stale-but-valid segment from a concurrent
publisher is always correct to adopt.

**Ownership.**  Only the process that published a segment may unlink
it (the registry is pid-guarded, so forked children never reap their
parent's segments).  Attachers own nothing — a worker killed with
``SIGKILL`` mid-restore cannot leak a ``/dev/shm`` entry.  Publishers
release explicitly (:func:`release_published`, called by the campaign
engine at teardown) with an ``atexit`` hook as the backstop.

**Byte-identity.**  A materialised state is bit-for-bit the state
:func:`repro.benchmarks.base.clone_state` would have produced: arrays
are packed C-contiguous with dtype and shape preserved, scalars ride
the pickled skeleton unchanged, and ``clone()``-style objects are
rebuilt attribute by attribute via ``object.__new__`` exactly like
their own ``clone()`` methods.  The records of a campaign are
therefore identical with the store on or off — the CI ``cmp`` gates
enforce it.
"""

from __future__ import annotations

import atexit
import hashlib
import io
import json
import mmap
import os
import pickle
import tempfile
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "SHM_DIR_ENV",
    "SHM_DISABLE_ENV",
    "ShmSegment",
    "attach",
    "publish",
    "release_published",
    "shm_dir",
    "shm_enabled",
    "store_key",
]

#: Directory override for segment files (default: ``/dev/shm`` where it
#: exists, else the system temp dir).  Every process on a host must
#: resolve the same directory for attachment to work.
SHM_DIR_ENV = "REPRO_SHM_DIR"

#: Kill switch: ``REPRO_SHM=0`` disables the shared store everywhere
#: (records are identical either way; this is purely an accelerator).
SHM_DISABLE_ENV = "REPRO_SHM"

#: Segment format version (bump on incompatible layout changes).
_SEGMENT_VERSION = 1

_MAGIC = b"RPROSHM1"
_ALIGN = 64


def shm_enabled() -> bool:
    """Whether the shared snapshot store may be used at all."""
    return os.environ.get(SHM_DISABLE_ENV, "").strip() != "0"


def shm_dir() -> Path:
    """The host-wide segment directory (see :data:`SHM_DIR_ENV`)."""
    env = os.environ.get(SHM_DIR_ENV, "").strip()
    if env:
        return Path(env)
    dev_shm = Path("/dev/shm")
    if dev_shm.is_dir() and os.access(dev_shm, os.W_OK):
        return dev_shm
    return Path(tempfile.gettempdir())


def store_key(
    benchmark: str,
    seed: int,
    watchdog_factor: float,
    benchmark_params: dict[str, Any],
    *,
    density: int | None = None,
    byte_budget: int | None = None,
) -> str:
    """Stable hash of everything that determines a segment's content.

    Mirrors :func:`repro.carolfi.goldencache.golden_cache_key` (the
    golden trajectory identity) plus the snapshot-cadence knobs, which
    determine *which* prefix states the segment carries.  The site
    policy and every engine knob are absent for the same reason they
    are absent from the golden-cache key.
    """
    payload = {
        "version": _SEGMENT_VERSION,
        "benchmark": benchmark,
        "seed": int(seed),
        "watchdog_factor": float(watchdog_factor),
        "benchmark_params": benchmark_params,
        "density": density,
        "byte_budget": byte_budget,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def segment_path(key: str) -> Path:
    """Where the segment for ``key`` lives on this host."""
    return shm_dir() / f"repro-shm-{key[:40]}.seg"


# -- state tree (de)serialisation ----------------------------------------------
#
# The walk mirrors repro.benchmarks.base.clone_state node for node, so
# everything that can be snapshotted can be packed.  Arrays become
# ("arr", payload_offset, shape, dtype) placeholders with their bytes
# appended to the payload; rebuilding swaps the placeholders for views
# over whichever mapping (shared read-only or private copy-on-write)
# the caller supplies.


def _pack(obj: Any, payload: io.BytesIO) -> Any:
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise TypeError("cannot share object-dtype arrays")
        if not obj.flags.c_contiguous:
            # clone_state preserves exotic memory orders; the packed
            # form cannot, so refuse and let the caller fall back to
            # the private clone path.
            raise TypeError("cannot share non-C-contiguous arrays")
        pos = payload.tell()
        pad = (-pos) % _ALIGN
        if pad:
            payload.write(b"\0" * pad)
        offset = payload.tell()
        payload.write(obj.tobytes())
        return ("arr", offset, tuple(obj.shape), obj.dtype.str)
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return ("val", obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            "dc",
            type(obj),
            {f.name: _pack(getattr(obj, f.name), payload) for f in fields(obj)},
        )
    if isinstance(obj, dict):
        return ("dict", {key: _pack(value, payload) for key, value in obj.items()})
    if isinstance(obj, (list, tuple)):
        tag = "list" if isinstance(obj, list) else "tuple"
        return (tag, [_pack(value, payload) for value in obj])
    if callable(getattr(obj, "clone", None)):
        # PointerTable, AmrMesh, ...: rebuilt attribute by attribute via
        # object.__new__, exactly the construction their own clone()
        # methods use (bypassing __init__ validation on purpose — a
        # snapshot may hold corrupted-but-live values).
        return (
            "obj",
            type(obj),
            {name: _pack(value, payload) for name, value in vars(obj).items()},
        )
    raise TypeError(f"cannot share state component of type {type(obj).__name__}")


def _unpack(node: Any, buf: Any, base: int) -> Any:
    tag = node[0]
    if tag == "arr":
        _, offset, shape, dtype = node
        dt = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= dim
        arr = np.frombuffer(buf, dtype=dt, count=count, offset=base + offset)
        return arr.reshape(shape)
    if tag == "val":
        return node[1]
    if tag == "dc":
        _, cls, kwargs = node
        return cls(**{name: _unpack(sub, buf, base) for name, sub in kwargs.items()})
    if tag == "dict":
        return {key: _unpack(sub, buf, base) for key, sub in node[1].items()}
    if tag == "list":
        return [_unpack(sub, buf, base) for sub in node[1]]
    if tag == "tuple":
        return tuple(_unpack(sub, buf, base) for sub in node[1])
    if tag == "obj":
        _, cls, attrs = node
        dup = object.__new__(cls)
        for name, sub in attrs.items():
            setattr(dup, name, _unpack(sub, buf, base))
        return dup
    raise ValueError(f"unknown skeleton node tag {tag!r}")


# -- segments ------------------------------------------------------------------


class ShmSegment:
    """One attached (or freshly published) snapshot segment.

    Read-only state trees (:attr:`pristine`, :meth:`snapshot_state`,
    :attr:`golden`) are views over one shared ``ACCESS_READ`` mapping;
    :meth:`materialize` rebuilds a *writable* state over a fresh
    private ``ACCESS_COPY`` mapping, whose pages the OS duplicates only
    on write.  The file object is kept open for the segment's lifetime
    so new private mappings remain possible after the publisher unlinks
    the path.
    """

    def __init__(self, path: Path, fobj: Any, header: dict[str, Any], skeleton: Any):
        self.path = path
        self._file = fobj
        self.header = header
        self._skeleton = skeleton
        self._payload_base = int(header["payload_offset"])
        size = self._payload_base + int(header["payload_size"])
        self._read_map = mmap.mmap(fobj.fileno(), size, access=mmap.ACCESS_READ)
        self._pristine: Any = None
        self._golden: np.ndarray | None = None
        self._snapshots: dict[int, Any] = {}

    # -- metadata --------------------------------------------------------------

    @property
    def key(self) -> str:
        return str(self.header["key"])

    @property
    def benchmark(self) -> str:
        return str(self.header["benchmark"])

    @property
    def total_steps(self) -> int:
        return int(self.header["total_steps"])

    @property
    def interval(self) -> int:
        return int(self.header["interval"])

    @property
    def golden_runtime(self) -> float:
        return float(self.header["golden_runtime"])

    @property
    def degraded(self) -> bool:
        return bool(self.header.get("degraded", False))

    @property
    def snapshot_steps(self) -> list[int]:
        return [int(step) for step in self.header["snapshot_steps"]]

    @property
    def snapshot_nbytes(self) -> list[int]:
        return [int(n) for n in self.header["snapshot_nbytes"]]

    @property
    def payload_bytes(self) -> int:
        return int(self.header["payload_size"])

    # -- zero-copy reads -------------------------------------------------------

    @property
    def pristine(self) -> Any:
        """The pristine input state as read-only shared views."""
        if self._pristine is None:
            self._pristine = _unpack(
                self._skeleton["pristine"], self._read_map, self._payload_base
            )
        return self._pristine

    @property
    def golden(self) -> np.ndarray:
        """The quantized golden output as a read-only shared view."""
        if self._golden is None:
            self._golden = _unpack(
                self._skeleton["golden"], self._read_map, self._payload_base
            )
        return self._golden

    def snapshot_state(self, step: int) -> Any:
        """The snapshot at ``step`` as read-only shared views."""
        if step not in self._snapshots:
            self._snapshots[step] = _unpack(
                self._skeleton["snapshots"][step], self._read_map, self._payload_base
            )
        return self._snapshots[step]

    # -- copy-on-write restores ------------------------------------------------

    def materialize(self, which: int | None) -> Any:
        """A writable state (``None`` = pristine, else a snapshot step).

        Every call maps the payload privately (``ACCESS_COPY``); the
        returned arrays view that mapping, so the "copy" is lazy: the
        OS duplicates exactly the pages the run writes.  The mapping's
        lifetime is tied to the arrays through the buffer protocol.
        """
        private = mmap.mmap(
            self._file.fileno(),
            self._payload_base + int(self.header["payload_size"]),
            access=mmap.ACCESS_COPY,
        )
        node = (
            self._skeleton["pristine"]
            if which is None
            else self._skeleton["snapshots"][which]
        )
        return _unpack(node, private, self._payload_base)

    def close(self) -> None:  # pragma: no cover — tests use fresh processes
        """Drop the shared mapping (views become invalid: callers only)."""
        self._pristine = None
        self._golden = None
        self._snapshots.clear()
        try:
            self._read_map.close()
        finally:
            self._file.close()


# -- publish / attach ----------------------------------------------------------

#: Segments created by *this* process: path -> publishing pid.  The pid
#: guard keeps forked children from reaping their parent's segments.
_PUBLISHED: dict[str, int] = {}


def _unlink_published() -> None:
    pid = os.getpid()
    for path, owner in list(_PUBLISHED.items()):
        if owner != pid:
            continue
        del _PUBLISHED[path]
        try:
            os.unlink(path)
        except OSError:
            pass


atexit.register(_unlink_published)


def release_published() -> None:
    """Unlink every segment this process published (engine teardown)."""
    _unlink_published()


def reap(key: str) -> None:
    """Unlink ``key``'s segment whoever published it (campaign teardown).

    The publisher normally reaps its own segments, but a publisher that
    dies abruptly (``kill -9``, a chaos-killed worker agent) cannot —
    so the campaign engine sweeps its campaign's key at teardown.
    Unlinking is always safe for attachers (their mappings pin the
    inode); a concurrent identical campaign merely republishes.
    """
    path = segment_path(key)
    _PUBLISHED.pop(str(path), None)
    try:
        os.unlink(path)
    except OSError:
        pass


def publish(
    key: str,
    *,
    benchmark: str,
    total_steps: int,
    interval: int,
    golden_runtime: float,
    degraded: bool,
    pristine: Any,
    snapshots: list[tuple[int, Any, int]],
    golden: np.ndarray,
) -> ShmSegment | None:
    """Serialise one supervisor's golden prefix into a host segment.

    ``snapshots`` is ``[(step, state, nbytes), ...]``.  Returns an
    attached :class:`ShmSegment` over the freshly written file, or
    ``None`` when the state cannot be shared (unshareable component,
    filesystem failure) — the caller then keeps its private copies; a
    publish failure must never fail a campaign that can simply clone.
    """
    payload = io.BytesIO()
    try:
        skeleton = {
            "pristine": _pack(pristine, payload),
            "snapshots": {
                int(step): _pack(state, payload) for step, state, _ in snapshots
            },
            "golden": _pack(np.ascontiguousarray(golden), payload),
        }
    except TypeError:
        return None
    payload_bytes = payload.getvalue()
    skeleton_bytes = pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "version": _SEGMENT_VERSION,
        "key": key,
        "benchmark": benchmark,
        "total_steps": int(total_steps),
        "interval": int(interval),
        "golden_runtime": float(golden_runtime),
        "degraded": bool(degraded),
        "snapshot_steps": [int(step) for step, _, _ in snapshots],
        "snapshot_nbytes": [int(nbytes) for _, _, nbytes in snapshots],
        "skeleton_size": len(skeleton_bytes),
        "skeleton_sha256": hashlib.sha256(skeleton_bytes).hexdigest(),
        "payload_size": len(payload_bytes),
        "payload_sha256": hashlib.sha256(payload_bytes).hexdigest(),
    }
    target = segment_path(key)
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
        # Fixed preamble: magic, header length, then the two section
        # offsets as binary fields (keeping them out of the JSON avoids
        # a chicken-and-egg on the header's own length).
        preamble_len = len(_MAGIC) + 24
        skeleton_offset = preamble_len + len(header_blob)
        skeleton_offset += (-skeleton_offset) % _ALIGN
        payload_offset = skeleton_offset + len(skeleton_bytes)
        payload_offset += (-payload_offset) % _ALIGN
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".seg.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(len(header_blob).to_bytes(8, "little"))
                fh.write(skeleton_offset.to_bytes(8, "little"))
                fh.write(payload_offset.to_bytes(8, "little"))
                fh.write(header_blob)
                fh.write(b"\0" * (skeleton_offset - preamble_len - len(header_blob)))
                fh.write(skeleton_bytes)
                fh.write(b"\0" * (payload_offset - skeleton_offset - len(skeleton_bytes)))
                fh.write(payload_bytes)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None
    _PUBLISHED[str(target)] = os.getpid()
    return attach(key)


def attach(key: str) -> ShmSegment | None:
    """Map the segment for ``key``, or ``None`` on miss/corruption.

    Both digests are verified against the manifest before the skeleton
    is unpickled; any inconsistency — truncation, torn write, foreign
    key, version skew — is a miss, never an error.
    """
    path = segment_path(key)
    try:
        fobj = open(path, "rb")
    except OSError:
        return None
    try:
        head = fobj.read(len(_MAGIC) + 24)
        if len(head) != len(_MAGIC) + 24 or head[: len(_MAGIC)] != _MAGIC:
            raise ValueError("bad magic")
        header_len = int.from_bytes(head[len(_MAGIC) : len(_MAGIC) + 8], "little")
        skeleton_offset = int.from_bytes(head[len(_MAGIC) + 8 : len(_MAGIC) + 16], "little")
        payload_offset = int.from_bytes(head[len(_MAGIC) + 16 :], "little")
        if not 0 < header_len <= 1 << 20:
            raise ValueError("implausible header length")
        header = json.loads(fobj.read(header_len).decode("utf-8"))
        if (
            not isinstance(header, dict)
            or header.get("version") != _SEGMENT_VERSION
            or header.get("key") != key
        ):
            raise ValueError("header mismatch")
        header["payload_offset"] = payload_offset
        skeleton_size = int(header["skeleton_size"])
        payload_size = int(header["payload_size"])
        if os.fstat(fobj.fileno()).st_size < payload_offset + payload_size:
            raise ValueError("truncated segment")
        fobj.seek(skeleton_offset)
        skeleton_bytes = fobj.read(skeleton_size)
        if hashlib.sha256(skeleton_bytes).hexdigest() != header["skeleton_sha256"]:
            raise ValueError("skeleton digest mismatch")
        fobj.seek(payload_offset)
        payload_bytes = fobj.read(payload_size)
        if hashlib.sha256(payload_bytes).hexdigest() != header["payload_sha256"]:
            raise ValueError("payload digest mismatch")
        skeleton = pickle.loads(skeleton_bytes)
        return ShmSegment(path, fobj, header, skeleton)
    except (OSError, ValueError, KeyError, TypeError, pickle.UnpicklingError,
            json.JSONDecodeError, EOFError, AttributeError, ImportError):
        try:
            fobj.close()
        except OSError:  # pragma: no cover
            pass
        return None
