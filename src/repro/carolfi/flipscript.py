"""The Flip-script: frame walk, variable selection, and the flip.

When GDB stops the program, CAROL-FI's Flip-script "first selects one
of the available threads and frames ... then one of the variables of
the selected frame will have its bits flipped".  Here the benchmark's
:meth:`~repro.benchmarks.base.Benchmark.variables` listing plays the
role of the frame table, and two selection policies are provided:

* ``FOOTPRINT`` (default) — the victim *element* is uniform over all
  allocated bytes, so large arrays absorb proportionally more faults.
  This matches how the paper reasons about where faults land (e.g.
  LavaMD's charge/distance arrays being "up to five orders of magnitude
  larger" and therefore the most frequent victims).
* ``FRAME_UNIFORM`` — pick a frame uniformly, then a variable uniformly
  within it, then an element uniformly within the variable; this is the
  literal frame walk and over-samples small control variables.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.benchmarks.base import Benchmark, Variable
from repro.faults.models import FaultModel, apply_fault_model
from repro.faults.site import FaultSite

__all__ = ["FlipScript", "SitePolicy"]


#: Variable classes held in (replicated, per-thread) stack memory as
#: opposed to the big heap allocations.
STACK_CLASSES = frozenset({"control", "constant", "pointer"})


class SitePolicy(str, enum.Enum):
    """How the Flip-script picks its victim element."""

    WEIGHTED = "weighted"
    FOOTPRINT = "footprint"
    FRAME_UNIFORM = "frame_uniform"


class FlipScript:
    """Selects and corrupts one element of the live benchmark state."""

    def __init__(self, policy: SitePolicy = SitePolicy.WEIGHTED):
        self.policy = SitePolicy(policy)

    def select(
        self,
        variables: list[Variable],
        rng: np.random.Generator,
        stack_share: float = 0.25,
    ) -> tuple[Variable, int]:
        """Pick a victim variable and flat element index.

        ``WEIGHTED`` (default) splits the injectable image into the heap
        side (big data arrays, element uniform over bytes) and the stack
        side (control/constant/pointer variables, uniform over
        variables), giving the stack side ``stack_share`` of all picks.
        The share models the paper's per-thread replication argument:
        228 hardware threads each hold private copies of the loop
        controls and pointers, inflating that memory class well beyond
        its single-thread footprint.
        """
        candidates = [v for v in variables if v.size > 0]
        if not candidates:
            raise ValueError("no injectable variables are live")
        if self.policy is SitePolicy.FOOTPRINT:
            var = self._by_footprint(candidates, rng)
        elif self.policy is SitePolicy.FRAME_UNIFORM:
            frames = sorted({v.frame for v in candidates})
            frame = frames[int(rng.integers(0, len(frames)))]
            in_frame = [v for v in candidates if v.frame == frame]
            var = in_frame[int(rng.integers(0, len(in_frame)))]
        else:
            if not 0.0 <= stack_share <= 1.0:
                raise ValueError("stack_share must be in [0, 1]")
            stack = [v for v in candidates if v.var_class in STACK_CLASSES]
            heap = [v for v in candidates if v.var_class not in STACK_CLASSES]
            if stack and (not heap or rng.random() < stack_share):
                var = stack[int(rng.integers(0, len(stack)))]
            else:
                var = self._by_footprint(heap, rng)
        element = int(rng.integers(0, var.size))
        return var, element

    @staticmethod
    def _by_footprint(candidates: list[Variable], rng: np.random.Generator) -> Variable:
        weights = np.array([v.nbytes for v in candidates], dtype=np.float64)
        return candidates[int(rng.choice(len(candidates), p=weights / weights.sum()))]

    def inject(
        self,
        benchmark: Benchmark,
        state: object,
        step: int,
        model: FaultModel,
        rng: np.random.Generator,
    ) -> tuple[FaultSite, tuple[int, ...] | None]:
        """Corrupt one live element under ``model``; returns the site."""
        var, element = self.select(
            benchmark.variables(state, step), rng, stack_share=benchmark.stack_share
        )
        detail = apply_fault_model(var.array, element, model, rng)
        bits = tuple(detail["bits"]) if detail["bits"] is not None else None
        site = FaultSite(
            frame=var.frame,
            variable=var.name,
            flat_index=element,
            dtype=str(var.array.dtype),
            var_class=var.var_class,
            shape=tuple(var.array.shape),
        )
        return site, bits
