"""CAROL-FI — the paper's high-level, GDB-based fault injector (Section 5).

The reproduction mirrors CAROL-FI's two-script architecture:

* the **Supervisor** (:mod:`repro.carolfi.supervisor`) launches the
  benchmark, delivers the interrupt at a random execution point, runs a
  watchdog, checks the output against the golden copy, and logs the
  test data;
* the **Flip-script** (:mod:`repro.carolfi.flipscript`) walks the live
  frames at the interrupt point, selects a variable and element, and
  applies one of the four fault models to its backing store.

:mod:`repro.carolfi.campaign` drives whole campaigns (the paper injects
>=10,000 faults per benchmark), :mod:`repro.carolfi.engine` shards
campaigns over worker processes with resumable checkpoints,
:mod:`repro.carolfi.batchrunner` steps groups of runs through the
benchmarks' vectorized batch kernels, and
:mod:`repro.carolfi.logparse` re-reads persisted JSONL logs, mirroring
the paper's parser scripts.
"""

from repro.carolfi.batchrunner import BatchRunner
from repro.carolfi.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.carolfi.configfile import load_config, run_from_config
from repro.carolfi.engine import (
    CheckpointError,
    RetryPolicy,
    ShardFailure,
    ShardProgress,
    ShardRunError,
    ShardSpec,
    backoff_delay,
    plan_shards,
    read_failure_log,
    run_sharded_campaign,
)
from repro.carolfi.flipscript import FlipScript, SitePolicy
from repro.carolfi.goldencache import GoldenCache, GoldenEntry, golden_cache_key
from repro.carolfi.isolation import (
    InjectionSandbox,
    IsolationConfig,
    IsolationMode,
    SandboxError,
)
from repro.carolfi.prefixcache import PrefixStore, Snapshot, snapshot_interval
from repro.carolfi.supervisor import Supervisor

__all__ = [
    "BatchRunner",
    "CampaignConfig",
    "CampaignResult",
    "CheckpointError",
    "FlipScript",
    "GoldenCache",
    "GoldenEntry",
    "InjectionSandbox",
    "IsolationConfig",
    "IsolationMode",
    "PrefixStore",
    "RetryPolicy",
    "SandboxError",
    "ShardFailure",
    "ShardProgress",
    "ShardRunError",
    "ShardSpec",
    "Snapshot",
    "backoff_delay",
    "golden_cache_key",
    "load_config",
    "plan_shards",
    "read_failure_log",
    "run_from_config",
    "run_sharded_campaign",
    "SitePolicy",
    "snapshot_interval",
    "Supervisor",
    "run_campaign",
]
