"""Sharded, parallel, resumable, fault-tolerant campaign execution.

The paper's numbers rest on 10,000+ injections per benchmark; running
them one after another in one process is the reproduction's single
biggest bottleneck.  This engine splits a campaign into deterministic
*shards* (contiguous run-index ranges) and fans the shards out over
dedicated worker processes, merging the shard records back in canonical
run-index order.

Determinism is structural, not incidental: every injection derives its
random stream from ``(seed, benchmark, run_index)`` via
:func:`repro.util.rng.derive_rng`, so a record is bit-identical no
matter which worker executes it, in what order, or how the campaign is
sharded.  ``run_campaign(config, workers=4)`` therefore equals
``run_campaign(config, workers=1)`` record for record.

Resumability: with a ``checkpoint_dir``, each shard appends its records
to its own JSONL file (header → records → ``done`` footer).  On
restart the engine replays every *complete* shard file from disk and
re-runs only the rest.  A checkpoint is trusted only if its stored
config fingerprint matches the requested campaign; a mismatch raises
:class:`CheckpointError` rather than silently mixing campaigns.

Fault domains: every in-flight shard is one disposable OS process the
engine supervises directly — it can observe its exit code, reap it when
its heartbeat stalls, and re-dispatch the shard without touching any
other worker.  Shard failures are retried with deterministic
exponential backoff plus jitter; a run that repeatedly kills its worker
is **quarantined** (recorded as a DUE with a ``sandbox:`` detail and
skipped on the next attempt), so a campaign degrades gracefully instead
of aborting.  Only a shard that keeps failing *without making progress*
raises :class:`ShardFailure`.  Every retry, reap, worker death,
sandbox kill and quarantine is appended to a structured failure-event
log (``failures.jsonl`` under the checkpoint directory by default).

With ``isolation=IsolationConfig(mode=IsolationMode.SUBPROCESS, ...)``
each individual injection additionally runs inside the
:class:`~repro.carolfi.isolation.InjectionSandbox`, making crashes and
hangs *observed process deaths* exactly like the paper's GDB-supervised
runs.  Serial in-process execution (``workers=1``, inproc isolation)
stays the default, so the test suite remains subprocess-free.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.carolfi import shmstore
from repro.carolfi.batchrunner import BatchRunner
from repro.carolfi.campaign import CampaignConfig, CampaignResult, model_for
from repro.carolfi.isolation import (
    InjectionSandbox,
    IsolationConfig,
    IsolationMode,
    SandboxError,
    campaign_store_key,
    make_due_record,
    supervisor_for,
    supervisor_key,
)
from repro.faults.outcome import DueKind, InjectionRecord
from repro.telemetry import (
    DISABLED,
    Telemetry,
    current_registry,
    current_tracer,
    stamp,
)
from repro.telemetry.convergence import ConvergenceMonitor
from repro.util.jsonlog import JsonlLog, load_records, load_records_tolerant
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.backend import ShardBackend
    from repro.service.scheduler import StealPolicy

__all__ = [
    "CheckpointError",
    "EARLY_STOP_MIN_CELL_RUNS",
    "FAILURE_LOG_NAME",
    "FailureSink",
    "RetryPolicy",
    "ShardFailure",
    "ShardProgress",
    "ShardRunError",
    "ShardSpec",
    "backoff_delay",
    "campaign_fingerprint",
    "plan_shards",
    "read_failure_log",
    "resolve_workers",
    "run_sharded_campaign",
    "shard_path",
]

#: Checkpoint file format version (bump on incompatible layout changes).
CHECKPOINT_VERSION = 1

#: Default number of shards a campaign is split into.  Worker-count
#: independent on purpose: the shard plan (and hence the checkpoint
#: layout) depends only on the campaign itself, so a run started with 8
#: workers can be resumed with 2.
DEFAULT_SHARD_COUNT = 16

#: Default failure-event log file name (under the checkpoint directory).
FAILURE_LOG_NAME = "failures.jsonl"

ProgressCallback = Callable[["ShardProgress"], None]


class CheckpointError(RuntimeError):
    """A checkpoint directory does not belong to the requested campaign."""


class ShardFailure(RuntimeError):
    """A shard kept failing without making progress and was abandoned."""

    def __init__(self, shard_index: int, attempts: int, detail: str):
        super().__init__(f"shard {shard_index} failed after {attempts} attempts: {detail}")
        self.shard_index = shard_index
        self.attempts = attempts


class ShardRunError(RuntimeError):
    """One specific run raised an exception that escaped the crash net.

    Carries the run index so the retry logic can attribute the failure
    and quarantine the run instead of abandoning the whole shard.
    """

    def __init__(self, shard_index: int, run_index: int, cause: BaseException):
        super().__init__(
            f"run {run_index} (shard {shard_index}) raised "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard_index = shard_index
        self.run_index = run_index


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-domain policy: backoff, liveness, and quarantine limits."""

    max_attempts: int = 4
    """Consecutive *no-progress* shard failures tolerated before the
    campaign aborts with :class:`ShardFailure`.  Failures that advance
    the shard (new runs completed, or a run quarantined) reset the
    counter, so a shard full of poison runs still completes."""

    backoff_base_s: float = 0.25
    """First retry delay; doubles every consecutive attempt."""

    backoff_cap_s: float = 8.0
    """Upper bound on the exponential delay (before jitter)."""

    liveness_timeout_s: float = 300.0
    """A worker that sends no heartbeat for this long is reaped (killed
    and its shard re-dispatched, the hung run charged a death)."""

    max_run_deaths: int = 2
    """Worker deaths attributed to one run before it is quarantined."""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        if self.liveness_timeout_s <= 0:
            raise ValueError("liveness_timeout_s must be positive")
        if self.max_run_deaths < 1:
            raise ValueError("max_run_deaths must be at least 1")


def backoff_delay(
    seed: int, shard_index: int, attempt: int, policy: RetryPolicy | None = None
) -> float:
    """Deterministic exponential backoff with jitter for one retry.

    ``attempt`` counts from 1.  The delay doubles per attempt up to the
    policy cap and is jittered into ``[0.5, 1.5)`` of itself so retrying
    shards do not stampede; the jitter derives from
    ``(seed, shard_index, attempt)``, so a schedule is reproducible
    under a fixed campaign seed.
    """
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    policy = policy or RetryPolicy()
    rng = derive_rng(seed, "engine", "backoff", shard_index, attempt)
    delay = min(policy.backoff_base_s * (2.0 ** (attempt - 1)), policy.backoff_cap_s)
    return delay * (0.5 + float(rng.random()))


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice ``[start, stop)`` of a campaign's run indices."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bad shard range [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start

    def run_indices(self) -> range:
        return range(self.start, self.stop)


@dataclass(frozen=True)
class ShardProgress:
    """One heartbeat from the engine, delivered to the progress callback.

    ``event`` is one of ``"replayed"`` (shard restored from its
    checkpoint), ``"started"``, ``"finished"``, ``"retried"`` (worker
    failure, shard re-dispatched after backoff), ``"reaped"`` (hung
    worker killed), ``"quarantined"`` (poison run recorded as DUE and
    skipped) or ``"failed"``.  ``rate`` counts live injections/sec
    (replayed shards excluded) and ``eta_s`` is the projected seconds
    remaining at that rate (``inf`` until the first shard finishes).
    """

    event: str
    shard_index: int
    shard_count: int
    shard_runs: int
    done_runs: int
    total_runs: int
    elapsed_s: float
    rate: float
    eta_s: float
    detail: str = ""


def plan_shards(injections: int, shard_size: int | None = None) -> tuple[ShardSpec, ...]:
    """Split ``injections`` runs into contiguous shards.

    The default shard size targets :data:`DEFAULT_SHARD_COUNT` shards
    and depends only on the injection count, never on the worker count.
    """
    if injections < 1:
        raise ValueError("injections must be positive")
    if shard_size is None:
        shard_size = max(1, math.ceil(injections / DEFAULT_SHARD_COUNT))
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    starts = range(0, injections, shard_size)
    return tuple(
        ShardSpec(index=i, start=s, stop=min(s + shard_size, injections))
        for i, s in enumerate(starts)
    )


def campaign_fingerprint(config: CampaignConfig, shard_size: int | None = None) -> str:
    """Stable hash of everything that determines a campaign's records.

    Stored in every checkpoint header; a resume with a different
    benchmark, seed, size, fault-model set, policy or shard plan is
    detected before any stale record is trusted.  Isolation mode, retry
    policy and the ``snapshots``/``batch_size``/``shared_store``
    fast-path knobs are deliberately *excluded*: they change how runs
    are executed and supervised, never what their records contain, so a
    campaign checkpointed in one mode may resume in another — including resuming
    a scalar checkpoint with batching on or vice versa (the payload
    lists fields explicitly for exactly this reason).
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "benchmark": config.benchmark,
        "injections": config.injections,
        "seed": config.seed,
        "fault_models": [m.value for m in config.fault_models],
        "policy": config.policy.value,
        "watchdog_factor": config.watchdog_factor,
        "benchmark_params": config.benchmark_params,
        "shard_size": shard_size,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_WORKERS`` > cpu count."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(env) if env else (os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be positive")
    return workers


def shard_path(checkpoint_dir: str | Path, shard_index: int) -> Path:
    """Checkpoint file of one shard."""
    return Path(checkpoint_dir) / f"shard-{shard_index:05d}.jsonl"


def read_failure_log(path: str | Path) -> tuple[list[dict], int]:
    """Load failure events plus a count of skipped corrupt lines.

    Failure logs are written across worker deaths and hard kills, so a
    damaged interior line is a fact to report, not an error to die on:
    the reader returns every parseable event and *how many* lines it
    had to skip, instead of silently dropping them.
    """
    return load_records_tolerant(path)


# -- failure-event log ---------------------------------------------------------


class FailureSink:
    """Appends structured failure events to ``failures.jsonl`` (or not).

    The file is created eagerly, so "the campaign saw zero failures" is
    distinguishable from "failure logging was off" (and CI can always
    upload the artifact).  Events are stamped with a wall/monotonic
    clock pair (:func:`repro.telemetry.stamp`) so their ordering
    survives NTP slews, and every event — logged to disk or not — is
    counted into the campaign's ``repro_failure_events_total`` metric.

    All failure events funnel through the engine-side sink exactly once
    (worker-side sandbox events are forwarded over the pipe first), so
    this is the one place the counter can live without double counting.
    """

    def __init__(self, path: str | Path | None, telemetry: Telemetry | None = None):
        self._log: JsonlLog | None = None
        self._counter = (telemetry or DISABLED).registry.counter(
            "repro_failure_events_total",
            help="Campaign failure events (retries, deaths, reaps, quarantines) by kind.",
        )
        if path is not None:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.touch(exist_ok=True)
            self._log = JsonlLog(target)

    def __call__(self, event: dict[str, Any]) -> None:
        self._counter.inc(event=str(event.get("event", "unknown")))
        if self._log is not None:
            self._log.append({**stamp(), **event})

    def close(self) -> None:
        if self._log is not None:
            self._log.close()


# -- shard execution (runs inside worker processes) ----------------------------

#: Per-process sandbox cache: a serial campaign reuses one sandbox
#: across all its shards instead of respawning a worker per shard.
_SANDBOXES: dict[str, InjectionSandbox] = {}


def _sandbox_for(
    config: CampaignConfig,
    isolation: IsolationConfig,
    golden_cache: str | None = None,
) -> InjectionSandbox:
    key = supervisor_key(config) + "|" + json.dumps(isolation.to_dict(), sort_keys=True)
    sandbox = _SANDBOXES.get(key)
    if sandbox is None:
        sandbox = InjectionSandbox(config, isolation, golden_cache=golden_cache)
        _SANDBOXES[key] = sandbox
    return sandbox


def _execute_shard(
    config: CampaignConfig,
    spec: ShardSpec,
    checkpoint_file: str | None,
    fingerprint: str,
    isolation: IsolationConfig | None = None,
    skip_runs: dict[int, tuple[str, str]] | None = None,
    on_run: Callable[[int], None] | None = None,
    on_run_done: Callable[[int], None] | None = None,
    on_failure: Callable[[dict], None] | None = None,
    golden_cache: str | None = None,
) -> tuple[int, list[dict]]:
    """Run one shard, checkpointing each record; returns record dicts.

    ``skip_runs`` maps quarantined run indices to their ``(due_kind,
    detail)``: those runs are recorded as synthetic DUEs without being
    executed.  ``on_run``/``on_run_done`` are the heartbeat hooks the
    engine uses for liveness and death attribution.

    Telemetry is ambient (:func:`repro.telemetry.current_registry` /
    ``current_tracer``): the serial engine activates the campaign
    bundle, shard workers activate their local accumulator, and this
    function instruments identically either way — per-outcome run
    counters, run-duration histogram, a shard span, and a
    checkpoint-write span.  With telemetry disabled every instrument is
    a shared no-op.
    """
    iso = isolation or IsolationConfig()
    registry = current_registry()
    tracer = current_tracer()
    runs_total = registry.counter(
        "repro_runs_total", help="Injection runs executed (including re-executions), by outcome."
    )
    dues_total = registry.counter(
        "repro_runs_due_total", help="Executed runs classified DUE, by due kind."
    )
    run_seconds = registry.histogram(
        "repro_run_duration_seconds", help="Wall-clock duration of one injection run."
    )
    run_fn: Callable[[int, Any], InjectionRecord]
    skip = skip_runs or {}
    batched: dict[int, InjectionRecord] = {}
    if iso.mode is IsolationMode.SUBPROCESS:
        if config.shared_store:
            # Publish (or attach) the host-wide shared segment from
            # *this* long-lived process before any sandbox worker
            # exists: sandbox children exit via os._exit and never run
            # teardown, so the publisher must be a process whose
            # release path runs — the serial engine (released in
            # run_sharded_campaign's finally) or a lease worker that
            # inherited/attached the backend's warm-up segment.
            try:
                supervisor_for(config, golden_cache=golden_cache, on_event=on_failure)
            except Exception:  # noqa: BLE001 — sandbox reports the real failure
                pass
        sandbox = _sandbox_for(config, iso, golden_cache)
        sandbox.on_event = on_failure
        run_fn = sandbox.run_one
        total_steps, num_windows = sandbox.total_steps, sandbox.num_windows
        if config.batch_size > 1:
            # Vectorized fast path inside the sandbox: the whole group
            # runs through BatchRunner in one forked worker, and only
            # vectorized-path records come back.  Fallback members (and
            # any batch-wide abort) flow through the unchanged scalar
            # sandbox machinery below — per-run death attribution,
            # retry and quarantine intact.
            todo = [
                (run_index, model_for(config, run_index))
                for run_index in spec.run_indices()
                if run_index not in skip
            ]
            batched = sandbox.run_batch(todo, config.batch_size)
    else:
        supervisor = supervisor_for(config, golden_cache=golden_cache, on_event=on_failure)
        run_fn = supervisor.run_one
        total_steps = supervisor.total_steps
        num_windows = supervisor.benchmark.num_windows
        if config.batch_size > 1:
            # Vectorized fast path.  Runs the batch path completes are
            # looked up below; everything else — fallbacks, skips —
            # flows through the unchanged scalar machinery, including
            # its error attribution.
            todo = [
                (run_index, model_for(config, run_index))
                for run_index in spec.run_indices()
                if run_index not in skip
            ]
            batched = BatchRunner(supervisor, config.batch_size).run_many(todo)
    log: JsonlLog | None = None
    if checkpoint_file is not None:
        path = Path(checkpoint_file)
        path.unlink(missing_ok=True)  # drop any partial previous attempt
        log = JsonlLog(path)
        log.append(
            {
                "kind": "header",
                "version": CHECKPOINT_VERSION,
                "config_hash": fingerprint,
                "shard": spec.index,
                "start": spec.start,
                "stop": spec.stop,
            }
        )
    rows: list[dict] = []
    with tracer.span("shard", shard=spec.index, start=spec.start, stop=spec.stop):
        for run_index in spec.run_indices():
            model = model_for(config, run_index)
            if run_index in skip:
                kind, detail = skip[run_index]
                record = make_due_record(
                    config,
                    run_index,
                    model,
                    total_steps,
                    num_windows,
                    DueKind(kind),
                    detail,
                )
            elif run_index in batched:
                record = batched[run_index]
                if on_run_done is not None:
                    on_run_done(run_index)
            else:
                if on_run is not None:
                    on_run(run_index)
                began = time.perf_counter()
                try:
                    record = run_fn(run_index, model)
                except SandboxError:
                    raise  # worker infrastructure failure: shard-level, not run-level
                except Exception as exc:
                    raise ShardRunError(spec.index, run_index, exc) from exc
                if registry.enabled:
                    run_seconds.observe(time.perf_counter() - began)
                if on_run_done is not None:
                    on_run_done(run_index)
            runs_total.inc(outcome=record.outcome.value)
            if record.due_kind is not None:
                dues_total.inc(kind=record.due_kind.value)
            rows.append(record.to_dict())
            if log is not None:
                log.append({"kind": "record", "data": rows[-1]})
        if log is not None:
            with tracer.span("checkpoint_write", shard=spec.index, records=len(rows)):
                log.append({"kind": "done", "count": len(rows)})
                log.close()
    return spec.index, rows


# -- checkpoint replay --------------------------------------------------------


def _replay_shard(path: Path, fingerprint: str, spec: ShardSpec) -> list[InjectionRecord] | None:
    """Load one shard's records from its checkpoint file.

    Returns ``None`` when the shard must be (re-)run: missing file,
    partial write (no ``done`` footer, short record count, truncated
    trailing line) or structural damage.  Raises :class:`CheckpointError`
    when the file belongs to a *different* campaign — that is never
    silently repaired.
    """
    if not path.exists():
        return None
    try:
        rows = load_records(path)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None  # damaged beyond the tolerated trailing line: re-run
    if not rows:
        return None
    header = rows[0]
    if not isinstance(header, dict) or header.get("kind") != "header":
        return None
    if header.get("config_hash") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was written by a different campaign "
            f"(config hash {header.get('config_hash')!r}, expected {fingerprint!r}); "
            "point --checkpoints at a fresh directory or delete the stale one"
        )
    if (header.get("shard"), header.get("start"), header.get("stop")) != (
        spec.index,
        spec.start,
        spec.stop,
    ):
        raise CheckpointError(
            f"checkpoint {path} covers shard "
            f"{header.get('shard')}[{header.get('start')}:{header.get('stop')}], "
            f"expected {spec.index}[{spec.start}:{spec.stop}]"
        )
    footer = rows[-1]
    if not isinstance(footer, dict) or footer.get("kind") != "done":
        return None  # worker was killed before finishing: re-run
    body = rows[1:-1]
    if footer.get("count") != len(body) or len(body) != spec.size:
        return None
    try:
        return [InjectionRecord.from_dict(row["data"]) for row in body]
    except (KeyError, TypeError, ValueError):
        return None


def _validate_checkpoint_dir(checkpoint_dir: Path, fingerprint: str) -> None:
    """Create/validate the directory-level ``campaign.json`` marker."""
    marker = checkpoint_dir / "campaign.json"
    if marker.exists():
        try:
            stored = json.loads(marker.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"unreadable campaign marker {marker}: {exc}") from exc
        if stored.get("config_hash") != fingerprint:
            raise CheckpointError(
                f"checkpoint directory {checkpoint_dir} belongs to a different "
                f"campaign (config hash {stored.get('config_hash')!r}, "
                f"expected {fingerprint!r})"
            )
        return
    marker.write_text(
        json.dumps({"config_hash": fingerprint, "version": CHECKPOINT_VERSION}, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )


# -- the engine ---------------------------------------------------------------


class _Heartbeat:
    """Computes injections/sec and ETA for progress events."""

    def __init__(
        self,
        callback: ProgressCallback | None,
        shard_count: int,
        total_runs: int,
    ):
        self.callback = callback
        self.shard_count = shard_count
        self.total_runs = total_runs
        self.done_runs = 0
        self.live_runs = 0
        self.started = time.perf_counter()

    def record_done(self, runs: int, live: bool) -> None:
        self.done_runs += runs
        if live:
            self.live_runs += runs

    def emit(self, event: str, spec: ShardSpec, detail: str = "") -> None:
        if self.callback is None:
            return
        elapsed = time.perf_counter() - self.started
        rate = self.live_runs / elapsed if elapsed > 0 else 0.0
        remaining = self.total_runs - self.done_runs
        eta = remaining / rate if rate > 0 else math.inf
        self.callback(
            ShardProgress(
                event=event,
                shard_index=spec.index,
                shard_count=self.shard_count,
                shard_runs=spec.size,
                done_runs=self.done_runs,
                total_runs=self.total_runs,
                elapsed_s=elapsed,
                rate=rate,
                eta_s=eta,
                detail=detail,
            )
        )


#: Minimum records per (benchmark, fault_model) cell before an early
#: stop is even considered — guards the first merges, where a
#: degenerate all-one-outcome cell can have a deceptively narrow CI.
EARLY_STOP_MIN_CELL_RUNS = 10


class _ConvergenceGate:
    """Feeds merged shards to a :class:`ConvergenceMonitor` in order.

    Early stopping must be **topology-independent**: the same campaign
    must stop at the same record whether it ran serial, on 8 workers,
    or resumed from checkpoints.  Shard *completion* order is none of
    those things, so the gate only evaluates convergence at contiguous
    prefix boundaries — shard ``k`` is considered only once shards
    ``0..k`` have all completed, and the monitor sees their records in
    canonical shard order.  The stop decision is then a pure function
    of the (deterministic) record contents, and the stopped campaign's
    records are a bit-identical prefix of the uncapped campaign's.
    """

    def __init__(
        self,
        config: CampaignConfig,
        shards: tuple[ShardSpec, ...],
        monitor: ConvergenceMonitor,
        get_records: Callable[[int], Iterable[Any]],
    ):
        self.monitor = monitor
        self._get_records = get_records
        self._shard_count = len(shards)
        self._target = config.target_ci
        self._expected_cells = len(config.fault_models)
        self._complete: set[int] = set()
        self._fed = 0
        self.stop_after: int | None = None

    @property
    def stopped(self) -> bool:
        return self.stop_after is not None

    def mark_complete(self, shard_index: int) -> bool:
        """Record one finished shard; True once the campaign may stop."""
        if self.stopped:
            return True
        self._complete.add(shard_index)
        advanced = False
        while self._fed < self._shard_count and self._fed in self._complete:
            for row in self._get_records(self._fed):
                self.monitor.observe(row, shard=self._fed)
            self._fed += 1
            advanced = True
        if (
            advanced
            and self._target is not None
            and self._fed < self._shard_count  # finishing everything is not "early"
            and len(self.monitor.cells()) >= self._expected_cells
            and self.monitor.converged(self._target, min_cell_runs=EARLY_STOP_MIN_CELL_RUNS)
        ):
            self.stop_after = self._fed - 1
            return True
        return False


def run_sharded_campaign(
    config: CampaignConfig,
    *,
    workers: int | None = None,
    checkpoint_dir: str | Path | None = None,
    shard_size: int | None = None,
    progress: ProgressCallback | None = None,
    log_path: str | Path | None = None,
    isolation: IsolationConfig | None = None,
    retry: RetryPolicy | None = None,
    failure_log: str | Path | None = None,
    telemetry: Telemetry | None = None,
    golden_cache: str | Path | None = None,
    backend: "ShardBackend | None" = None,
    steal: "StealPolicy | None" = None,
) -> CampaignResult:
    """Run a campaign sharded, optionally in parallel and resumable.

    ``workers=1`` executes the shards serially in the calling process;
    any other count fans shards out over dedicated worker processes
    (one disposable process per in-flight shard).  ``workers=None``
    resolves via ``REPRO_WORKERS`` then ``os.cpu_count()``.

    ``backend`` overrides *where* shards execute: any
    :class:`~repro.service.backend.ShardBackend` (e.g. the distributed
    :class:`~repro.service.broker.BrokerBackend`) is driven by the same
    scheduler with identical retry/quarantine/merge semantics; its
    lifetime belongs to the caller.  ``steal`` tunes work stealing on
    backends that support it (ignored by the local pool).

    ``isolation`` selects where each *injection* executes (see
    :class:`~repro.carolfi.isolation.IsolationConfig`), ``retry``
    configures the fault-domain policy (backoff, liveness, quarantine)
    and ``failure_log`` overrides the failure-event JSONL path (default:
    ``failures.jsonl`` inside the checkpoint directory, or disabled
    without one).  See the module docstring for the determinism, resume
    and failure-handling contracts.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) adds metrics,
    phase spans and live progress on top of the heartbeat callback.
    Workers accumulate metrics/spans locally and the engine merges
    their deltas over the heartbeat pipe, so a campaign's counter
    totals are identical for every worker count; the default
    (:data:`repro.telemetry.DISABLED`) makes every instrument a shared
    no-op and never perturbs records.

    ``golden_cache`` names an on-disk golden-run cache directory
    (:mod:`repro.carolfi.goldencache`); with a ``checkpoint_dir`` it
    defaults to ``<checkpoint_dir>/golden-cache``, so resumed campaigns
    and spawn-started workers skip the golden re-run.

    Statistical observability: every merged shard streams through a
    :class:`~repro.telemetry.convergence.ConvergenceMonitor`.  With
    ``config.target_ci`` set the campaign **stops early** at the first
    contiguous shard boundary where every ``(benchmark, fault_model)``
    cell's SDC/DUE CI half-width meets the target — deterministically,
    so the stopped records are a bit-identical prefix of the uncapped
    campaign for any worker count.  Independently, the cross-shard
    drift detector z-tests each shard's outcome rates against the rest
    of the campaign; statistically incompatible shards (seed bugs,
    nondeterminism) are flagged into ``failures.jsonl`` and the
    ``repro_drift_flags_total`` counter.
    """
    workers = resolve_workers(workers)
    iso = isolation or IsolationConfig()
    policy = retry or RetryPolicy()
    tel = telemetry or DISABLED
    shards = plan_shards(config.injections, shard_size)
    fingerprint = campaign_fingerprint(config, shard_size)
    ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if ckpt_dir is not None:
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        _validate_checkpoint_dir(ckpt_dir, fingerprint)
    if failure_log is None and ckpt_dir is not None:
        failure_log = ckpt_dir / FAILURE_LOG_NAME
    if golden_cache is None and ckpt_dir is not None:
        golden_cache = ckpt_dir / "golden-cache"
    cache_dir = str(golden_cache) if golden_cache is not None else None
    sink = FailureSink(failure_log, tel)
    reporter = tel.progress_reporter(config.injections, label=config.benchmark)
    replayed_runs = tel.registry.counter(
        "repro_runs_replayed_total",
        help="Runs restored from shard checkpoints instead of being re-run.",
    )
    shard_planned = tel.registry.gauge(
        "repro_shard_runs_planned", help="Planned run count of each shard."
    )
    shard_done = tel.registry.gauge(
        "repro_shard_runs_done", help="Runs completed so far within each shard."
    )

    heartbeat = _Heartbeat(progress, len(shards), config.injections)
    replayed: dict[int, list[InjectionRecord]] = {}
    pending: list[ShardSpec] = []
    executed: dict[int, list[dict]] = {}

    def _shard_rows(index: int) -> Iterable[Any]:
        return replayed[index] if index in replayed else executed[index]

    monitor = ConvergenceMonitor()
    gate = _ConvergenceGate(config, shards, monitor, _shard_rows)
    try:
        with tel.activate(), tel.tracer.span(
            "campaign",
            benchmark=config.benchmark,
            injections=config.injections,
            workers=workers,
            shards=len(shards),
        ) as campaign_span:
            for spec in shards:
                shard_planned.set(spec.size, shard=spec.index)
                # Reset stale per-shard progress left by an earlier
                # campaign sharing this registry.
                shard_done.set(0, shard=spec.index)
            for spec in shards:
                records = (
                    _replay_shard(shard_path(ckpt_dir, spec.index), fingerprint, spec)
                    if ckpt_dir is not None
                    else None
                )
                if records is None:
                    pending.append(spec)
                else:
                    replayed[spec.index] = records
                    replayed_runs.inc(spec.size)
                    shard_done.set(spec.size, shard=spec.index)
                    heartbeat.record_done(spec.size, live=False)
                    heartbeat.emit("replayed", spec)
                    gate.mark_complete(spec.index)
            if gate.stopped:
                # The replayed prefix alone already meets the target;
                # every pending shard lies beyond the stop point.
                pending.clear()

            if pending:

                def ckpt_file(spec: ShardSpec) -> str | None:
                    if ckpt_dir is None:
                        return None
                    return str(shard_path(ckpt_dir, spec.index))

                if workers == 1 and backend is None:
                    _run_serial(
                        config,
                        pending,
                        ckpt_file,
                        fingerprint,
                        heartbeat,
                        executed,
                        iso,
                        policy,
                        sink,
                        tel,
                        reporter,
                        gate,
                        cache_dir,
                    )
                else:
                    _run_pool(
                        config,
                        pending,
                        ckpt_file,
                        fingerprint,
                        heartbeat,
                        executed,
                        workers,
                        iso,
                        policy,
                        sink,
                        tel,
                        reporter,
                        gate,
                        cache_dir,
                        backend=backend,
                        steal=steal,
                    )

            included = shards if gate.stop_after is None else shards[: gate.stop_after + 1]
            expected_runs = included[-1].stop
            records_out: list[InjectionRecord] = []
            for spec in included:
                if spec.index in replayed:
                    records_out.extend(replayed[spec.index])
                else:
                    records_out.extend(
                        InjectionRecord.from_dict(row) for row in executed[spec.index]
                    )
            records_out.sort(key=lambda r: r.run_index)
            if [r.run_index for r in records_out] != list(range(expected_runs)):
                raise RuntimeError("engine merge produced a non-canonical record sequence")
            if gate.stopped:
                sink(
                    {
                        "event": "early_stop",
                        "target_ci": config.target_ci,
                        "runs": expected_runs,
                        "budget": config.injections,
                        "max_half_width": round(monitor.max_half_width(), 6),
                        "shards_skipped": len(shards) - len(included),
                    }
                )
                campaign_span.set_attr("early_stop_runs", expected_runs)
            # Cross-shard drift: under the determinism contract every
            # shard samples the same outcome distribution, so any shard
            # that is statistically incompatible with its peers means a
            # seed bug or nondeterminism — flag it, loudly.
            drift_flags = monitor.drift_flags()
            if drift_flags:
                drift_counter = tel.registry.counter(
                    "repro_drift_flags_total",
                    help="Shards whose outcome rates are statistically "
                    "incompatible with the rest of the campaign.",
                )
                for flag in drift_flags:
                    drift_counter.inc(
                        benchmark=flag.benchmark,
                        fault_model=flag.fault_model,
                        outcome=flag.outcome,
                    )
                    sink(flag.to_dict())
            # Final-record counters are derived from the merged result —
            # by construction they always equal what lands in the
            # campaign log, whatever the execution topology did.
            records_total = tel.registry.counter(
                "repro_records_total", help="Final merged campaign records, by outcome."
            )
            records_due = tel.registry.counter(
                "repro_records_due_total", help="Final merged DUE records, by due kind."
            )
            for record in records_out:
                records_total.inc(outcome=record.outcome.value)
                if record.due_kind is not None:
                    records_due.inc(kind=record.due_kind.value)
            campaign_span.set_attr("records", len(records_out))
            reporter.tick(force=True)
    finally:
        sink.close()
        # Unlink any shared-memory snapshot segments this process
        # published (attachers' mappings stay valid; only the directory
        # entry goes — the /dev/shm leak-check contract).  Then sweep
        # this campaign's key outright: a worker that published and was
        # then killed (-9, chaos hook) can never reap its own segment.
        shmstore.release_published()
        if config.shared_store:
            try:
                shmstore.reap(campaign_store_key(config))
            except Exception:  # noqa: BLE001 — teardown must not mask the result
                pass

    if log_path is not None:
        with JsonlLog(log_path) as log:
            log.extend(r.to_dict() for r in records_out)
    return CampaignResult(config=config, records=records_out, stopped_early=gate.stopped)


# -- serial fault domain -------------------------------------------------------


def _run_serial(
    config: CampaignConfig,
    pending: Iterable[ShardSpec],
    ckpt_file: Callable[[ShardSpec], str | None],
    fingerprint: str,
    heartbeat: _Heartbeat,
    executed: dict[int, list[dict]],
    isolation: IsolationConfig,
    policy: RetryPolicy,
    sink: FailureSink,
    tel: Telemetry,
    reporter: Any,
    gate: _ConvergenceGate,
    golden_cache: str | None = None,
) -> None:
    """Serial execution with backoff retries and poison-run quarantine.

    In inproc mode an *uncatchable* condition (``os._exit``, a guard-free
    spin) still takes the calling process down — subprocess isolation
    exists for exactly that — but any exception-shaped failure is
    retried, attributed, and quarantined just like in the pool.
    """
    shard_done = tel.registry.gauge("repro_shard_runs_done")
    shard_seconds = tel.registry.histogram(
        "repro_shard_duration_seconds", help="Wall-clock duration of one completed shard."
    )
    for spec in pending:
        heartbeat.emit("started", spec)
        deaths: dict[int, int] = {}
        skip: dict[int, tuple[str, str]] = {}
        attempts = 0
        no_progress = 0
        shard_started = time.perf_counter()

        def shard_sink(event: dict[str, Any], _index: int = spec.index) -> None:
            sink({"shard": _index, **event})

        def run_done(run_index: int, _spec: ShardSpec = spec) -> None:
            shard_done.set(run_index - _spec.start + 1, shard=_spec.index)
            reporter.tick()

        while True:
            try:
                _, rows = _execute_shard(
                    config,
                    spec,
                    ckpt_file(spec),
                    fingerprint,
                    isolation=isolation,
                    skip_runs=skip,
                    on_run_done=run_done,
                    on_failure=shard_sink,
                    golden_cache=golden_cache,
                )
                break
            except Exception as exc:  # noqa: BLE001 — classified below
                attempts += 1
                detail = f"{type(exc).__name__}: {exc}"
                progressed = False
                if isinstance(exc, ShardRunError):
                    run = exc.run_index
                    count = deaths[run] = deaths.get(run, 0) + 1
                    sink(
                        {
                            "event": "run_error",
                            "shard": spec.index,
                            "run": run,
                            "attempt": attempts,
                            "deaths": count,
                            "detail": detail,
                        }
                    )
                    if count >= policy.max_run_deaths:
                        skip[run] = (
                            DueKind.CRASH.value,
                            f"sandbox: quarantined after {count} failed "
                            f"executions ({detail})",
                        )
                        sink(
                            {
                                "event": "quarantine",
                                "shard": spec.index,
                                "run": run,
                                "detail": detail,
                            }
                        )
                        heartbeat.emit("quarantined", spec, detail=f"run {run}: {detail}")
                        progressed = True
                if progressed:
                    no_progress = 0
                else:
                    no_progress += 1
                    if no_progress >= policy.max_attempts:
                        sink(
                            {
                                "event": "shard_failed",
                                "shard": spec.index,
                                "attempt": attempts,
                                "detail": detail,
                            }
                        )
                        heartbeat.emit("failed", spec, detail=detail)
                        raise ShardFailure(spec.index, attempts, detail) from exc
                delay = backoff_delay(config.seed, spec.index, attempts, policy)
                sink(
                    {
                        "event": "retry",
                        "shard": spec.index,
                        "attempt": attempts,
                        "delay_s": round(delay, 3),
                        "detail": detail,
                    }
                )
                heartbeat.emit("retried", spec, detail=detail)
                time.sleep(delay)
        executed[spec.index] = rows
        shard_done.set(spec.size, shard=spec.index)
        if tel.registry.enabled:
            shard_seconds.observe(time.perf_counter() - shard_started)
        heartbeat.record_done(spec.size, live=True)
        heartbeat.emit("finished", spec)
        if gate.mark_complete(spec.index):
            break


# -- parallel fault domains ----------------------------------------------------


def _run_pool(
    config: CampaignConfig,
    pending: list[ShardSpec],
    ckpt_file: Callable[[ShardSpec], str | None],
    fingerprint: str,
    heartbeat: _Heartbeat,
    executed: dict[int, list[dict]],
    workers: int,
    isolation: IsolationConfig,
    policy: RetryPolicy,
    sink: FailureSink,
    tel: Telemetry,
    reporter: Any,
    gate: _ConvergenceGate,
    golden_cache: str | None = None,
    backend: Any = None,
    steal: Any = None,
) -> None:
    """Fan shards out over a :class:`~repro.service.backend.ShardBackend`.

    Without an explicit ``backend`` this builds the engine's classic
    fault-domain pool (:class:`repro.service.local.LocalBackend`): one
    dedicated, individually supervised process per in-flight shard, so
    the engine observes worker exit codes directly, reaps stalled
    workers, and one pathological run can never poison a neighbouring
    shard's executor.  A provided backend (e.g. the distributed broker)
    is driven by the same scheduler — retries, quarantine, liveness and
    telemetry merging behave identically — but its lifetime belongs to
    the caller.

    Workers ship telemetry over the same channel as heartbeats: deltas
    merge into the engine's registry as they arrive, so the live
    progress line and the final export read one registry whether the
    campaign ran serial, pooled or distributed.
    """
    # Imported here, not at module top: repro.service imports this
    # module, and the engine only needs a backend once a parallel
    # campaign actually starts.
    from repro.service.local import LocalBackend
    from repro.service.scheduler import run_shards

    owned = None
    if backend is None:
        backend = owned = LocalBackend(
            config,
            fingerprint,
            workers=workers,
            isolation=isolation,
            telemetry=tel,
            golden_cache=golden_cache,
            on_event=sink,
        )
    try:
        run_shards(
            config,
            pending,
            ckpt_file,
            fingerprint,
            heartbeat,
            executed,
            backend,
            policy,
            sink,
            tel,
            reporter,
            gate,
            steal=steal,
        )
    finally:
        if owned is not None:
            owned.close()
