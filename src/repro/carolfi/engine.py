"""Sharded, parallel, resumable campaign execution.

The paper's numbers rest on 10,000+ injections per benchmark; running
them one after another in one process is the reproduction's single
biggest bottleneck.  This engine splits a campaign into deterministic
*shards* (contiguous run-index ranges), fans the shards out over a
``ProcessPoolExecutor``, and merges the shard records back in canonical
run-index order.

Determinism is structural, not incidental: every injection derives its
random stream from ``(seed, benchmark, run_index)`` via
:func:`repro.util.rng.derive_rng`, so a record is bit-identical no
matter which worker executes it, in what order, or how the campaign is
sharded.  ``run_campaign(config, workers=4)`` therefore equals
``run_campaign(config, workers=1)`` record for record.

Resumability: with a ``checkpoint_dir``, each shard appends its records
to its own JSONL file (header → records → ``done`` footer).  On
restart the engine replays every *complete* shard file from disk and
re-runs only the rest.  A checkpoint is trusted only if its stored
config fingerprint matches the requested campaign; a mismatch raises
:class:`CheckpointError` rather than silently mixing campaigns.  A
worker killed mid-write leaves a partial trailing line, which the
reader drops; the shard is then simply re-run.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path

from repro.benchmarks.registry import create
from repro.carolfi.campaign import CampaignConfig, CampaignResult
from repro.carolfi.supervisor import Supervisor
from repro.faults.outcome import InjectionRecord
from repro.util.jsonlog import JsonlLog, load_records

__all__ = [
    "CheckpointError",
    "ShardFailure",
    "ShardProgress",
    "ShardSpec",
    "campaign_fingerprint",
    "plan_shards",
    "resolve_workers",
    "run_sharded_campaign",
    "shard_path",
]

#: Checkpoint file format version (bump on incompatible layout changes).
CHECKPOINT_VERSION = 1

#: Default number of shards a campaign is split into.  Worker-count
#: independent on purpose: the shard plan (and hence the checkpoint
#: layout) depends only on the campaign itself, so a run started with 8
#: workers can be resumed with 2.
DEFAULT_SHARD_COUNT = 16

ProgressCallback = Callable[["ShardProgress"], None]


class CheckpointError(RuntimeError):
    """A checkpoint directory does not belong to the requested campaign."""


class ShardFailure(RuntimeError):
    """A shard failed twice (original attempt plus one retry)."""

    def __init__(self, shard_index: int, cause: BaseException):
        super().__init__(
            f"shard {shard_index} failed after retry: {type(cause).__name__}: {cause}"
        )
        self.shard_index = shard_index


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice ``[start, stop)`` of a campaign's run indices."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bad shard range [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start

    def run_indices(self) -> range:
        return range(self.start, self.stop)


@dataclass(frozen=True)
class ShardProgress:
    """One heartbeat from the engine, delivered to the progress callback.

    ``event`` is one of ``"replayed"`` (shard restored from its
    checkpoint), ``"started"``, ``"finished"``, ``"retried"`` (worker
    failure, shard resubmitted once) or ``"failed"``.  ``rate`` counts
    live injections/sec (replayed shards excluded) and ``eta_s`` is the
    projected seconds remaining at that rate (``inf`` until the first
    shard finishes).
    """

    event: str
    shard_index: int
    shard_count: int
    shard_runs: int
    done_runs: int
    total_runs: int
    elapsed_s: float
    rate: float
    eta_s: float
    detail: str = ""


def plan_shards(injections: int, shard_size: int | None = None) -> tuple[ShardSpec, ...]:
    """Split ``injections`` runs into contiguous shards.

    The default shard size targets :data:`DEFAULT_SHARD_COUNT` shards
    and depends only on the injection count, never on the worker count.
    """
    if injections < 1:
        raise ValueError("injections must be positive")
    if shard_size is None:
        shard_size = max(1, math.ceil(injections / DEFAULT_SHARD_COUNT))
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    starts = range(0, injections, shard_size)
    return tuple(
        ShardSpec(index=i, start=s, stop=min(s + shard_size, injections))
        for i, s in enumerate(starts)
    )


def campaign_fingerprint(config: CampaignConfig, shard_size: int | None = None) -> str:
    """Stable hash of everything that determines a campaign's records.

    Stored in every checkpoint header; a resume with a different
    benchmark, seed, size, fault-model set, policy or shard plan is
    detected before any stale record is trusted.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "benchmark": config.benchmark,
        "injections": config.injections,
        "seed": config.seed,
        "fault_models": [m.value for m in config.fault_models],
        "policy": config.policy.value,
        "watchdog_factor": config.watchdog_factor,
        "benchmark_params": config.benchmark_params,
        "shard_size": shard_size,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_WORKERS`` > cpu count."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(env) if env else (os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be positive")
    return workers


def shard_path(checkpoint_dir: str | Path, shard_index: int) -> Path:
    """Checkpoint file of one shard."""
    return Path(checkpoint_dir) / f"shard-{shard_index:05d}.jsonl"


# -- shard execution (runs inside pool workers) -------------------------------

#: Per-process Supervisor cache: pool workers are reused across shards,
#: so the benchmark's input generation and golden run are paid once per
#: worker process rather than once per shard.
_SUPERVISORS: dict[str, Supervisor] = {}


def _supervisor_for(config: CampaignConfig) -> Supervisor:
    key = json.dumps(
        {
            "benchmark": config.benchmark,
            "seed": config.seed,
            "policy": config.policy.value,
            "watchdog_factor": config.watchdog_factor,
            "benchmark_params": config.benchmark_params,
        },
        sort_keys=True,
    )
    supervisor = _SUPERVISORS.get(key)
    if supervisor is None:
        supervisor = Supervisor(
            create(config.benchmark, **config.benchmark_params),
            seed=config.seed,
            policy=config.policy,
            watchdog_factor=config.watchdog_factor,
        )
        _SUPERVISORS[key] = supervisor
    return supervisor


def _execute_shard(
    config: CampaignConfig,
    spec: ShardSpec,
    checkpoint_file: str | None,
    fingerprint: str,
) -> tuple[int, list[dict]]:
    """Run one shard, checkpointing each record; returns record dicts."""
    supervisor = _supervisor_for(config)
    log: JsonlLog | None = None
    if checkpoint_file is not None:
        path = Path(checkpoint_file)
        path.unlink(missing_ok=True)  # drop any partial previous attempt
        log = JsonlLog(path)
        log.append(
            {
                "kind": "header",
                "version": CHECKPOINT_VERSION,
                "config_hash": fingerprint,
                "shard": spec.index,
                "start": spec.start,
                "stop": spec.stop,
            }
        )
    models = config.fault_models
    rows: list[dict] = []
    for run_index in spec.run_indices():
        record = supervisor.run_one(run_index, models[run_index % len(models)])
        rows.append(record.to_dict())
        if log is not None:
            log.append({"kind": "record", "data": rows[-1]})
    if log is not None:
        log.append({"kind": "done", "count": len(rows)})
        log.close()
    return spec.index, rows


# -- checkpoint replay --------------------------------------------------------


def _replay_shard(
    path: Path, fingerprint: str, spec: ShardSpec
) -> list[InjectionRecord] | None:
    """Load one shard's records from its checkpoint file.

    Returns ``None`` when the shard must be (re-)run: missing file,
    partial write (no ``done`` footer, short record count, truncated
    trailing line) or structural damage.  Raises :class:`CheckpointError`
    when the file belongs to a *different* campaign — that is never
    silently repaired.
    """
    if not path.exists():
        return None
    try:
        rows = load_records(path)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None  # damaged beyond the tolerated trailing line: re-run
    if not rows:
        return None
    header = rows[0]
    if not isinstance(header, dict) or header.get("kind") != "header":
        return None
    if header.get("config_hash") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was written by a different campaign "
            f"(config hash {header.get('config_hash')!r}, expected {fingerprint!r}); "
            "point --checkpoints at a fresh directory or delete the stale one"
        )
    if (header.get("shard"), header.get("start"), header.get("stop")) != (
        spec.index,
        spec.start,
        spec.stop,
    ):
        raise CheckpointError(
            f"checkpoint {path} covers shard "
            f"{header.get('shard')}[{header.get('start')}:{header.get('stop')}], "
            f"expected {spec.index}[{spec.start}:{spec.stop}]"
        )
    footer = rows[-1]
    if not isinstance(footer, dict) or footer.get("kind") != "done":
        return None  # worker was killed before finishing: re-run
    body = rows[1:-1]
    if footer.get("count") != len(body) or len(body) != spec.size:
        return None
    try:
        return [InjectionRecord.from_dict(row["data"]) for row in body]
    except (KeyError, TypeError, ValueError):
        return None


def _validate_checkpoint_dir(checkpoint_dir: Path, fingerprint: str) -> None:
    """Create/validate the directory-level ``campaign.json`` marker."""
    marker = checkpoint_dir / "campaign.json"
    if marker.exists():
        try:
            stored = json.loads(marker.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"unreadable campaign marker {marker}: {exc}") from exc
        if stored.get("config_hash") != fingerprint:
            raise CheckpointError(
                f"checkpoint directory {checkpoint_dir} belongs to a different "
                f"campaign (config hash {stored.get('config_hash')!r}, "
                f"expected {fingerprint!r})"
            )
        return
    marker.write_text(
        json.dumps(
            {"config_hash": fingerprint, "version": CHECKPOINT_VERSION}, sort_keys=True
        )
        + "\n",
        encoding="utf-8",
    )


# -- the engine ---------------------------------------------------------------


class _Heartbeat:
    """Computes injections/sec and ETA for progress events."""

    def __init__(
        self,
        callback: ProgressCallback | None,
        shard_count: int,
        total_runs: int,
    ):
        self.callback = callback
        self.shard_count = shard_count
        self.total_runs = total_runs
        self.done_runs = 0
        self.live_runs = 0
        self.started = time.perf_counter()

    def record_done(self, runs: int, live: bool) -> None:
        self.done_runs += runs
        if live:
            self.live_runs += runs

    def emit(self, event: str, spec: ShardSpec, detail: str = "") -> None:
        if self.callback is None:
            return
        elapsed = time.perf_counter() - self.started
        rate = self.live_runs / elapsed if elapsed > 0 else 0.0
        remaining = self.total_runs - self.done_runs
        eta = remaining / rate if rate > 0 else math.inf
        self.callback(
            ShardProgress(
                event=event,
                shard_index=spec.index,
                shard_count=self.shard_count,
                shard_runs=spec.size,
                done_runs=self.done_runs,
                total_runs=self.total_runs,
                elapsed_s=elapsed,
                rate=rate,
                eta_s=eta,
                detail=detail,
            )
        )


def run_sharded_campaign(
    config: CampaignConfig,
    *,
    workers: int | None = None,
    checkpoint_dir: str | Path | None = None,
    shard_size: int | None = None,
    progress: ProgressCallback | None = None,
    log_path: str | Path | None = None,
) -> CampaignResult:
    """Run a campaign sharded, optionally in parallel and resumable.

    ``workers=1`` executes the shards serially in-process (no
    subprocess is ever spawned); any other count fans shards out over a
    ``ProcessPoolExecutor``.  ``workers=None`` resolves via
    ``REPRO_WORKERS`` then ``os.cpu_count()``.  See the module
    docstring for the determinism and resume contracts.
    """
    workers = resolve_workers(workers)
    shards = plan_shards(config.injections, shard_size)
    fingerprint = campaign_fingerprint(config, shard_size)
    ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if ckpt_dir is not None:
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        _validate_checkpoint_dir(ckpt_dir, fingerprint)

    heartbeat = _Heartbeat(progress, len(shards), config.injections)
    replayed: dict[int, list[InjectionRecord]] = {}
    pending: list[ShardSpec] = []
    for spec in shards:
        records = (
            _replay_shard(shard_path(ckpt_dir, spec.index), fingerprint, spec)
            if ckpt_dir is not None
            else None
        )
        if records is None:
            pending.append(spec)
        else:
            replayed[spec.index] = records
            heartbeat.record_done(spec.size, live=False)
            heartbeat.emit("replayed", spec)

    executed: dict[int, list[dict]] = {}
    if pending:

        def ckpt_file(spec: ShardSpec) -> str | None:
            if ckpt_dir is None:
                return None
            return str(shard_path(ckpt_dir, spec.index))

        if workers == 1:
            _run_serial(config, pending, ckpt_file, fingerprint, heartbeat, executed)
        else:
            _run_pool(
                config, pending, ckpt_file, fingerprint, heartbeat, executed, workers
            )

    records_out: list[InjectionRecord] = []
    for spec in shards:
        if spec.index in replayed:
            records_out.extend(replayed[spec.index])
        else:
            records_out.extend(
                InjectionRecord.from_dict(row) for row in executed[spec.index]
            )
    records_out.sort(key=lambda r: r.run_index)
    if [r.run_index for r in records_out] != list(range(config.injections)):
        raise RuntimeError("engine merge produced a non-canonical record sequence")
    if log_path is not None:
        with JsonlLog(log_path) as log:
            log.extend(r.to_dict() for r in records_out)
    return CampaignResult(config=config, records=records_out)


def _run_serial(
    config: CampaignConfig,
    pending: Iterable[ShardSpec],
    ckpt_file: Callable[[ShardSpec], str | None],
    fingerprint: str,
    heartbeat: _Heartbeat,
    executed: dict[int, list[dict]],
) -> None:
    for spec in pending:
        heartbeat.emit("started", spec)
        try:
            _, rows = _execute_shard(config, spec, ckpt_file(spec), fingerprint)
        except Exception as exc:  # noqa: BLE001 — retried once, then surfaced
            heartbeat.emit("retried", spec, detail=f"{type(exc).__name__}: {exc}")
            try:
                _, rows = _execute_shard(config, spec, ckpt_file(spec), fingerprint)
            except Exception as retry_exc:
                heartbeat.emit(
                    "failed", spec, detail=f"{type(retry_exc).__name__}: {retry_exc}"
                )
                raise ShardFailure(spec.index, retry_exc) from retry_exc
        executed[spec.index] = rows
        heartbeat.record_done(spec.size, live=True)
        heartbeat.emit("finished", spec)


def _run_pool(
    config: CampaignConfig,
    pending: list[ShardSpec],
    ckpt_file: Callable[[ShardSpec], str | None],
    fingerprint: str,
    heartbeat: _Heartbeat,
    executed: dict[int, list[dict]],
    workers: int,
) -> None:
    max_workers = min(workers, len(pending))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        attempts: dict[int, int] = {}
        in_flight: dict[Future, ShardSpec] = {}

        def submit(spec: ShardSpec) -> None:
            attempts[spec.index] = attempts.get(spec.index, 0) + 1
            future = pool.submit(
                _execute_shard, config, spec, ckpt_file(spec), fingerprint
            )
            in_flight[future] = spec

        for spec in pending:
            heartbeat.emit("started", spec)
            submit(spec)
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                spec = in_flight.pop(future)
                exc = future.exception()
                if exc is None:
                    index, rows = future.result()
                    executed[index] = rows
                    heartbeat.record_done(spec.size, live=True)
                    heartbeat.emit("finished", spec)
                elif attempts[spec.index] < 2:
                    heartbeat.emit(
                        "retried", spec, detail=f"{type(exc).__name__}: {exc}"
                    )
                    submit(spec)
                else:
                    heartbeat.emit(
                        "failed", spec, detail=f"{type(exc).__name__}: {exc}"
                    )
                    for other in in_flight:
                        other.cancel()
                    raise ShardFailure(spec.index, exc) from exc
