"""Execution-prefix snapshot store for the CAROL-FI fast path.

Every injected run executes the exact same instruction stream as the
golden run up to its interrupt step — the fault models flip bits of
*existing* values, so the pre-injection prefix is bit-identical by
construction.  Re-executing that prefix for each of the campaign's
thousands of runs is the reproduction's single largest cost (the paper's
§6.1 checkpoint-frequency framing: recomputation versus restore).

:class:`PrefixStore` holds periodic state snapshots captured during the
one golden execution, keyed by the step they were taken *at the entry
of*.  ``Supervisor.run_one`` restores the latest snapshot at or below
its interrupt step and replays only the remaining few steps, turning
``O(total_steps)`` per-run work into ``O(interval + suffix)``.

Snapshot cadence is derived from the benchmark's window geometry:
``interval = max(1, total_steps // (SNAPSHOT_DENSITY * num_windows))``
puts :data:`SNAPSHOT_DENSITY` snapshots in every execution-time window,
so the expected replay is a small fraction of a window regardless of
where the interrupt lands.  Step 0 is deliberately *not* stored: the
Supervisor's memoised pristine input state already is the step-0
snapshot.

A byte budget caps memory: once the stored snapshots exceed it, capture
stops and runs interrupted beyond the last snapshot simply replay a
longer prefix — graceful degradation, never an error.  The first time
the budget actually blocks a wanted capture the store fires its
``on_degrade`` hook (once), so the campaign can log a single structured
event instead of silently shortening the fast path.

:class:`SharedPrefixStore` is the zero-copy flavour: a read-only view
over a published shared-memory segment (:mod:`repro.carolfi.shmstore`).
It never captures — the segment was filled once, by the host's
publisher — and its restores are copy-on-write materialisations, so a
worker's RSS does not scale with the snapshot set and the budget is
accounted once per host rather than once per process.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.benchmarks.base import Benchmark, state_nbytes

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (typing only)
    from repro.carolfi.shmstore import ShmSegment

__all__ = [
    "DEFAULT_SNAPSHOT_BUDGET",
    "PrefixStore",
    "SharedPrefixStore",
    "Snapshot",
    "snapshot_interval",
]

#: Snapshots per execution-time window.  Higher density shortens the
#: replayed prefix (expected replay ~ interval/2 steps) at the cost of
#: proportionally more resident copies of the benchmark state.
SNAPSHOT_DENSITY = 4

#: Default cap on the total bytes of state a store may hold.  Default
#: campaign states are well under a megabyte each, so the cap only
#: engages for paper-scale parameter studies.
DEFAULT_SNAPSHOT_BUDGET = 256 << 20


def snapshot_interval(
    total_steps: int, num_windows: int, density: int | None = None
) -> int:
    """Steps between snapshots for a benchmark's window geometry."""
    if total_steps < 1:
        raise ValueError("total_steps must be positive")
    if num_windows < 1:
        raise ValueError("num_windows must be positive")
    density = SNAPSHOT_DENSITY if density is None else int(density)
    if density < 1:
        raise ValueError("density must be positive")
    return max(1, total_steps // (density * num_windows))


@dataclass(frozen=True)
class Snapshot:
    """One captured prefix: the state at the *entry* of ``step``."""

    step: int
    state: Any
    nbytes: int


class PrefixStore:
    """Per-window execution snapshots of one benchmark's golden prefix.

    The store never mutates or hands out its states directly: callers
    capture with :meth:`capture` (which deep-copies via
    :meth:`~repro.benchmarks.base.Benchmark.snapshot`) and rehydrate
    with ``benchmark.restore(snap.state)``, so every stored prefix can
    seed any number of runs.
    """

    def __init__(
        self,
        benchmark: Benchmark,
        total_steps: int,
        byte_budget: int = DEFAULT_SNAPSHOT_BUDGET,
        density: int | None = None,
    ):
        if byte_budget < 0:
            raise ValueError("byte_budget must be non-negative")
        self.benchmark = benchmark
        self.total_steps = int(total_steps)
        self.interval = snapshot_interval(
            self.total_steps, benchmark.num_windows, density
        )
        self.byte_budget = int(byte_budget)
        self.used_bytes = 0
        #: Set once, the first time the byte budget blocks a wanted
        #: capture; ``on_degrade`` (if any) fires at that moment.
        self.degraded = False
        self.on_degrade: Callable[[PrefixStore], None] | None = None
        self._snapshots: dict[int, Snapshot] = {}
        self._steps_sorted: list[int] = []

    def capture_points(self) -> range:
        """The steps this store wants a snapshot at (step 0 excluded)."""
        return range(self.interval, self.total_steps, self.interval)

    def wants(self, step: int) -> bool:
        """Should the caller capture the state at the entry of ``step``?

        True only for an uncaptured capture point while the byte budget
        lasts — callers sprinkle ``if store.wants(i): store.capture(i,
        state)`` into their step loops at near-zero cost.
        """
        wanted = (
            step > 0
            and step < self.total_steps
            and step % self.interval == 0
            and step not in self._snapshots
        )
        if wanted and self.used_bytes >= self.byte_budget:
            if not self.degraded:
                self.degraded = True
                if self.on_degrade is not None:
                    self.on_degrade(self)
            return False
        return wanted

    def capture(self, step: int, state: Any) -> None:
        """Snapshot ``state`` as the prefix ending at the entry of ``step``."""
        if not 0 < step < self.total_steps:
            raise ValueError(f"capture step {step} out of range")
        if step in self._snapshots:
            return
        nbytes = state_nbytes(state)
        self._snapshots[step] = Snapshot(
            step=step, state=self.benchmark.snapshot(state), nbytes=nbytes
        )
        self.used_bytes += nbytes
        bisect.insort(self._steps_sorted, step)

    def latest(self, interrupt_step: int) -> Snapshot | None:
        """The deepest snapshot at or before ``interrupt_step``, if any."""
        pos = bisect.bisect_right(self._steps_sorted, interrupt_step)
        if pos == 0:
            return None
        return self._snapshots[self._steps_sorted[pos - 1]]

    def materialize(self, snap: Snapshot) -> Any:
        """A writable state rehydrated from ``snap``.

        The base store deep-copies via the benchmark's ``restore``;
        :class:`SharedPrefixStore` overrides this with a copy-on-write
        mapping of the shared segment.  Both produce bit-identical
        states — only the memory mechanics differ.
        """
        return self.benchmark.restore(snap.state)

    def anchor_step(self, interrupt_step: int) -> int:
        """The restore step runs interrupted at ``interrupt_step`` share.

        The batch runner groups runs by this value so that one restore
        (or one pristine clone, anchor 0) seeds the whole group.  It is a
        property of the store's *current* contents: a later capture can
        split what would have been one group, which only changes how
        work is batched, never the per-run records.
        """
        snap = self.latest(interrupt_step)
        return 0 if snap is None else snap.step

    def __len__(self) -> int:
        return len(self._snapshots)


class SharedPrefixStore(PrefixStore):
    """A read-only :class:`PrefixStore` over a shared-memory segment.

    Built by attaching a segment another process (or this one) already
    published: the snapshot states are zero-copy read-only views of the
    host-wide mapping, :meth:`wants` is always ``False`` (the segment is
    complete; nothing is ever captured into an attachment), and
    :meth:`materialize` rebuilds writable states over private
    copy-on-write mappings instead of deep-copying.

    ``used_bytes`` reports the *segment* payload size — bytes that exist
    once per host — so budget accounting across a worker fleet counts
    shared snapshots once, not once per process.
    """

    def __init__(self, benchmark: Benchmark, segment: "ShmSegment"):
        super().__init__(benchmark, segment.total_steps)
        self.segment = segment
        self.interval = segment.interval
        self.used_bytes = segment.payload_bytes
        self.degraded = segment.degraded
        for step, nbytes in zip(segment.snapshot_steps, segment.snapshot_nbytes):
            self._snapshots[step] = Snapshot(
                step=step, state=segment.snapshot_state(step), nbytes=nbytes
            )
            bisect.insort(self._steps_sorted, step)

    def wants(self, step: int) -> bool:
        return False

    def capture(self, step: int, state: Any) -> None:
        raise RuntimeError("SharedPrefixStore is read-only; captures belong to the publisher")

    def materialize(self, snap: Snapshot) -> Any:
        return self.segment.materialize(snap.step)
