"""The Supervisor: launch, interrupt, watchdog, check, log.

One :meth:`Supervisor.run_one` is one CAROL-FI test: start the
benchmark, deliver the interrupt at a random step, let the Flip-script
corrupt a live variable, resume at full speed, and classify the result
against the golden output.  DUEs are *observed*, never simulated:
unhandled exceptions out of the resumed execution are crashes, loop
guards and the wall-clock watchdog are hangs.

The campaign generates its input data set once (the paper: datasets
"will be generated once and used during the whole fault injection
campaign"), so the golden output is computed a single time and every
run replays identical inputs.

**Prefix fast path.**  Every run's execution is bit-identical to the
golden run up to its interrupt step (the fault models flip bits of
existing values), so with ``snapshots=True`` (the default) the warm-up
execution captures periodic state snapshots into a
:class:`~repro.carolfi.prefixcache.PrefixStore` and ``run_one`` restores
the deepest snapshot at or below the interrupt step instead of
replaying from step 0.  Records are identical by construction: each
run's RNG stream is keyed by its run index, never by how many steps
were actually executed, and a restored prefix is a bit-exact clone of
the recomputed one.  ``snapshots=False`` keeps the original
replay-everything path (and the test-suite asserts both paths produce
byte-identical campaign logs).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.spatial import classify_mask, max_relative_error, wrong_mask
from repro.benchmarks.base import Benchmark, BenchmarkHang, arm_deadline
from repro.carolfi.flipscript import FlipScript, SitePolicy
from repro.carolfi.goldencache import (
    GoldenCache,
    GoldenEntry,
    golden_cache_key,
    resolve_golden_cache,
)
from repro.carolfi import shmstore
from repro.carolfi.prefixcache import (
    DEFAULT_SNAPSHOT_BUDGET,
    PrefixStore,
    SharedPrefixStore,
)
from repro.faults.models import FaultModel
from repro.faults.outcome import DueKind, InjectionRecord, Outcome
from repro.faults.site import FaultSite
from repro.telemetry import current_registry, current_tracer
from repro.util.rng import derive_rng

__all__ = ["Supervisor"]

#: Exceptions out of a resumed, corrupted execution that correspond to a
#: crashed process (the segfault/abort analogues of our Python substrate).
#: ``ArithmeticError`` covers Overflow/ZeroDivision/FloatingPointError
#: plus any other numeric abort; ``MemoryError`` is the malloc-failure
#: analogue (a corrupted size driving an absurd allocation).  Anything
#: escaping this tuple would kill the campaign worker, so the net is
#: deliberately wide — only genuine infrastructure bugs should escape.
_CRASH_EXCEPTIONS = (
    IndexError,
    ValueError,
    KeyError,
    ArithmeticError,
    MemoryError,
    RuntimeError,
)


class Supervisor:
    """Runs individual fault-injection tests for one benchmark.

    ``snapshots`` enables the execution-prefix fast path (see the module
    docstring).  ``golden_cache`` — a
    :class:`~repro.carolfi.goldencache.GoldenCache`, a directory path,
    or ``None`` to consult ``REPRO_GOLDEN_CACHE`` — persists the golden
    output and runtime across processes and sessions, so spawn-based
    workers and resumed campaigns skip the golden re-run entirely.

    ``shared`` additionally publishes (or attaches) the host-wide
    shared-memory snapshot segment (:mod:`repro.carolfi.shmstore`): the
    pristine input, the snapshot store, and the golden output are then
    zero-copy read-only views that every worker process on the host
    maps once, and restores are copy-on-write materialisations.  The
    records are bit-identical with sharing on or off; only the memory
    mechanics change.  ``on_event`` receives structured operational
    events (currently ``snapshot_budget_degraded``) destined for the
    campaign's ``failures.jsonl``.
    """

    def __init__(
        self,
        benchmark: Benchmark,
        seed: int,
        policy: SitePolicy = SitePolicy.WEIGHTED,
        watchdog_factor: float = 10.0,
        snapshots: bool = True,
        golden_cache: "GoldenCache | str | Path | None" = None,
        snapshot_budget: int = DEFAULT_SNAPSHOT_BUDGET,
        snapshot_density: int | None = None,
        shared: bool = False,
        on_event: "Any | None" = None,
    ):
        self.benchmark = benchmark
        self.seed = int(seed)
        self.flip = FlipScript(policy)
        self.watchdog_factor = float(watchdog_factor)
        self._input_path = ("carolfi", benchmark.name, "input")
        self._pristine: Any = None
        self._snapshot_budget = int(snapshot_budget)
        self._snapshot_density = snapshot_density
        self._on_event = on_event
        self._shm: "shmstore.ShmSegment | None" = None
        want_shared = bool(shared) and snapshots and shmstore.shm_enabled()
        shm_key: str | None = None
        if want_shared:
            shm_key = shmstore.store_key(
                benchmark.name,
                self.seed,
                self.watchdog_factor,
                benchmark.params,
                density=snapshot_density,
                byte_budget=self._snapshot_budget,
            )
            segment = shmstore.attach(shm_key)
            if segment is not None:
                # Another process on this host already published the
                # golden prefix: adopt it wholesale.  No dataset
                # generation, no warm-up, no golden run, no captures —
                # and no per-process copies of any of it.
                self._adopt_segment(segment)
                self._count("repro_shm_attach_total", result="hit")
                return
            self._count("repro_shm_attach_total", result="miss")
        # Generate the campaign dataset once and compute the golden copy.
        state = self._fresh_state()
        self.total_steps = benchmark.num_steps(state)
        self.prefix: PrefixStore | None = (
            PrefixStore(
                benchmark,
                self.total_steps,
                byte_budget=self._snapshot_budget,
                density=snapshot_density,
            )
            if snapshots
            else None
        )
        if self.prefix is not None:
            self.prefix.on_degrade = self._budget_degraded
        cache = resolve_golden_cache(golden_cache)
        cache_key = golden_cache_key(
            benchmark.name, self.seed, self.watchdog_factor, benchmark.params
        )
        entry = cache.load(cache_key) if cache is not None else None
        if entry is not None and entry.total_steps == self.total_steps:
            # Cache hit: no warm-up, no timed run.  The snapshot store
            # (if enabled) fills opportunistically during run_one's
            # pre-injection replays, which execute pure golden prefixes.
            self.golden = entry.golden
            self.golden_runtime = entry.runtime
            self._count("repro_golden_cache_total", result="hit")
            if want_shared and self.prefix is not None:
                # A published segment must carry the full snapshot set —
                # walk the golden trajectory once to capture it (the
                # walk this host's workers will collectively never pay).
                warm = self._fresh_state()
                for index in range(self.total_steps):
                    if self.prefix.wants(index):
                        self.prefix.capture(index, warm)
                    benchmark.step(warm, index)
            if shm_key is not None:
                self._publish_shared(shm_key)
            return
        if cache is not None:
            self._count("repro_golden_cache_total", result="miss")
        # Warm-up run on a throwaway state before the timed baseline:
        # the first execution pays first-touch allocation and cache
        # effects, and an inflated golden_runtime would stretch
        # ``watchdog_factor * golden_time`` enough to mask real hangs.
        # The warm-up walks the same golden trajectory, so it doubles as
        # the snapshot-capture pass — capture cost stays out of the
        # timed baseline.
        warm = self._fresh_state()
        for index in range(self.total_steps):
            if self.prefix is not None and self.prefix.wants(index):
                self.prefix.capture(index, warm)
            benchmark.step(warm, index)
        with current_tracer().span("golden_run", benchmark=benchmark.name):
            start = time.perf_counter()
            self.golden = self._quantize(benchmark.run(state))
            self.golden_runtime = max(time.perf_counter() - start, 1e-4)
        if cache is not None:
            cache.store(
                cache_key,
                GoldenEntry(
                    golden=self.golden,
                    runtime=self.golden_runtime,
                    total_steps=self.total_steps,
                ),
            )
        if shm_key is not None:
            self._publish_shared(shm_key)

    # -- shared-memory segment plumbing ---------------------------------------

    def _adopt_segment(self, segment: "shmstore.ShmSegment") -> None:
        """Back this supervisor's golden prefix by ``segment``.

        After adoption the pristine state, the snapshot store, and the
        golden output are read-only views over the host-wide mapping,
        and every restore goes through a private copy-on-write mapping
        — this process holds no duplicated snapshot bytes.
        """
        self._shm = segment
        self.total_steps = segment.total_steps
        self._pristine = segment.pristine
        self.prefix = SharedPrefixStore(self.benchmark, segment)
        self.golden = segment.golden
        self.golden_runtime = segment.golden_runtime

    def _publish_shared(self, key: str) -> None:
        """Publish this supervisor's prefix as the host's shared segment."""
        if self.prefix is None or self._pristine is None:
            return
        snaps = [
            (snap.step, snap.state, snap.nbytes)
            for snap in (
                self.prefix._snapshots[step] for step in self.prefix._steps_sorted
            )
        ]
        segment = shmstore.publish(
            key,
            benchmark=self.benchmark.name,
            total_steps=self.total_steps,
            interval=self.prefix.interval,
            golden_runtime=self.golden_runtime,
            degraded=self.prefix.degraded,
            pristine=self._pristine,
            snapshots=snaps,
            golden=self.golden,
        )
        if segment is None:
            self._count("repro_shm_publish_total", result="failed")
            return
        self._count("repro_shm_publish_total", result="ok")
        # Re-attach our own publication: the private copies captured
        # above become garbage, so the publisher's RSS is as flat as
        # any attacher's — and the attach path is exercised constantly.
        self._adopt_segment(segment)

    def _budget_degraded(self, store: PrefixStore) -> None:
        """The byte budget just blocked a wanted capture (fires once)."""
        self._count("repro_snapshot_budget_degraded_total")
        if self._on_event is not None:
            self._on_event(
                {
                    "event": "snapshot_budget_degraded",
                    "benchmark": self.benchmark.name,
                    "byte_budget": store.byte_budget,
                    "used_bytes": store.used_bytes,
                    "snapshots": len(store),
                    "interval": store.interval,
                }
            )

    def _count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Bump a cache-efficiency counter (no-op with telemetry off).

        These counters describe *work saved in this process*, so unlike
        record-derived metrics they legitimately differ across execution
        topologies (a sandbox grandchild's restores are never merged
        back) — consumers comparing serial to parallel registries must
        exclude the ``repro_snapshot_*``/``repro_steps_skipped``/
        ``repro_compare_fastpath``/``repro_golden_cache``/``repro_shm_*``
        families (``repro_snapshot_*`` includes
        ``repro_snapshot_budget_degraded``).
        """
        current_registry().counter(
            name, help="CAROL-FI fast-path cache efficiency counter."
        ).inc(amount, benchmark=self.benchmark.name, **labels)

    def _quantize(self, output: np.ndarray) -> np.ndarray:
        """Round to the precision the benchmark's output file carries.

        The paper's campaigns diff *printed* output files, so an error
        below the printf precision never counts as a mismatch.
        """
        decimals = self.benchmark.output_decimals
        if decimals is None:
            return output
        with np.errstate(invalid="ignore", over="ignore"):
            return np.round(output, decimals)

    def _fresh_state(self) -> Any:
        """A pristine copy of the campaign's fixed input data set.

        The input arrays are generated once (first call) and memoised;
        every later call hands out a bit-exact clone instead of
        re-deriving the RNG dataset — the memo *is* the step-0 snapshot.
        With a shared segment attached, the clone is a copy-on-write
        view of the host-wide mapping instead of a deep copy.
        """
        if self._shm is not None:
            return self._shm.materialize(None)
        if self._pristine is None:
            self._pristine = self.benchmark.make_state(
                derive_rng(self.seed, *self._input_path)
            )
        return self.benchmark.restore(self._pristine)

    # -- shared run machinery -------------------------------------------------
    #
    # run_one and the batched runner (:mod:`repro.carolfi.batchrunner`)
    # must classify and record identically, so the pieces both need live
    # in these helpers rather than inline in run_one.

    def run_rng(self, run_index: int) -> np.random.Generator:
        """The per-run RNG stream.

        Keyed by run index alone (not shard/worker/batch), so any
        sharding or batching of the campaign replays bit-identical
        per-run streams.
        """
        return derive_rng(self.seed, "carolfi", self.benchmark.name, "run", run_index)

    def classify_output(self, observed: np.ndarray) -> tuple[Outcome, dict[str, Any]]:
        """Compare a quantized output against the golden copy.

        Most runs are Masked: an exact-equality check is an order of
        magnitude cheaper than building the wrong mask, and
        classification-equivalent — any element differing after
        quantization fails both (NaNs fail ``array_equal`` but compare
        equal in ``wrong_mask``, which still yields an empty mask,
        i.e. Masked).
        """
        if np.array_equal(self.golden, observed):
            self._count("repro_compare_fastpath_total")
            return Outcome.MASKED, {}
        mask = wrong_mask(self.golden, observed)
        if not mask.any():
            return Outcome.MASKED, {}
        pattern = classify_mask(mask, self.benchmark.output_dims)
        return Outcome.SDC, {
            "wrong_elements": int(mask.sum()),
            "wrong_fraction": float(mask.mean()),
            "max_rel_err": max_relative_error(self.golden, observed),
            "pattern": pattern.value,
        }

    def make_record(
        self,
        run_index: int,
        model: FaultModel,
        interrupt_step: int,
        site: FaultSite | None,
        bits: tuple[int, ...] | None,
        outcome: Outcome,
        due_kind: DueKind | None = None,
        due_detail: str = "",
        sdc_metrics: dict[str, Any] | None = None,
        extra_faults: tuple[dict[str, Any], ...] = (),
    ) -> InjectionRecord:
        """Assemble the campaign-log record for one classified run."""
        bench = self.benchmark
        if site is None:
            # The flip itself crashed before the site was recorded (it
            # cannot: selection precedes corruption) — defensive default.
            site = FaultSite("unknown", "unknown", 0, "unknown")
        return InjectionRecord(
            benchmark=bench.name,
            run_index=run_index,
            site=site,
            fault_model=FaultModel(model).value,
            bits=bits,
            interrupt_step=interrupt_step,
            total_steps=self.total_steps,
            time_window=bench.window_of_step(interrupt_step, self.total_steps),
            num_windows=bench.num_windows,
            outcome=outcome,
            due_kind=due_kind,
            due_detail=due_detail,
            sdc_metrics=sdc_metrics or {},
            extra_faults=extra_faults,
        )

    # -- one test -------------------------------------------------------------

    def run_one(
        self,
        run_index: int,
        model: FaultModel | None = None,
        interrupt_step: int | None = None,
        faults: "Sequence[tuple[int, FaultModel]] | None" = None,
    ) -> InjectionRecord:
        """Execute one injection test and classify its outcome.

        The classic single-fault form passes ``model`` (and optionally a
        forced ``interrupt_step``).  ``faults`` instead takes an explicit
        *ordered* list of ``(step, model)`` injections delivered in
        sequence during one execution — the multi-fault substrate the
        scenario fuzzer (:mod:`repro.fuzz`) builds on.  The single-fault
        path is byte-identical to the original implementation: the
        per-run RNG draws the interrupt step first (only when it was not
        forced) and is then consumed by the flips in delivery order, so
        records written before this extension replay exactly.
        """
        bench = self.benchmark
        rng = self.run_rng(run_index)
        total = self.total_steps
        if faults is None:
            if model is None:
                raise ValueError("run_one needs a fault model (or an explicit fault list)")
            if interrupt_step is None:
                interrupt_step = int(rng.integers(0, total))
            plan = [(int(interrupt_step), FaultModel(model))]
        else:
            if model is not None or interrupt_step is not None:
                raise ValueError("faults is mutually exclusive with model/interrupt_step")
            plan = [(int(step), FaultModel(m)) for step, m in faults]
            if not plan:
                raise ValueError("faults must name at least one injection")
            if any(a[0] > b[0] for a, b in zip(plan, plan[1:])):
                raise ValueError("faults must be ordered by non-decreasing step")
        for step, _ in plan:
            if not 0 <= step < total:
                raise ValueError(f"interrupt step {step} out of range")
        first_step = plan[0][0]
        primary_model = plan[0][1]
        schedule: dict[int, list[FaultModel]] = {}
        for step, fault_model in plan:
            schedule.setdefault(step, []).append(fault_model)

        # Prefix fast path: resume from the deepest snapshot at or below
        # the (first) interrupt step; the skipped steps are bit-identical
        # to the golden execution by construction, so the injected suffix
        # sees exactly the state a full replay would have produced.
        start_step = 0
        state: Any = None
        if self.prefix is not None:
            snap = self.prefix.latest(first_step)
            if snap is not None:
                state = self.prefix.materialize(snap)
                start_step = snap.step
                self._count("repro_snapshot_restores_total")
                self._count("repro_steps_skipped_total", amount=float(start_step))
        if state is None:
            state = self._fresh_state()
        deadline = time.perf_counter() + self.watchdog_factor * self.golden_runtime + 1.0
        site: FaultSite | None = None
        bits: tuple[int, ...] | None = None
        extra: list[dict[str, Any]] = []
        outcome = Outcome.MASKED
        due_kind: DueKind | None = None
        due_detail = ""
        sdc_metrics: dict[str, Any] = {}
        tracer = current_tracer()
        run_span = tracer.span("run", run=run_index, model=primary_model.value)

        with run_span:
            try:
                # Arm the cooperative deadline so guard loops inside a slow
                # step (bounded_range, explicit deadline_checkpoint calls)
                # can convert an in-step hang into a watchdog DUE.
                arm_deadline(deadline)
                with tracer.span("execute", interrupt_step=first_step):
                    for index in range(start_step, total):
                        # Up to (and at the entry of) the first interrupt
                        # step the state is still a pure golden prefix:
                        # fill store gaps left by a disk-cached golden run
                        # or an exhausted byte budget.
                        if (
                            self.prefix is not None
                            and index <= first_step
                            and self.prefix.wants(index)
                        ):
                            self.prefix.capture(index, state)
                            self._count("repro_snapshot_captures_total")
                        for fault_model in schedule.get(index, ()):
                            with tracer.span("corrupt", step=index):
                                fault_site, fault_bits = self.flip.inject(
                                    bench, state, index, fault_model, rng
                                )
                            if site is None:
                                site, bits = fault_site, fault_bits
                            else:
                                extra.append(
                                    {
                                        "step": index,
                                        "fault_model": fault_model.value,
                                        "site": fault_site.to_dict(),
                                        "bits": list(fault_bits)
                                        if fault_bits is not None
                                        else None,
                                    }
                                )
                        bench.step(state, index)
                        if time.perf_counter() > deadline:
                            raise BenchmarkHang("supervisor watchdog expired")
                    observed = self._quantize(bench.output(state))
            except BenchmarkHang as exc:
                outcome = Outcome.DUE
                due_kind = DueKind.TIMEOUT
                due_detail = str(exc)
            except _CRASH_EXCEPTIONS as exc:
                outcome = Outcome.DUE
                due_kind = DueKind.CRASH
                due_detail = f"{type(exc).__name__}: {exc}"
            else:
                with tracer.span("compare"):
                    outcome, sdc_metrics = self.classify_output(observed)
            finally:
                arm_deadline(None)
                run_span.set_attr("outcome", outcome.value)

        return self.make_record(
            run_index,
            primary_model,
            first_step,
            site,
            bits,
            outcome,
            due_kind=due_kind,
            due_detail=due_detail,
            sdc_metrics=sdc_metrics,
            extra_faults=tuple(extra),
        )
