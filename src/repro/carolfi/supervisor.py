"""The Supervisor: launch, interrupt, watchdog, check, log.

One :meth:`Supervisor.run_one` is one CAROL-FI test: start the
benchmark, deliver the interrupt at a random step, let the Flip-script
corrupt a live variable, resume at full speed, and classify the result
against the golden output.  DUEs are *observed*, never simulated:
unhandled exceptions out of the resumed execution are crashes, loop
guards and the wall-clock watchdog are hangs.

The campaign generates its input data set once (the paper: datasets
"will be generated once and used during the whole fault injection
campaign"), so the golden output is computed a single time and every
run replays identical inputs.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.analysis.spatial import classify_mask, max_relative_error, wrong_mask
from repro.benchmarks.base import Benchmark, BenchmarkHang, arm_deadline
from repro.carolfi.flipscript import FlipScript, SitePolicy
from repro.faults.models import FaultModel
from repro.faults.outcome import DueKind, InjectionRecord, Outcome
from repro.faults.site import FaultSite
from repro.telemetry import current_tracer
from repro.util.rng import derive_rng

__all__ = ["Supervisor"]

#: Exceptions out of a resumed, corrupted execution that correspond to a
#: crashed process (the segfault/abort analogues of our Python substrate).
#: ``ArithmeticError`` covers Overflow/ZeroDivision/FloatingPointError
#: plus any other numeric abort; ``MemoryError`` is the malloc-failure
#: analogue (a corrupted size driving an absurd allocation).  Anything
#: escaping this tuple would kill the campaign worker, so the net is
#: deliberately wide — only genuine infrastructure bugs should escape.
_CRASH_EXCEPTIONS = (
    IndexError,
    ValueError,
    KeyError,
    ArithmeticError,
    MemoryError,
    RuntimeError,
)


class Supervisor:
    """Runs individual fault-injection tests for one benchmark."""

    def __init__(
        self,
        benchmark: Benchmark,
        seed: int,
        policy: SitePolicy = SitePolicy.WEIGHTED,
        watchdog_factor: float = 10.0,
    ):
        self.benchmark = benchmark
        self.seed = int(seed)
        self.flip = FlipScript(policy)
        self.watchdog_factor = float(watchdog_factor)
        self._input_path = ("carolfi", benchmark.name, "input")
        # Generate the campaign dataset once and compute the golden copy.
        state = self._fresh_state()
        self.total_steps = benchmark.num_steps(state)
        # Warm-up run on a throwaway state before the timed baseline:
        # the first execution pays first-touch allocation and cache
        # effects, and an inflated golden_runtime would stretch
        # ``watchdog_factor * golden_time`` enough to mask real hangs.
        benchmark.run(self._fresh_state())
        with current_tracer().span("golden_run", benchmark=benchmark.name):
            start = time.perf_counter()
            self.golden = self._quantize(benchmark.run(state))
            self.golden_runtime = max(time.perf_counter() - start, 1e-4)

    def _quantize(self, output: np.ndarray) -> np.ndarray:
        """Round to the precision the benchmark's output file carries.

        The paper's campaigns diff *printed* output files, so an error
        below the printf precision never counts as a mismatch.
        """
        decimals = self.benchmark.output_decimals
        if decimals is None:
            return output
        with np.errstate(invalid="ignore", over="ignore"):
            return np.round(output, decimals)

    def _fresh_state(self) -> Any:
        """Replay the campaign's fixed input data set."""
        return self.benchmark.make_state(derive_rng(self.seed, *self._input_path))

    # -- one test -------------------------------------------------------------

    def run_one(
        self,
        run_index: int,
        model: FaultModel,
        interrupt_step: int | None = None,
    ) -> InjectionRecord:
        """Execute one injection test and classify its outcome."""
        bench = self.benchmark
        # Keyed by run index alone (not shard/worker), so any sharding of
        # the campaign replays bit-identical per-run streams.
        rng = derive_rng(self.seed, "carolfi", bench.name, "run", run_index)
        total = self.total_steps
        if interrupt_step is None:
            interrupt_step = int(rng.integers(0, total))
        if not 0 <= interrupt_step < total:
            raise ValueError(f"interrupt step {interrupt_step} out of range")

        state = self._fresh_state()
        deadline = time.perf_counter() + self.watchdog_factor * self.golden_runtime + 1.0
        site: FaultSite | None = None
        bits: tuple[int, ...] | None = None
        outcome = Outcome.MASKED
        due_kind: DueKind | None = None
        due_detail = ""
        sdc_metrics: dict[str, Any] = {}
        tracer = current_tracer()
        run_span = tracer.span("run", run=run_index, model=FaultModel(model).value)

        with run_span:
            try:
                # Arm the cooperative deadline so guard loops inside a slow
                # step (bounded_range, explicit deadline_checkpoint calls)
                # can convert an in-step hang into a watchdog DUE.
                arm_deadline(deadline)
                with tracer.span("execute", interrupt_step=interrupt_step):
                    for index in range(total):
                        if index == interrupt_step:
                            with tracer.span("corrupt", step=index):
                                site, bits = self.flip.inject(
                                    bench, state, index, model, rng
                                )
                        bench.step(state, index)
                        if time.perf_counter() > deadline:
                            raise BenchmarkHang("supervisor watchdog expired")
                    observed = self._quantize(bench.output(state))
            except BenchmarkHang as exc:
                outcome = Outcome.DUE
                due_kind = DueKind.TIMEOUT
                due_detail = str(exc)
            except _CRASH_EXCEPTIONS as exc:
                outcome = Outcome.DUE
                due_kind = DueKind.CRASH
                due_detail = f"{type(exc).__name__}: {exc}"
            else:
                with tracer.span("compare"):
                    mask = wrong_mask(self.golden, observed)
                    if mask.any():
                        outcome = Outcome.SDC
                        pattern = classify_mask(mask, bench.output_dims)
                        sdc_metrics = {
                            "wrong_elements": int(mask.sum()),
                            "wrong_fraction": float(mask.mean()),
                            "max_rel_err": max_relative_error(self.golden, observed),
                            "pattern": pattern.value,
                        }
            finally:
                arm_deadline(None)
                run_span.set_attr("outcome", outcome.value)

        if site is None:
            # The flip itself crashed before the site was recorded (it
            # cannot: selection precedes corruption) — defensive default.
            site = FaultSite("unknown", "unknown", 0, "unknown")

        return InjectionRecord(
            benchmark=bench.name,
            run_index=run_index,
            site=site,
            fault_model=FaultModel(model).value,
            bits=bits,
            interrupt_step=interrupt_step,
            total_steps=total,
            time_window=bench.window_of_step(interrupt_step, total),
            num_windows=bench.num_windows,
            outcome=outcome,
            due_kind=due_kind,
            due_detail=due_detail,
            sdc_metrics=sdc_metrics,
        )
