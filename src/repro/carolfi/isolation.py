"""Process-isolated injection sandbox.

CAROL-FI runs every injected execution as a separate OS process under
GDB, so crashes and hangs are *observed* process deaths, never simulated
exceptions.  This module brings the reproduction to that standard: a
:class:`InjectionSandbox` executes injections in a disposable worker
subprocess and maps what it observes onto the DUE taxonomy:

========================  =============================  ==============
observation               meaning                        classification
========================  =============================  ==============
record over the pipe      run completed (any outcome)    worker's record
wall-clock deadline hit   true hang — sandbox kills      DUE ``hang``
RSS over the ceiling      runaway allocation — killed    DUE ``oom``
exit with fatal signal    segfault/abort analogue        DUE ``crash``
non-zero exit code        hard ``exit()`` analogue       DUE ``crash``
exit code 0 mid-run       protocol violation             DUE ``crash``
========================  =============================  ==============

Deadline and RSS kills are the sandbox's *own* deterministic actions, so
they are recorded immediately.  Self-inflicted worker deaths (signals,
exit codes, escaped exceptions) are retried in a fresh worker to rule
out infrastructure flakiness; a run that keeps killing its sandbox is
**quarantined** — recorded as a DUE with a ``sandbox:`` detail and never
retried again — so one poisonous injection cannot take down a campaign.

The sandbox prefers the ``fork`` start method where available: a parent
that has already warmed :func:`supervisor_for`'s cache hands each worker
the golden run for free, making worker respawn after a death cheap.
"""

from __future__ import annotations

import enum
import json
import multiprocessing
import os
import signal as signal_mod
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.benchmarks.base import window_of_step
from repro.benchmarks.registry import create
from repro.carolfi import shmstore
from repro.carolfi.batchrunner import BatchRunner
from repro.carolfi.prefixcache import DEFAULT_SNAPSHOT_BUDGET
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.faults.outcome import DueKind, InjectionRecord, Outcome
from repro.faults.site import FaultSite
from repro.telemetry import current_registry, deactivate
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover — import cycle: campaign imports us
    from multiprocessing.connection import Connection
    from multiprocessing.process import BaseProcess

    from repro.carolfi.campaign import CampaignConfig

__all__ = [
    "EventCallback",
    "InjectionSandbox",
    "IsolationConfig",
    "IsolationMode",
    "SandboxError",
    "describe_exitcode",
    "make_due_record",
    "mp_context",
    "rss_bytes",
    "supervisor_for",
    "supervisor_key",
]

EventCallback = Callable[[dict[str, Any]], None]


class IsolationMode(str, enum.Enum):
    """Where an injected execution runs."""

    INPROC = "inproc"
    """In the calling process (fast, test-friendly; a pathological run
    can take the campaign worker down with it)."""

    SUBPROCESS = "subprocess"
    """In a disposable sandbox worker process (the paper's methodology:
    DUEs are observed process deaths)."""


class SandboxError(RuntimeError):
    """The sandbox worker could not be started (not a run outcome)."""


@dataclass(frozen=True)
class IsolationConfig:
    """How injections are isolated from the campaign engine."""

    mode: IsolationMode = IsolationMode.INPROC
    timeout_s: float | None = None
    """Hard per-run wall-clock deadline.  ``None`` derives one from the
    worker's measured golden runtime, comfortably above the cooperative
    watchdog so guard-detected hangs keep their in-process records."""

    mem_limit_mb: float | None = None
    """RSS ceiling for the worker process; ``None`` disables the check
    (it also degrades to disabled where ``/proc`` is unavailable)."""

    startup_timeout_s: float = 300.0
    """Deadline for a fresh worker to finish its golden run."""

    max_run_deaths: int = 2
    """Worker deaths attributed to one run before it is quarantined."""

    poll_interval_s: float = 0.01
    """Supervision tick: pipe poll / liveness / RSS check cadence."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", IsolationMode(self.mode))
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.mem_limit_mb is not None and self.mem_limit_mb <= 0:
            raise ValueError("mem_limit_mb must be positive")
        if self.max_run_deaths < 1:
            raise ValueError("max_run_deaths must be at least 1")
        if self.startup_timeout_s <= 0 or self.poll_interval_s <= 0:
            raise ValueError("timeouts must be positive")

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode.value,
            "timeout_s": self.timeout_s,
            "mem_limit_mb": self.mem_limit_mb,
            "startup_timeout_s": self.startup_timeout_s,
            "max_run_deaths": self.max_run_deaths,
            "poll_interval_s": self.poll_interval_s,
        }


# -- shared supervisor cache ---------------------------------------------------

#: Per-process Supervisor cache, keyed by everything that determines the
#: golden run.  Campaign workers are reused across shards and sandbox
#: workers are respawned after every kill, so the benchmark's input
#: generation and golden run are paid once per process — or, under the
#: ``fork`` start method, once per process *tree*.
_SUPERVISORS: dict[str, Supervisor] = {}


def supervisor_key(config: "CampaignConfig") -> str:
    """Cache key of the Supervisor a config requires.

    ``snapshots`` is part of the key even though it never changes
    records: a snapshots-off campaign must not silently reuse (or be
    reused by) a snapshots-on Supervisor, or the fastpath-vs-slowpath
    equivalence tests would compare one path to itself.  ``shared``
    (the shared-memory snapshot store) is keyed for the same reason.
    """
    return json.dumps(
        {
            "benchmark": config.benchmark,
            "seed": config.seed,
            "policy": config.policy.value,
            "watchdog_factor": config.watchdog_factor,
            "benchmark_params": config.benchmark_params,
            "snapshots": config.snapshots,
            "shared": config.shared_store,
        },
        sort_keys=True,
    )


def campaign_store_key(config: "CampaignConfig") -> str:
    """The shared-segment store key a campaign's supervisors use.

    Mirrors the :class:`Supervisor` construction in
    :func:`supervisor_for` (default snapshot budget, default density),
    so the engine can sweep the campaign's segment at teardown even
    when the publisher was a worker process that died abruptly.  The
    benchmark is instantiated because the key hashes the *resolved*
    param dict — a campaign passing partial params must map to the
    same segment its supervisors used.
    """
    benchmark = create(config.benchmark, **config.benchmark_params)
    return shmstore.store_key(
        benchmark.name,
        config.seed,
        config.watchdog_factor,
        benchmark.params,
        density=None,
        byte_budget=DEFAULT_SNAPSHOT_BUDGET,
    )


def supervisor_for(
    config: "CampaignConfig",
    golden_cache: "str | None" = None,
    on_event: EventCallback | None = None,
) -> Supervisor:
    """The (cached) Supervisor for one campaign config.

    ``golden_cache`` (a directory path) and ``on_event`` (structured
    operational events, e.g. snapshot-budget degradation) only matter on
    a cache miss — an already-built Supervisor is returned as-is, since
    both are construction-time concerns, not part of the supervisor's
    identity.
    """
    key = supervisor_key(config)
    supervisor = _SUPERVISORS.get(key)
    if supervisor is None:
        supervisor = Supervisor(
            create(config.benchmark, **config.benchmark_params),
            seed=config.seed,
            policy=config.policy,
            watchdog_factor=config.watchdog_factor,
            snapshots=config.snapshots,
            golden_cache=golden_cache,
            shared=config.shared_store,
            on_event=on_event,
        )
        _SUPERVISORS[key] = supervisor
    return supervisor


def mp_context() -> Any:
    """The multiprocessing context used by all campaign subprocesses.

    Typed ``Any``: typeshed only declares ``Process`` on the concrete
    context classes, not on their ``BaseContext`` ancestor.

    ``fork`` where available (Linux): children inherit the warmed
    supervisor cache, so respawning a killed sandbox worker costs
    milliseconds instead of a golden re-run.  Elsewhere the platform
    default is used and every worker pays its own golden run.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# -- synthetic DUE records -----------------------------------------------------


def make_due_record(
    config: "CampaignConfig",
    run_index: int,
    model: FaultModel,
    total_steps: int,
    num_windows: int,
    kind: DueKind,
    detail: str,
) -> InjectionRecord:
    """A DUE record for a run whose worker process never reported back.

    The interrupt step is re-derived from the run's own random stream
    exactly as :meth:`Supervisor.run_one` would have drawn it, so the
    record lands in the correct time window; the fault site is unknown
    (it died with the worker).
    """
    rng = derive_rng(config.seed, "carolfi", config.benchmark, "run", run_index)
    interrupt_step = int(rng.integers(0, total_steps))
    return InjectionRecord(
        benchmark=config.benchmark,
        run_index=run_index,
        site=FaultSite(
            frame="unknown",
            variable="unknown",
            flat_index=0,
            dtype="unknown",
            var_class="unknown",
        ),
        fault_model=FaultModel(model).value,
        bits=None,
        interrupt_step=interrupt_step,
        total_steps=total_steps,
        time_window=window_of_step(interrupt_step, total_steps, num_windows),
        num_windows=num_windows,
        outcome=Outcome.DUE,
        due_kind=kind,
        due_detail=detail,
    )


# -- process observation helpers ----------------------------------------------


def rss_bytes(pid: int) -> int | None:
    """Resident set size of ``pid`` in bytes, or ``None`` if unreadable."""
    try:
        with open(f"/proc/{pid}/statm", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return None


def describe_exitcode(exitcode: int | None) -> str:
    """Human-readable death cause from a joined process's exit code."""
    if exitcode is None:
        return "still running"
    if exitcode < 0:
        try:
            name = signal_mod.Signals(-exitcode).name
        except ValueError:
            name = f"signal {-exitcode}"
        return f"killed by {name}"
    if exitcode == 0:
        return "exited cleanly mid-run (protocol violation)"
    return f"exit code {exitcode}"


def _kill(proc: "BaseProcess") -> None:
    """Hard-kill a worker and reap it."""
    try:
        proc.kill()
    except (OSError, AttributeError, ValueError):  # pragma: no cover
        pass
    proc.join(timeout=5.0)


# -- the worker side -----------------------------------------------------------


def _worker_main(
    config: "CampaignConfig",
    conn: "Connection",
    golden_cache: "str | None" = None,
    parent_end: "Connection | None" = None,
) -> None:
    """Sandbox worker: build a Supervisor, then serve run requests.

    Under the fork start method the worker inherits the parent's warmed
    supervisor cache — golden run *and* prefix-snapshot store included —
    so ``supervisor_for`` is free; under spawn, ``golden_cache`` lets it
    at least skip the golden re-run.
    """
    if parent_end is not None:
        # Close our inherited copy of the parent's pipe end.  Without
        # this, a parent that dies abruptly (SIGKILL, a lease worker's
        # os._exit) never delivers EOF — our own fd keeps the socket
        # alive — and the recv loop below blocks forever as an orphan.
        try:
            parent_end.close()
        except OSError:  # pragma: no cover
            pass
    # Under fork this grandchild inherits the shard worker's active
    # telemetry scope, but its spans/metrics could never be merged back
    # (records travel over the verdict pipe, telemetry over the shard
    # pipe we don't hold) — reset to disabled rather than buffer them
    # into a sink nobody drains.
    deactivate()
    try:
        supervisor = supervisor_for(config, golden_cache=golden_cache)
    except BaseException as exc:  # noqa: BLE001 — reported, then re-raised
        try:
            conn.send(("startup_error", f"{type(exc).__name__}: {exc}"))
        except OSError:  # pragma: no cover — parent already gone
            pass
        raise
    conn.send(
        (
            "ready",
            {
                "total_steps": supervisor.total_steps,
                "num_windows": supervisor.benchmark.num_windows,
                "golden_runtime": supervisor.golden_runtime,
            },
        )
    )
    try:
        _serve(supervisor, conn)
    finally:
        # Multiprocessing children skip regular atexit (os._exit), so
        # reap any segment *this* process published — normally none:
        # the engine publishes before the sandbox forks, and the pid
        # guard keeps this from touching the parent's segments.
        shmstore.release_published()


def _serve(supervisor: Supervisor, conn: "Connection") -> None:
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return  # parent is gone; die quietly
        if msg[0] == "close":
            return
        if msg[0] == "run_batch":
            # A group of runs driven through the vectorized batch path
            # inside this one forked process.  Only vectorized-path
            # records come back; structural fallbacks stay absent and
            # the parent finishes them through the scalar sandbox path,
            # keeping per-run death attribution (and therefore records)
            # identical to unbatched subprocess mode.
            _, run_specs, batch_size = msg
            todo = [(int(idx), FaultModel(value)) for idx, value in run_specs]
            batched = BatchRunner(supervisor, int(batch_size)).run_many(todo)
            conn.send(
                (
                    "batch_records",
                    {idx: record.to_dict() for idx, record in batched.items()},
                )
            )
            continue
        _, run_index, model_value = msg
        record = supervisor.run_one(run_index, FaultModel(model_value))
        conn.send(("record", record.to_dict()))


# -- the parent side -----------------------------------------------------------


class InjectionSandbox:
    """Runs injections in a supervised, disposable worker subprocess.

    Presents the same ``run_one(run_index, model) -> InjectionRecord``
    surface as :class:`Supervisor`, but every call is executed in the
    worker and supervised with a hard wall-clock deadline and an
    optional RSS ceiling.  Failure events (spawns, deaths, kills,
    quarantines) are delivered to ``on_event`` as dicts — the campaign
    engine forwards them into its ``failures.jsonl``.
    """

    def __init__(
        self,
        config: "CampaignConfig",
        isolation: IsolationConfig | None = None,
        on_event: EventCallback | None = None,
        golden_cache: "str | None" = None,
    ):
        self.config = config
        self.isolation = isolation or IsolationConfig(mode=IsolationMode.SUBPROCESS)
        self.on_event = on_event
        self.golden_cache = golden_cache
        if getattr(config, "shared_store", False):
            # Publish (or attach) the host-wide shared segment from the
            # sandbox's owner before any worker forks: a worker that
            # published would leak its segment when killed — and being
            # killed is a sandbox worker's job description.
            try:
                supervisor_for(config, golden_cache=golden_cache, on_event=on_event)
            except Exception:  # noqa: BLE001 — the worker reports the real failure
                pass
        self._ctx = mp_context()
        self._proc: BaseProcess | None = None
        self._conn: Connection | None = None
        self._meta: dict[str, Any] | None = None
        self._deaths: dict[int, int] = {}
        self._mem_warned = False

    # -- metadata (cached from the most recent worker handshake) ---------------

    def _metadata(self) -> dict[str, Any]:
        # Survives worker deaths: classification of a killed run needs
        # the step/window geometry without respawning a worker for it.
        if self._meta is None:
            self._ensure_worker()
        assert self._meta is not None
        return self._meta

    @property
    def total_steps(self) -> int:
        return int(self._metadata()["total_steps"])

    @property
    def num_windows(self) -> int:
        return int(self._metadata()["num_windows"])

    @property
    def hard_deadline_s(self) -> float:
        """Per-run wall-clock budget before the sandbox kills the worker.

        The derived default sits well above the cooperative watchdog
        (``watchdog_factor * golden_runtime``) so that any hang the
        guards *can* see is still classified in-process — keeping those
        records bit-identical to inproc mode — and only truly
        uncooperative hangs reach the hard kill.
        """
        if self.isolation.timeout_s is not None:
            return float(self.isolation.timeout_s)
        golden = float(self._metadata()["golden_runtime"])
        watchdog = self.config.watchdog_factor * golden + 1.0
        return 3.0 * watchdog + 5.0

    # -- events ----------------------------------------------------------------

    def _emit(self, event: str, run_index: int | None = None, **extra: Any) -> None:
        if self.on_event is None:
            return
        payload: dict[str, Any] = {
            "event": event,
            "benchmark": self.config.benchmark,
            "run": run_index,
        }
        payload.update(extra)
        self.on_event(payload)

    # -- worker lifecycle ------------------------------------------------------

    def _ensure_worker(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            return
        self._teardown()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.config, child_conn, self.golden_cache, parent_conn),
            daemon=True,
            name=f"sandbox-{self.config.benchmark}",
        )
        proc.start()
        child_conn.close()
        deadline = time.monotonic() + self.isolation.startup_timeout_s
        startup_error = None
        while True:
            if parent_conn.poll(self.isolation.poll_interval_s):
                try:
                    msg = parent_conn.recv()
                except (EOFError, OSError):
                    break
                if msg[0] == "ready":
                    self._proc, self._conn, self._meta = proc, parent_conn, msg[1]
                    current_registry().counter(
                        "repro_sandbox_spawns_total",
                        help="Sandbox worker processes spawned, by benchmark.",
                    ).inc(benchmark=self.config.benchmark)
                    self._emit("sandbox_spawn", pid=proc.pid)
                    return
                if msg[0] == "startup_error":
                    startup_error = msg[1]
                    break
            if not proc.is_alive() and not parent_conn.poll():
                break
            if time.monotonic() > deadline:
                startup_error = (
                    f"worker did not come up within {self.isolation.startup_timeout_s}s"
                )
                break
        _kill(proc)
        cause = startup_error or describe_exitcode(proc.exitcode)
        parent_conn.close()
        self._emit("sandbox_startup_failure", detail=cause)
        raise SandboxError(f"sandbox worker failed to start: {cause}")

    def _teardown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._proc is not None and self._proc.is_alive():
            _kill(self._proc)
        self._proc = None
        self._conn = None

    def forget_worker(self) -> None:
        """Drop inherited worker handles without touching the worker.

        A forked campaign worker inherits this sandbox with handles to a
        process that is *not its child*: multiprocessing forbids
        managing it from here, and sharing its pipe across processes
        would interleave messages.  Closing our copy of the pipe fd and
        nulling the handles leaves the original parent's sandbox intact
        while keeping the cached geometry metadata.
        """
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass
        self._proc = None
        self._conn = None

    def close(self) -> None:
        """Shut the worker down (politely, then by force)."""
        if self._proc is not None and self._proc.is_alive() and self._conn is not None:
            try:
                self._conn.send(("close",))
                self._proc.join(timeout=2.0)
            except (OSError, ValueError):
                pass
        self._teardown()

    def __enter__(self) -> "InjectionSandbox":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- one supervised injection ---------------------------------------------

    def run_one(self, run_index: int, model: FaultModel) -> InjectionRecord:
        """Execute one injection in the sandbox and classify the result.

        Always returns a record: completed runs return the worker's own
        record; deadline and RSS kills return an immediate DUE; repeated
        self-inflicted worker deaths return a quarantine DUE.  Only a
        worker that cannot even *start* raises :class:`SandboxError`.
        """
        model = FaultModel(model)
        while True:
            self._ensure_worker()
            assert self._conn is not None and self._proc is not None
            try:
                self._conn.send(("run", run_index, model.value))
            except (OSError, ValueError):
                # Died between runs: infrastructure, not this run's doing.
                self._emit("sandbox_death", run_index=None, detail="died while idle")
                self._teardown()
                continue
            verdict = self._await_verdict(run_index)
            if verdict[0] == "record":
                return InjectionRecord.from_dict(verdict[1])
            _, kind, detail = verdict
            if kind in (DueKind.HANG, DueKind.OOM):
                # Our own deterministic kill — an observed hang/OOM is
                # the run's outcome, exactly like a watchdog DUE.
                return self._due(run_index, model, kind, f"sandbox: {detail}")
            deaths = self._deaths[run_index] = self._deaths.get(run_index, 0) + 1
            self._emit("sandbox_death", run_index, detail=detail, deaths=deaths)
            if deaths >= self.isolation.max_run_deaths:
                self._emit("sandbox_quarantine", run_index, detail=detail, deaths=deaths)
                return self._due(
                    run_index,
                    model,
                    kind,
                    f"sandbox: quarantined after {deaths} worker deaths ({detail})",
                )
            # else: respawn and retry the same run to rule out flakiness.

    # -- one supervised batch group --------------------------------------------

    def run_batch(
        self, runs: "Sequence[tuple[int, FaultModel]]", batch_size: int
    ) -> dict[int, InjectionRecord]:
        """Drive a group of runs through the worker's vectorized path.

        :meth:`BatchRunner.run_many`'s contract lifted over the pipe:
        the returned mapping holds records only for runs the worker
        completed vectorized; a missing run means "finish it with the
        scalar :meth:`run_one`" — which preserves the scalar path's
        per-run death attribution, retry and quarantine behaviour, and
        therefore byte-identical records.  A worker death, RSS overrun
        or deadline *during* the batch aborts the whole group (returns
        ``{}``): nothing is ever classified from a batch-wide failure,
        every member simply retries scalar.
        """
        if not runs:
            return {}
        self._ensure_worker()
        assert self._conn is not None and self._proc is not None
        payload = [(int(idx), FaultModel(model).value) for idx, model in runs]
        try:
            self._conn.send(("run_batch", payload, int(batch_size)))
        except (OSError, ValueError):
            self._emit("sandbox_death", run_index=None, detail="died while idle")
            self._teardown()
            return {}
        rows = self._await_batch(len(runs))
        if rows is None:
            return {}
        return {
            int(idx): InjectionRecord.from_dict(row) for idx, row in rows.items()
        }

    def _await_batch(self, count: int) -> dict[Any, Any] | None:
        """Wait for batch records, or ``None`` if the group aborted."""
        assert self._conn is not None and self._proc is not None
        # The group does the work of up to ``count`` scalar runs, so it
        # gets the sum of their individual budgets (mirroring the batch
        # runner's own occupancy-scaled cooperative deadline).
        budget = self.hard_deadline_s * max(count, 1)
        deadline = time.monotonic() + budget
        limit = self.isolation.mem_limit_mb
        limit_bytes = None if limit is None else int(limit * (1 << 20))
        while True:
            try:
                if self._conn.poll(self.isolation.poll_interval_s):
                    msg = self._conn.recv()
                    if msg[0] == "batch_records":
                        return msg[1]
                    continue  # pragma: no cover — unexpected chatter
            except (EOFError, OSError):
                pass  # fall through to the death check
            if not self._proc.is_alive():
                self._proc.join(timeout=5.0)
                detail = describe_exitcode(self._proc.exitcode)
                self._teardown()
                self._emit("sandbox_batch_abort", detail=detail, runs=count)
                return None
            if limit_bytes is not None:
                rss = rss_bytes(self._proc.pid)  # type: ignore[arg-type]
                if rss is None:
                    limit_bytes = None  # unreadable: scalar path warns
                elif rss > limit_bytes:
                    _kill(self._proc)
                    self._teardown()
                    detail = (
                        f"rss {rss / (1 << 20):.0f} MiB exceeded the "
                        f"{limit:.0f} MiB ceiling during a batch; worker killed"
                    )
                    self._emit("sandbox_batch_abort", detail=detail, runs=count)
                    return None
            if time.monotonic() > deadline:
                _kill(self._proc)
                self._teardown()
                detail = f"batch wall-clock budget {budget:.1f}s exceeded; worker killed"
                self._emit("sandbox_batch_abort", detail=detail, runs=count)
                return None

    def _await_verdict(self, run_index: int) -> tuple[str, Any] | tuple[str, DueKind, str]:
        """Wait for a record, a deadline, an RSS overrun, or a death."""
        assert self._conn is not None and self._proc is not None
        budget = self.hard_deadline_s
        deadline = time.monotonic() + budget
        limit = self.isolation.mem_limit_mb
        limit_bytes = None if limit is None else int(limit * (1 << 20))
        while True:
            try:
                if self._conn.poll(self.isolation.poll_interval_s):
                    msg = self._conn.recv()
                    if msg[0] == "record":
                        return ("record", msg[1])
                    continue  # pragma: no cover — unexpected chatter
            except (EOFError, OSError):
                pass  # fall through to the death check
            if not self._proc.is_alive():
                self._proc.join(timeout=5.0)
                detail = describe_exitcode(self._proc.exitcode)
                self._teardown()
                return ("death", DueKind.CRASH, detail)
            if limit_bytes is not None:
                rss = rss_bytes(self._proc.pid)  # type: ignore[arg-type]
                if rss is None and not self._mem_warned:
                    self._mem_warned = True
                    self._emit(
                        "sandbox_mem_limit_unenforceable",
                        run_index,
                        detail="cannot read worker RSS on this platform",
                    )
                    limit_bytes = None
                elif rss is not None and rss > limit_bytes:
                    _kill(self._proc)
                    self._teardown()
                    detail = (
                        f"rss {rss / (1 << 20):.0f} MiB exceeded the "
                        f"{limit:.0f} MiB ceiling; worker killed"
                    )
                    self._emit("sandbox_oom_kill", run_index, detail=detail)
                    return ("death", DueKind.OOM, detail)
            if time.monotonic() > deadline:
                _kill(self._proc)
                self._teardown()
                detail = f"wall-clock deadline {budget:.1f}s exceeded; worker killed"
                self._emit("sandbox_timeout_kill", run_index, detail=detail)
                return ("death", DueKind.HANG, detail)

    def _due(
        self, run_index: int, model: FaultModel, kind: DueKind, detail: str
    ) -> InjectionRecord:
        return make_due_record(
            self.config,
            run_index,
            model,
            self.total_steps,
            self.num_windows,
            kind,
            detail,
        )
