"""Analysis layer: SDC qualification and vulnerability aggregation.

* :mod:`repro.analysis.spatial` — the five output error patterns
  (Figure 2's SDC partition, Section 4.3);
* :mod:`repro.analysis.relative_error` — FIT vs. accepted error margin
  (Figure 3, Section 4.4) and the mantissa-bit saturation argument;
* :mod:`repro.analysis.pvf` — Program Vulnerability Factor by outcome,
  fault model and time window (Figures 4-6);
* :mod:`repro.analysis.criticality` — portion-level criticality
  grading (Section 6's per-benchmark discussions);
* :mod:`repro.analysis.extrapolate` — Trinity/exascale MTBF
  projections (Section 4.2).
"""

from repro.analysis.criticality import (
    PortionReport,
    criticality_by_portion,
    portion_of_record,
)
from repro.analysis.extrapolate import (
    EXASCALE_BOARDS,
    TRINITY_BOARDS,
    MachineProjection,
    project_machine,
)
from repro.analysis.pvf import (
    outcome_shares,
    pvf,
    pvf_by_fault_model,
    pvf_by_window,
)
from repro.analysis.relative_error import (
    PAPER_TOLERANCES,
    fit_reduction_curve,
    mantissa_bits_within,
    surviving_fraction,
)
from repro.analysis.severity import (
    SeverityClass,
    SeverityThresholds,
    classify_severity,
    severity_census,
)
from repro.analysis.spatial import (
    ErrorPattern,
    classify_mask,
    classify_outputs,
    max_relative_error,
    wrong_mask,
)

__all__ = [
    "EXASCALE_BOARDS",
    "ErrorPattern",
    "MachineProjection",
    "PAPER_TOLERANCES",
    "PortionReport",
    "SeverityClass",
    "SeverityThresholds",
    "TRINITY_BOARDS",
    "classify_mask",
    "classify_severity",
    "classify_outputs",
    "criticality_by_portion",
    "fit_reduction_curve",
    "mantissa_bits_within",
    "max_relative_error",
    "outcome_shares",
    "portion_of_record",
    "project_machine",
    "pvf",
    "pvf_by_fault_model",
    "pvf_by_window",
    "severity_census",
    "surviving_fraction",
    "wrong_mask",
]
