"""Program Vulnerability Factor aggregations (paper Section 6).

The PVF of a program for an outcome is the probability that an injected
fault produces that outcome.  The paper slices it three ways:

* overall Masked/SDC/DUE shares (Figure 4);
* per fault model (Figures 5a and 5b);
* per execution-time window (Figures 6a and 6b) — the PVF *of* each
  window, not each window's contribution, "which is why the sum of
  percentages is higher than 100%".
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.faults.outcome import InjectionRecord, Outcome
from repro.util.stats import CountEstimate, proportion_ci

__all__ = [
    "outcome_shares",
    "pvf",
    "pvf_by_fault_model",
    "pvf_by_window",
]


def pvf(records: list[InjectionRecord], outcome: Outcome) -> CountEstimate:
    """P(outcome | fault) with its 95% Wald interval."""
    if not records:
        raise ValueError("no records")
    hits = sum(1 for r in records if r.outcome is outcome)
    return proportion_ci(hits, len(records))


def outcome_shares(records: list[InjectionRecord]) -> dict[str, float]:
    """Masked/SDC/DUE fractions (Figure 4's stacked bars)."""
    if not records:
        raise ValueError("no records")
    total = len(records)
    return {
        o.value: sum(1 for r in records if r.outcome is o) / total for o in Outcome.all()
    }


def pvf_by_fault_model(
    records: list[InjectionRecord],
    outcome: Outcome,
    models: Iterable[str] | None = None,
) -> dict[str, CountEstimate]:
    """PVF per fault model (Figure 5)."""
    if not records:
        raise ValueError("no records")
    if models is None:
        models = sorted({r.fault_model for r in records})
    out: dict[str, CountEstimate] = {}
    for model in models:
        subset = [r for r in records if r.fault_model == model]
        if subset:
            out[model] = pvf(subset, outcome)
    return out


def pvf_by_window(
    records: list[InjectionRecord], outcome: Outcome
) -> dict[int, CountEstimate]:
    """PVF per execution-time window (Figure 6).

    Windows with no injections are omitted; each window's estimate is
    independent, so the values may legitimately sum past 100%.
    """
    if not records:
        raise ValueError("no records")
    windows = sorted({r.time_window for r in records})
    out: dict[int, CountEstimate] = {}
    for window in windows:
        subset = [r for r in records if r.time_window == window]
        out[window] = pvf(subset, outcome)
    return out
