"""Relative-error tolerance analysis (paper Section 4.4, Figure 3).

An SDC whose every corrupted element is within a relative tolerance of
its golden value stops being an error once that tolerance is accepted.
Given the per-SDC maximum relative error recorded by the campaigns,
:func:`fit_reduction_curve` computes how much the SDC FIT rate drops as
the accepted margin grows from 0.1% to 15% — the paper's Figure 3.

:func:`mantissa_bits_within` reproduces the paper's explanation of the
curve's saturation: for double precision, a 0.1% margin already frees
41 of the 52 mantissa bits, and 15% frees 49, so past the initial drop
very few additional upsets are forgiven.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "PAPER_TOLERANCES",
    "fit_reduction_curve",
    "mantissa_bits_within",
    "surviving_fraction",
]

#: Tolerance grid of Figure 3 (fractions, not percent).
PAPER_TOLERANCES: tuple[float, ...] = (
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.04,
    0.08,
    0.15,
)


def surviving_fraction(max_rel_errors: Sequence[float], tolerance: float) -> float:
    """Fraction of SDCs still counted as errors at ``tolerance``.

    An SDC survives when at least one corrupted element deviates by
    more than the tolerance; with the recorded per-SDC maximum relative
    error that is simply ``max_rel_err > tolerance``.
    """
    errors = np.asarray(list(max_rel_errors), dtype=float)
    if errors.size == 0:
        raise ValueError("no SDCs to analyse")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    return float(np.mean(errors > tolerance))


def fit_reduction_curve(
    max_rel_errors: Sequence[float],
    tolerances: Iterable[float] = PAPER_TOLERANCES,
) -> list[tuple[float, float]]:
    """(tolerance, FIT reduction %) pairs — Figure 3's vertical axis.

    FIT is proportional to surviving SDC count, so the reduction at a
    tolerance t is ``100 * (1 - surviving_fraction(t))``.
    """
    curve = []
    for tol in tolerances:
        reduction = 100.0 * (1.0 - surviving_fraction(max_rel_errors, tol))
        curve.append((float(tol), reduction))
    return curve


def mantissa_bits_within(tolerance: float, mantissa_bits: int = 52) -> int:
    """Mantissa bits whose worst-case flip stays inside ``tolerance``.

    Flipping mantissa bit b (0 = LSB) of an IEEE-754 value changes it
    by at most 2^(b - mantissa_bits) relative to the value, so bits with
    2^(b - mantissa_bits) <= tolerance are free.  The paper: a 0.1%
    margin allows variations in 41 bits of a double's mantissa, 15%
    allows 49.
    """
    if not 0 < tolerance < 1:
        raise ValueError("tolerance must be in (0, 1)")
    if mantissa_bits < 1:
        raise ValueError("mantissa_bits must be positive")
    free = math.floor(math.log2(tolerance)) + mantissa_bits
    return int(max(0, min(mantissa_bits, free + 1)))
