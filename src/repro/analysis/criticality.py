"""Criticality analysis: which code portions matter (paper Section 6).

CAROL-FI's purpose is to grade benchmark portions by how likely their
corruption is to produce an SDC or a DUE, so hardening can be targeted.
This module groups injection records by variable class (with the
per-benchmark aggregations the paper uses, e.g. folding operand
pointers into the "matrices" portion and splitting CLAMR's mesh into
Sort / Tree / others) and ranks the portions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.outcome import InjectionRecord, Outcome
from repro.util.stats import CountEstimate, proportion_ci

__all__ = ["PortionReport", "criticality_by_portion", "portion_of_record"]

#: Per-benchmark mapping from our variable classes to the portion names
#: the paper's analysis uses.  Pointers are reported with the data they
#: point at (a corrupted operand pointer is a fault "in the matrices" at
#: the paper's level of description).
PORTION_MAPS: dict[str, dict[str, str]] = {
    "dgemm": {
        "matrix": "matrices",
        "pointer": "matrices",
        "control": "control",
    },
    "lud": {
        "matrix": "matrices",
        "pointer": "matrices",
        "control": "control",
    },
    "nw": {
        "matrix": "matrices",
        "pointer": "matrices",
        "input": "matrices",
        "reference": "matrices",
        "control": "control",
    },
    "hotspot": {
        "grid": "grid",
        "pointer": "grid",
        "constant": "constant+control",
        "control": "constant+control",
    },
    "lavamd": {
        "charge_distance": "charge+distance",
        "pointer": "charge+distance",
        "force": "force",
        "constant": "control",
        "control": "control",
    },
    "clamr": {
        "sort": "sort",
        "tree": "tree",
        "others": "others",
        "control": "others",
        "constant": "others",
    },
}


@dataclass(frozen=True)
class PortionReport:
    """Outcome statistics of faults landing in one portion."""

    portion: str
    injections: int
    sdc: CountEstimate
    due: CountEstimate

    @property
    def harmful_fraction(self) -> float:
        return self.sdc.value + self.due.value


def portion_of_record(record: InjectionRecord) -> str:
    """Paper-level portion name for one injection record."""
    mapping = PORTION_MAPS.get(record.benchmark, {})
    return mapping.get(record.site.var_class, record.site.var_class)


def criticality_by_portion(records: list[InjectionRecord]) -> list[PortionReport]:
    """Portion reports sorted by harmful fraction, most critical first."""
    if not records:
        raise ValueError("no records")
    groups: dict[str, list[InjectionRecord]] = {}
    for record in records:
        groups.setdefault(portion_of_record(record), []).append(record)
    reports = []
    for portion, subset in groups.items():
        sdc = sum(1 for r in subset if r.outcome is Outcome.SDC)
        due = sum(1 for r in subset if r.outcome is Outcome.DUE)
        reports.append(
            PortionReport(
                portion=portion,
                injections=len(subset),
                sdc=proportion_ci(sdc, len(subset)),
                due=proportion_ci(due, len(subset)),
            )
        )
    reports.sort(key=lambda r: r.harmful_fraction, reverse=True)
    return reports
