"""SDC severity qualification (paper Section 2.2 / 4.3-4.4).

The paper builds on its authors' earlier criticality metrics
("Radiation-Induced Error Criticality in Modern HPC Parallel
Accelerators", ref [38]): an SDC is qualified by *how far* the
corrupted values deviate (magnitude) and *how much of the output* they
touch (spread), extended here with the tolerance notion of Section 4.4.
Crossing the two axes yields four severity classes:

===================  =======================  =========================
                     small spread             large spread
===================  =======================  =========================
small magnitude      TOLERABLE — inside an    ATTENUATED — HotSpot's
                     application's accepted   signature: wide but tiny,
                     imprecision              vanishes under tolerance
large magnitude      LOCALIZED — a few badly  CRITICAL — propagated and
                     wrong values (ABFT       compounded corruption, the
                     territory)               checkpoint-killing case
===================  =======================  =========================

plus NEGLIGIBLE for SDCs whose every deviation sits below the accepted
tolerance (they stop being errors at all once imprecision is allowed).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass

__all__ = [
    "SeverityClass",
    "SeverityThresholds",
    "classify_severity",
    "severity_census",
]


class SeverityClass(str, enum.Enum):
    """Joint magnitude x spread qualification of one SDC."""

    NEGLIGIBLE = "negligible"
    TOLERABLE = "tolerable"
    ATTENUATED = "attenuated"
    LOCALIZED = "localized"
    CRITICAL = "critical"


@dataclass(frozen=True)
class SeverityThresholds:
    """The three knobs of the qualification.

    ``tolerance`` is the accepted relative imprecision (the paper
    sweeps 0.1%-15%; 2% is the seismic-simulation figure its Section
    2.1 quotes); ``magnitude`` splits small from large deviations;
    ``spread`` splits localized from spread-out corruption (fraction of
    output elements).
    """

    tolerance: float = 0.02
    magnitude: float = 0.10
    spread: float = 0.01

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self.magnitude <= self.tolerance:
            raise ValueError("magnitude threshold must exceed the tolerance")
        if not 0 < self.spread < 1:
            raise ValueError("spread threshold must be in (0, 1)")


def classify_severity(
    max_rel_err: float,
    wrong_fraction: float,
    thresholds: SeverityThresholds = SeverityThresholds(),
) -> SeverityClass:
    """Qualify one SDC from its recorded metrics.

    Both campaign record types (``sdc_metrics`` of the injector and the
    beam driver) carry ``max_rel_err`` and ``wrong_fraction``, so any
    log can be re-qualified at any thresholds after the fact.
    """
    if max_rel_err < 0:
        raise ValueError("max_rel_err must be non-negative")
    if not 0 <= wrong_fraction <= 1:
        raise ValueError("wrong_fraction must be in [0, 1]")
    if max_rel_err <= thresholds.tolerance:
        return SeverityClass.NEGLIGIBLE
    big = max_rel_err > thresholds.magnitude
    wide = wrong_fraction > thresholds.spread
    if big and wide:
        return SeverityClass.CRITICAL
    if big:
        return SeverityClass.LOCALIZED
    if wide:
        return SeverityClass.ATTENUATED
    return SeverityClass.TOLERABLE


def severity_census(
    sdc_metrics: Iterable[dict],
    thresholds: SeverityThresholds = SeverityThresholds(),
) -> dict[str, int]:
    """Count SDCs per severity class.

    ``sdc_metrics`` is an iterable of the ``sdc_metrics`` dicts carried
    by SDC records (injection or beam).  Classes with zero members are
    included, so censuses are directly comparable.
    """
    census = {cls.value: 0 for cls in SeverityClass}
    for metrics in sdc_metrics:
        cls = classify_severity(
            float(metrics["max_rel_err"]),
            float(metrics.get("wrong_fraction", 0.0)),
            thresholds,
        )
        census[cls.value] += 1
    return census
