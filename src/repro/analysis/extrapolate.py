"""Machine-scale reliability extrapolation (paper Section 4.2).

"If we extrapolate the FIT rates to a Trinity-size machine with 19,000
Xeon Phis, operating at sea level, one should expect to see a SDC for
LUD or DUE for HotSpot every eleven or twelve days.  A hypothetical
exascale machine built with the tested Xeon Phi would require at least
an increase of 10x in the number of boards and would lead to almost
daily SDC or DUE."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import FIT_HOURS

__all__ = [
    "EXASCALE_BOARDS",
    "TRINITY_BOARDS",
    "MachineProjection",
    "project_machine",
]

TRINITY_BOARDS = 19_000
"""Trinity-scale Xeon Phi count used by the paper."""

EXASCALE_BOARDS = 190_000
"""The paper's hypothetical exascale machine (10x Trinity)."""


@dataclass(frozen=True)
class MachineProjection:
    """Expected failure cadence of a machine built from tested boards."""

    boards: int
    fit_per_board: float
    mtbf_hours: float

    @property
    def mtbf_days(self) -> float:
        return self.mtbf_hours / 24.0

    @property
    def events_per_day(self) -> float:
        return 24.0 / self.mtbf_hours


def project_machine(fit_per_board: float, boards: int) -> MachineProjection:
    """MTBF of ``boards`` devices each failing at ``fit_per_board``.

    FIT rates add across identical independent boards, so the machine
    MTBF is 1e9 / (FIT x boards) hours.
    """
    if fit_per_board <= 0:
        raise ValueError("FIT must be positive")
    if boards <= 0:
        raise ValueError("boards must be positive")
    return MachineProjection(
        boards=boards,
        fit_per_board=fit_per_board,
        mtbf_hours=FIT_HOURS / (fit_per_board * boards),
    )
