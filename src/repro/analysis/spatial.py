"""Spatial classification of corrupted outputs (paper Section 4.3).

Each SDC's wrong-element mask is classified into one of the paper's
five failure patterns:

* **single** — exactly one wrong element;
* **line** — multiple wrong elements confined to one row/column (one
  spatial axis varies, all others fixed);
* **square** — wrong elements spanning two spatial axes as a dense
  region;
* **cubic** — wrong elements spanning three spatial axes as a dense
  region (only possible for 3-D outputs, i.e. LavaMD);
* **random** — multiple wrong elements with no clear pattern (sparse
  scatter across axes).

Dense vs. scattered is decided by the fill ratio of the wrong set's
bounding box; the paper's visual "clear pattern" judgement maps onto a
fill-ratio threshold.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["ErrorPattern", "classify_mask", "classify_outputs", "wrong_mask"]

#: Bounding-box fill ratio above which a multi-axis spread counts as a
#: dense square/cubic region rather than a random scatter.
DENSE_FILL_RATIO = 0.5


class ErrorPattern(str, enum.Enum):
    """The paper's five SDC spatial patterns (plus NONE for no error)."""

    NONE = "none"
    SINGLE = "single"
    LINE = "line"
    SQUARE = "square"
    CUBIC = "cubic"
    RANDOM = "random"

    @classmethod
    def observable(cls) -> tuple["ErrorPattern", ...]:
        """Patterns that appear in Figure 2's SDC partition."""
        return (cls.CUBIC, cls.SQUARE, cls.LINE, cls.SINGLE, cls.RANDOM)


def wrong_mask(
    golden: np.ndarray, observed: np.ndarray, tolerance: float = 0.0
) -> np.ndarray:
    """Boolean mask of elements counted as wrong at a relative tolerance.

    ``tolerance=0`` is the paper's default "any bit mismatch" rule.
    With a positive tolerance, an element is wrong when
    ``|obs - gold| > tolerance * |gold|``; a corrupted element whose
    golden value is zero is wrong at any tolerance.
    """
    if golden.shape != observed.shape:
        raise ValueError(f"shape mismatch: {golden.shape} vs {observed.shape}")
    g = np.asarray(golden, dtype=np.float64)
    o = np.asarray(observed, dtype=np.float64)
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    neq = ~(
        np.isclose(o, g, rtol=0.0, atol=0.0, equal_nan=True)
    )
    if tolerance == 0.0:
        return neq
    diff = np.abs(o - g)
    denom = np.abs(g)
    with np.errstate(invalid="ignore"):
        within = diff <= tolerance * denom
    # NaN/inf observations never fall within a tolerance band.
    within &= np.isfinite(o)
    return neq & ~within


def _spatial_collapse(mask: np.ndarray, spatial_dims: int) -> np.ndarray:
    """Reduce trailing non-spatial axes (e.g. LavaMD's per-box features)."""
    if mask.ndim < spatial_dims:
        raise ValueError(f"mask has {mask.ndim} axes, needs at least {spatial_dims}")
    if mask.ndim == spatial_dims:
        return mask
    return mask.reshape(mask.shape[:spatial_dims] + (-1,)).any(axis=-1)


def classify_mask(mask: np.ndarray, spatial_dims: int | None = None) -> ErrorPattern:
    """Classify a wrong-element mask into one of the five patterns."""
    mask = np.asarray(mask, dtype=bool)
    if spatial_dims is None:
        spatial_dims = min(mask.ndim, 3)
    if not 1 <= spatial_dims <= 3:
        raise ValueError("spatial_dims must be 1, 2 or 3")
    spatial = _spatial_collapse(mask, spatial_dims)
    coords = np.argwhere(spatial)
    if coords.shape[0] == 0:
        return ErrorPattern.NONE
    total_wrong = int(mask.sum())
    if total_wrong == 1:
        return ErrorPattern.SINGLE
    extents = coords.max(axis=0) - coords.min(axis=0) + 1
    spanning = int(np.sum(extents > 1))
    if spanning <= 1:
        # All wrong elements share every coordinate but (at most) one:
        # a row or column of the output.
        return ErrorPattern.LINE
    bbox_volume = int(np.prod(extents))
    fill = coords.shape[0] / bbox_volume
    if spanning == 2:
        return ErrorPattern.SQUARE if fill >= DENSE_FILL_RATIO else ErrorPattern.RANDOM
    return ErrorPattern.CUBIC if fill >= DENSE_FILL_RATIO else ErrorPattern.RANDOM


def classify_outputs(
    golden: np.ndarray,
    observed: np.ndarray,
    spatial_dims: int | None = None,
    tolerance: float = 0.0,
) -> ErrorPattern:
    """Convenience: mask then classify in one call."""
    return classify_mask(wrong_mask(golden, observed, tolerance), spatial_dims)


def max_relative_error(golden: np.ndarray, observed: np.ndarray) -> float:
    """Largest per-element relative error; inf when a zero golden element
    was corrupted or the observation is non-finite."""
    g = np.asarray(golden, dtype=np.float64)
    o = np.asarray(observed, dtype=np.float64)
    if g.shape != o.shape:
        raise ValueError(f"shape mismatch: {g.shape} vs {o.shape}")
    neq = wrong_mask(g, o, 0.0)
    if not neq.any():
        return 0.0
    diff = np.abs(o - g)[neq]
    denom = np.abs(g)[neq]
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        rel = np.where(denom > 0, diff / denom, np.inf)
    rel = np.where(np.isfinite(o[neq]), rel, np.inf)
    return float(rel.max())
