"""Error propagation through execution time.

The paper observes (Section 4.4) that "errors not only tend to
propagate, but also tend to compound" for most benchmarks, while
HotSpot's open-system stencil dissipates them; its related work
(Ashraf et al.) tracks propagation explicitly and finds faults
contaminating "a consistent part of the output" roughly linearly in
time.  This module measures exactly that on our substrate: run a clean
and a corrupted replica in lockstep and record, after every scheduling
quantum, how many output elements differ and how large the worst
relative deviation is.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.benchmarks.base import Benchmark, BenchmarkError
from repro.carolfi.flipscript import FlipScript, SitePolicy
from repro.faults.models import FaultModel
from repro.faults.site import FaultSite
from repro.util.rng import derive_rng

__all__ = ["PropagationPoint", "PropagationProfile", "propagation_profile"]


@dataclass(frozen=True)
class PropagationPoint:
    """Corruption extent one quantum after the previous sample."""

    step: int
    steps_since_injection: int
    wrong_elements: int
    wrong_fraction: float
    max_rel_err: float


@dataclass
class PropagationProfile:
    """The full propagation trajectory of one injected fault."""

    benchmark: str
    site: FaultSite
    fault_model: str
    interrupt_step: int
    total_steps: int
    points: list[PropagationPoint]
    crashed: bool = False
    crash_detail: str = ""

    @property
    def final_wrong(self) -> int:
        return self.points[-1].wrong_elements if self.points else 0

    @property
    def peak_wrong(self) -> int:
        return max((p.wrong_elements for p in self.points), default=0)

    def monotone_growth_fraction(self) -> float:
        """Fraction of consecutive samples where corruption grew or held.

        ~1.0 means compounding propagation (the algebraic codes);
        lower values mean the algorithm attenuates (HotSpot).
        """
        if len(self.points) < 2:
            return 1.0
        grew = sum(
            1
            for a, b in zip(self.points, self.points[1:])
            if b.wrong_elements >= a.wrong_elements
        )
        return grew / (len(self.points) - 1)


def _compare(benchmark: Benchmark, clean, dirty) -> tuple[int, float, float]:
    golden = benchmark.output(clean)
    observed = benchmark.output(dirty)
    with np.errstate(invalid="ignore", over="ignore"):
        g = np.asarray(golden, dtype=np.float64)
        o = np.asarray(observed, dtype=np.float64)
        neq = ~np.isclose(o, g, rtol=0.0, atol=0.0, equal_nan=True)
        wrong = int(neq.sum())
        if wrong == 0:
            return 0, 0.0, 0.0
        diff = np.abs(o - g)[neq]
        denom = np.abs(g)[neq]
        rel = np.where(denom > 0, diff / denom, np.inf)
        rel = np.where(np.isfinite(o[neq]), rel, np.inf)
    return wrong, wrong / g.size, float(rel.max())


def propagation_profile(
    benchmark: Benchmark,
    seed: int,
    model: FaultModel = FaultModel.SINGLE,
    interrupt_step: int | None = None,
    policy: SitePolicy = SitePolicy.FOOTPRINT,
) -> PropagationProfile:
    """Inject one fault and trace its corruption footprint over time.

    The clean and corrupted replicas share inputs bit-for-bit; the
    corrupted replica's output is diffed against the clean one's after
    every quantum, so the curve shows spreading (wrong count rising),
    attenuation (falling), and compounding (max relative error rising).
    """
    rng = derive_rng(seed, "propagation", benchmark.name)
    clean = benchmark.make_state(derive_rng(seed, "propagation", benchmark.name, "in"))
    dirty = copy.deepcopy(clean)
    total = benchmark.num_steps(clean)
    if interrupt_step is None:
        interrupt_step = int(rng.integers(0, total))
    if not 0 <= interrupt_step < total:
        raise ValueError(f"interrupt step {interrupt_step} out of range")

    flip = FlipScript(policy)
    site = FaultSite("none", "none", 0, "none")
    points: list[PropagationPoint] = []
    crashed = False
    crash_detail = ""

    for index in range(total):
        if index == interrupt_step:
            site, _bits = flip.inject(benchmark, dirty, index, model, rng)
        benchmark.step(clean, index)
        try:
            benchmark.step(dirty, index)
        except (BenchmarkError, IndexError, ValueError, KeyError, OverflowError) as exc:
            crashed = True
            crash_detail = f"{type(exc).__name__}: {exc}"
            break
        if index >= interrupt_step:
            wrong, fraction, rel = _compare(benchmark, clean, dirty)
            points.append(
                PropagationPoint(
                    step=index,
                    steps_since_injection=index - interrupt_step,
                    wrong_elements=wrong,
                    wrong_fraction=fraction,
                    max_rel_err=rel,
                )
            )

    return PropagationProfile(
        benchmark=benchmark.name,
        site=site,
        fault_model=FaultModel(model).value,
        interrupt_step=interrupt_step,
        total_steps=total,
        points=points,
        crashed=crashed,
        crash_detail=crash_detail,
    )
