"""Per-resource neutron sensitivity of the device model.

This table is the reproduction's single calibration artifact.  The
paper states the equivalent split cannot be measured without
proprietary hardware detail ("identifying the individual probabilities
of failures in the different logic and memory units is not feasible");
what the beam results depend on is the *relative* structure — large
ECC-protected SRAMs whose single-bit upsets are absorbed, a long tail
of unprotected registers/latches/logic that propagates — and the
overall magnitude, for which total effective cross sections around
1e-7 cm^2 per board put the FIT rates in the paper's 10-200 range.

``occupancy`` is the architectural-vulnerability derating: the
probability that the struck bits currently hold state the running
program will still consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phi.resources import ResourceClass

__all__ = ["DEFAULT_SENSITIVITY", "DeviceSensitivity", "ResourceSensitivity"]


@dataclass(frozen=True)
class ResourceSensitivity:
    """Cross section and occupancy of one resource class."""

    resource: ResourceClass
    cross_section_cm2: float
    occupancy: float

    def __post_init__(self) -> None:
        if self.cross_section_cm2 < 0:
            raise ValueError("cross section must be non-negative")
        if not 0.0 <= self.occupancy <= 1.0:
            raise ValueError("occupancy must be in [0, 1]")

    @property
    def effective_cross_section_cm2(self) -> float:
        return self.cross_section_cm2 * self.occupancy


class DeviceSensitivity:
    """The full per-resource sensitivity table of one board."""

    def __init__(self, entries: list[ResourceSensitivity]):
        if not entries:
            raise ValueError("sensitivity table cannot be empty")
        seen = set()
        for entry in entries:
            if entry.resource in seen:
                raise ValueError(f"duplicate entry for {entry.resource}")
            seen.add(entry.resource)
        self.entries = {entry.resource: entry for entry in entries}

    @property
    def total_cross_section_cm2(self) -> float:
        """Raw strike-collecting area of the modelled resources."""
        return sum(e.cross_section_cm2 for e in self.entries.values())

    @property
    def effective_cross_section_cm2(self) -> float:
        """Occupancy-derated cross section (strikes that touch live state)."""
        return sum(e.effective_cross_section_cm2 for e in self.entries.values())

    def sample_resource(self, rng: np.random.Generator) -> ResourceClass:
        """Draw the struck resource, weighted by raw cross section."""
        resources = list(self.entries)
        weights = np.array(
            [self.entries[r].cross_section_cm2 for r in resources], dtype=np.float64
        )
        return resources[int(rng.choice(len(resources), p=weights / weights.sum()))]

    def occupancy_of(self, resource: ResourceClass) -> float:
        return self.entries[ResourceClass(resource)].occupancy


#: Calibrated default table (cm^2 per board; see module docstring).
DEFAULT_SENSITIVITY = DeviceSensitivity(
    [
        ResourceSensitivity(ResourceClass.VECTOR_REGISTER, 2.2e-8, 0.35),
        ResourceSensitivity(ResourceClass.SCALAR_REGISTER, 6.0e-9, 0.30),
        ResourceSensitivity(ResourceClass.L1_CACHE, 1.6e-8, 0.55),
        ResourceSensitivity(ResourceClass.L2_CACHE, 4.5e-8, 0.50),
        ResourceSensitivity(ResourceClass.FPU_LOGIC, 8.0e-9, 0.25),
        ResourceSensitivity(ResourceClass.PIPELINE_QUEUE, 1.2e-8, 0.30),
        ResourceSensitivity(ResourceClass.DISPATCH_SCHEDULER, 4.0e-9, 0.50),
        ResourceSensitivity(ResourceClass.INTERCONNECT, 5.0e-9, 0.30),
    ]
)
