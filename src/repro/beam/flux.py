"""Beam and natural neutron flux figures.

The paper's experiments ran at LANSCE's ICE House with a flux between
1e5 and 2.5e6 n/(cm^2 s) — six to eight orders of magnitude above the
13 n/(cm^2 h) sea-level reference — accumulating over 500 beam hours,
equivalent to 5e8+ hours (57,000+ years) of natural exposure per board.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import SEA_LEVEL_FLUX_N_CM2_H, acceleration_factor

__all__ = [
    "LANL_ALTITUDE_M",
    "LANSCE_FLUX_MAX",
    "LANSCE_FLUX_MIN",
    "LanceBeam",
    "natural_flux_at_altitude",
]

LANL_ALTITUDE_M = 2231.0
"""Altitude of Los Alamos (where Trinity actually operates), metres."""

#: e-folding length of the atmospheric neutron flux with altitude
#: (fitted so Denver ~1600 m gives ~3.5x and Leadville ~3100 m ~11x,
#: the JESD89A reference ratios).
_FLUX_SCALE_HEIGHT_M = 1284.0

LANSCE_FLUX_MIN = 1.0e5
"""Lower bound of the experimental flux (n / cm^2 / s)."""

LANSCE_FLUX_MAX = 2.5e6
"""Upper bound of the experimental flux (n / cm^2 / s)."""


def natural_flux_at_altitude(altitude_m: float) -> float:
    """Sea-level-referenced natural flux at an altitude (n/cm^2/h).

    "A flux of about 13 neutrons/((cm2) x h) reaches ground at sea
    level, and the flux exponentially increases with altitude"
    (Section 2.1).  Exponential model calibrated to the JESD89A
    reference ratios; the paper's own extrapolation (Section 4.2)
    deliberately assumes sea level, so this is the knob for the "what
    does Trinity, at 2231 m, actually see" question.
    """
    import math

    if altitude_m < 0:
        raise ValueError("altitude must be non-negative")
    return SEA_LEVEL_FLUX_N_CM2_H * math.exp(altitude_m / _FLUX_SCALE_HEIGHT_M)


@dataclass(frozen=True)
class LanceBeam:
    """One beam configuration at the LANSCE ICE House."""

    flux_n_cm2_s: float = 1.0e6
    natural_flux_n_cm2_h: float = SEA_LEVEL_FLUX_N_CM2_H

    def __post_init__(self) -> None:
        if not LANSCE_FLUX_MIN <= self.flux_n_cm2_s <= LANSCE_FLUX_MAX:
            raise ValueError(
                f"flux {self.flux_n_cm2_s:g} outside the LANSCE range "
                f"[{LANSCE_FLUX_MIN:g}, {LANSCE_FLUX_MAX:g}]"
            )

    @property
    def acceleration(self) -> float:
        """Natural hours emulated per beam hour."""
        return acceleration_factor(self.flux_n_cm2_s, self.natural_flux_n_cm2_h) * 3600.0

    def fluence(self, beam_seconds: float) -> float:
        """Delivered fluence (n/cm^2) after ``beam_seconds`` of exposure."""
        if beam_seconds < 0:
            raise ValueError("beam time must be non-negative")
        return self.flux_n_cm2_s * beam_seconds

    def beam_seconds_for_fluence(self, fluence_n_cm2: float) -> float:
        """Beam time needed to deliver a target fluence."""
        if fluence_n_cm2 < 0:
            raise ValueError("fluence must be non-negative")
        return fluence_n_cm2 / self.flux_n_cm2_s
