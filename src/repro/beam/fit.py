"""FIT-rate estimation from beam campaigns (paper Section 4.2).

A strike trial campaign estimates P(outcome | strike); the device's
strike-collecting cross section and the reference neutron flux turn
that into a Failure-In-Time rate:

    FIT = sigma_total [cm^2] x flux [n/cm^2/h] x P(outcome) x 1e9

Confidence intervals use the exact Poisson interval on the observed
outcome count (the paper: >=100 SDC/DUE per benchmark keeps the 95% CI
under 10% of the value).  The module also reports the fluence and beam
time a physical campaign would have needed to observe the same counts,
reproducing the paper's "500 beam hours = 57,000 years" bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.spatial import ErrorPattern
from repro.beam.experiment import BeamCampaignResult
from repro.beam.flux import LanceBeam
from repro.faults.outcome import Outcome
from repro.util.stats import poisson_ci
from repro.util.units import FIT_HOURS, SEA_LEVEL_FLUX_N_CM2_H, natural_hours_covered

__all__ = ["FitEstimate", "FitReport", "estimate_fit", "fit_by_resource"]


@dataclass(frozen=True)
class FitEstimate:
    """One FIT rate with its Poisson confidence interval."""

    fit: float
    lower: float
    upper: float
    events: int

    def relative_half_width(self) -> float:
        if self.fit == 0:
            return float("inf")
        return (self.upper - self.lower) / 2.0 / self.fit


@dataclass(frozen=True)
class FitReport:
    """Everything Figure 2 needs for one benchmark."""

    benchmark: str
    trials: int
    sdc: FitEstimate
    due: FitEstimate
    sdc_by_pattern: dict[str, FitEstimate]
    equivalent_fluence_n_cm2: float
    equivalent_beam_hours: float
    equivalent_natural_hours: float

    @property
    def total_fit(self) -> float:
        return self.sdc.fit + self.due.fit

    def mtbf_hours(self, devices: int = 1) -> float:
        """Mean time between (SDC or DUE) failures for ``devices`` boards."""
        total = self.total_fit
        if total <= 0:
            return float("inf")
        return FIT_HOURS / (total * devices)


def _estimate(
    events: int,
    trials: int,
    cross_section_cm2: float,
    natural_flux: float,
) -> FitEstimate:
    scale = cross_section_cm2 * natural_flux * FIT_HOURS / trials
    ci = poisson_ci(events)
    return FitEstimate(
        fit=events * scale,
        lower=ci.lower * scale,
        upper=ci.upper * scale,
        events=events,
    )


def fit_by_resource(
    result: BeamCampaignResult,
    outcome: Outcome,
    natural_flux_n_cm2_h: float = SEA_LEVEL_FLUX_N_CM2_H,
) -> dict[str, FitEstimate]:
    """FIT contribution of each struck resource class.

    Attributes every counted outcome to the resource its strike landed
    in — the die-level view behind the paper's Section 6.1 argument
    that the unprotected queues/logic/registers, not the ECC-covered
    SRAMs, carry the FIT.
    """
    trials = len(result.trials)
    if trials == 0:
        raise ValueError("empty campaign")
    sigma = result.sensitivity.total_cross_section_cm2
    by_resource: dict[str, int] = {}
    for record in result.trials:
        if record.outcome is outcome:
            by_resource[record.resource] = by_resource.get(record.resource, 0) + 1
    return {
        resource: _estimate(events, trials, sigma, natural_flux_n_cm2_h)
        for resource, events in sorted(
            by_resource.items(), key=lambda kv: kv[1], reverse=True
        )
    }


def estimate_fit(
    result: BeamCampaignResult,
    beam: LanceBeam | None = None,
    natural_flux_n_cm2_h: float = SEA_LEVEL_FLUX_N_CM2_H,
) -> FitReport:
    """Turn a strike-trial campaign into sea-level FIT rates."""
    beam = beam or LanceBeam()
    trials = len(result.trials)
    if trials == 0:
        raise ValueError("empty campaign")
    sigma = result.sensitivity.total_cross_section_cm2

    sdc_records = result.sdc_records()
    sdc = _estimate(len(sdc_records), trials, sigma, natural_flux_n_cm2_h)
    due = _estimate(result.count(Outcome.DUE), trials, sigma, natural_flux_n_cm2_h)

    by_pattern: dict[str, FitEstimate] = {}
    for pattern in ErrorPattern.observable():
        events = sum(
            1 for r in sdc_records if r.sdc_metrics.get("pattern") == pattern.value
        )
        by_pattern[pattern.value] = _estimate(events, trials, sigma, natural_flux_n_cm2_h)

    # A physical campaign observing these trials would have needed
    # `trials` strikes on the modelled area: fluence = trials / sigma.
    fluence = trials / sigma
    return FitReport(
        benchmark=result.benchmark,
        trials=trials,
        sdc=sdc,
        due=due,
        sdc_by_pattern=by_pattern,
        equivalent_fluence_n_cm2=fluence,
        equivalent_beam_hours=beam.beam_seconds_for_fluence(fluence) / 3600.0,
        equivalent_natural_hours=natural_hours_covered(fluence, natural_flux_n_cm2_h),
    )
