"""Neutron beam experiment simulator (paper Section 4).

Replaces the LANSCE beam line with a calibrated strike process over the
machine model:

* :mod:`repro.beam.flux` — LANSCE and natural flux figures;
* :mod:`repro.beam.sensitivity` — the per-resource cross-section table
  (the single calibration artifact of the reproduction, standing in for
  the proprietary silicon sensitivity the paper also cannot know);
* :mod:`repro.beam.experiment` — the event-driven campaign: one
  potential strike per execution, outcome observed at the program
  output exactly like the paper's host-side golden check;
* :mod:`repro.beam.fit` — FIT-rate estimation, confidence intervals,
  and fluence/beam-time bookkeeping;
* :mod:`repro.beam.facility` — a Poisson beam-session mode used to
  validate the single-strike tuning (the paper's <1e-4
  errors/execution criterion).
"""

from repro.beam.experiment import BeamCampaignResult, BeamExperiment, BeamRecord
from repro.beam.facility import BeamSession, SessionStats
from repro.beam.fit import FitEstimate, FitReport, estimate_fit, fit_by_resource
from repro.beam.flux import (
    LANL_ALTITUDE_M,
    LANSCE_FLUX_MAX,
    LANSCE_FLUX_MIN,
    LanceBeam,
    natural_flux_at_altitude,
)
from repro.beam.planner import BeamPlan, PlanEntry, plan_campaign
from repro.beam.sensitivity import DEFAULT_SENSITIVITY, DeviceSensitivity, ResourceSensitivity

__all__ = [
    "BeamCampaignResult",
    "BeamExperiment",
    "BeamRecord",
    "BeamPlan",
    "BeamSession",
    "DEFAULT_SENSITIVITY",
    "DeviceSensitivity",
    "FitEstimate",
    "FitReport",
    "LANL_ALTITUDE_M",
    "LANSCE_FLUX_MAX",
    "LANSCE_FLUX_MIN",
    "LanceBeam",
    "ResourceSensitivity",
    "SessionStats",
    "PlanEntry",
    "estimate_fit",
    "fit_by_resource",
    "natural_flux_at_altitude",
    "plan_campaign",
]
