"""Beam-time planner — the paper's statistics-driven campaign sizing.

The paper sizes its beam campaigns by a statistical criterion: collect
enough SDC and DUE events per benchmark that the 95% confidence
intervals are tight (Section 4.2), within ~500 hours of beam time.
This module plans such a campaign on the model: run a cheap pilot per
benchmark to estimate P(SDC|strike) and P(DUE|strike), then compute how
many strike trials — and how much fluence and beam time at a chosen
LANSCE flux — are needed to reach a target event count for *both*
outcome classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.beam.experiment import BeamExperiment
from repro.beam.flux import LanceBeam
from repro.beam.sensitivity import DEFAULT_SENSITIVITY, DeviceSensitivity
from repro.faults.outcome import Outcome
from repro.util.stats import required_events_for_relative_ci
from repro.util.tables import format_table
from repro.util.units import natural_hours_covered

__all__ = ["BeamPlan", "PlanEntry", "plan_campaign"]


@dataclass(frozen=True)
class PlanEntry:
    """Campaign sizing for one benchmark."""

    benchmark: str
    pilot_trials: int
    p_sdc: float
    p_due: float
    target_events: int
    required_trials: int
    beam_hours: float
    natural_years: float


@dataclass
class BeamPlan:
    """The full schedule across benchmarks."""

    entries: list[PlanEntry]
    beam: LanceBeam

    @property
    def total_beam_hours(self) -> float:
        return sum(e.beam_hours for e in self.entries)

    def render(self) -> str:
        rows = [
            [
                e.benchmark,
                e.p_sdc,
                e.p_due,
                e.target_events,
                e.required_trials,
                e.beam_hours,
                e.natural_years,
            ]
            for e in self.entries
        ]
        table = format_table(
            [
                "benchmark",
                "P(SDC|strike)",
                "P(DUE|strike)",
                "target events",
                "trials",
                "beam hours",
                "natural years",
            ],
            rows,
            title=f"beam campaign plan at {self.beam.flux_n_cm2_s:.1e} n/cm2/s",
            floatfmt=".3f",
        )
        return (
            table
            + f"\ntotal beam time: {self.total_beam_hours:.1f} hours "
            "(paper: >500 hours for its physical campaign)"
        )


def plan_campaign(
    benchmarks: tuple[str, ...],
    seed: int = 2017,
    pilot_trials: int = 200,
    relative_ci: float = 0.10,
    beam: LanceBeam | None = None,
    sensitivity: DeviceSensitivity = DEFAULT_SENSITIVITY,
    max_trials: int = 10_000_000,
) -> BeamPlan:
    """Size the campaign each benchmark needs for the paper's CI target.

    The trial count is driven by the *rarer* of the two outcome classes
    (both SDC and DUE intervals must meet the target); benchmarks whose
    pilot shows no events of a class are capped at ``max_trials``.
    """
    if pilot_trials < 10:
        raise ValueError("pilot needs at least 10 trials")
    beam = beam or LanceBeam()
    target = required_events_for_relative_ci(relative_ci)
    sigma = sensitivity.total_cross_section_cm2

    entries = []
    for name in benchmarks:
        pilot = BeamExperiment(name, seed=seed, sensitivity=sensitivity).run_campaign(
            pilot_trials
        )
        p_sdc = pilot.probability(Outcome.SDC)
        p_due = pilot.probability(Outcome.DUE)
        rarest = min(p for p in (p_sdc, p_due) if p > 0) if (p_sdc or p_due) else 0.0
        if rarest <= 0:
            required = max_trials
        else:
            required = min(max_trials, int(round(target / rarest)))
        fluence = required / sigma
        entries.append(
            PlanEntry(
                benchmark=name,
                pilot_trials=pilot_trials,
                p_sdc=p_sdc,
                p_due=p_due,
                target_events=target,
                required_trials=required,
                beam_hours=beam.beam_seconds_for_fluence(fluence) / 3600.0,
                natural_years=natural_hours_covered(fluence) / 8766.0,
            )
        )
    return BeamPlan(entries=entries, beam=beam)
