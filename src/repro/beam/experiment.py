"""Event-driven beam campaign.

Each trial simulates the consequences of one potential neutron strike:
the strike time is uniform over the execution, the struck resource is
drawn by cross section, the occupancy gate decides whether it touched
live state, and the machine model corrupts the running benchmark
accordingly.  The run then completes (or crashes) and the host-side
check classifies the output against the golden copy — the same
observability the paper has at the beam ("faults are observed only at
the code output").

This is exact importance sampling of the single-strike regime the
paper tunes its beam for (<1e-4 errors/execution makes double events
negligible), so campaign outcome frequencies divide directly into FIT
rates via the cross-section bookkeeping in :mod:`repro.beam.fit`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.spatial import classify_mask, max_relative_error, wrong_mask
from repro.benchmarks.base import Benchmark, BenchmarkHang
from repro.benchmarks.registry import create
from repro.beam.sensitivity import DEFAULT_SENSITIVITY, DeviceSensitivity
from repro.faults.outcome import DueKind, Outcome
from repro.phi.config import KNC_3120A, PhiConfig
from repro.phi.machine import MachineCheckError, SchedulerWedge, XeonPhiMachine
from repro.util.jsonlog import JsonlLog
from repro.util.rng import derive_rng

__all__ = ["BeamCampaignResult", "BeamExperiment", "BeamRecord"]

_CRASH_EXCEPTIONS = (
    IndexError,
    ValueError,
    KeyError,
    OverflowError,
    ZeroDivisionError,
    FloatingPointError,
    RuntimeError,
)


@dataclass(frozen=True)
class BeamRecord:
    """One strike trial and its observed outcome."""

    benchmark: str
    trial: int
    resource: str
    effect: str
    strike_step: int
    total_steps: int
    occupied: bool
    outcome: Outcome
    due_kind: DueKind | None = None
    due_detail: str = ""
    sdc_metrics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "trial": self.trial,
            "resource": self.resource,
            "effect": self.effect,
            "strike_step": self.strike_step,
            "total_steps": self.total_steps,
            "occupied": self.occupied,
            "outcome": self.outcome.value,
            "due_kind": self.due_kind.value if self.due_kind else None,
            "due_detail": self.due_detail,
            "sdc_metrics": dict(self.sdc_metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BeamRecord":
        return cls(
            benchmark=data["benchmark"],
            trial=int(data["trial"]),
            resource=data["resource"],
            effect=data["effect"],
            strike_step=int(data["strike_step"]),
            total_steps=int(data["total_steps"]),
            occupied=bool(data["occupied"]),
            outcome=Outcome(data["outcome"]),
            due_kind=DueKind(data["due_kind"]) if data.get("due_kind") else None,
            due_detail=data.get("due_detail", ""),
            sdc_metrics=dict(data.get("sdc_metrics", {})),
        )


@dataclass
class BeamCampaignResult:
    """All strike trials of one benchmark's beam campaign."""

    benchmark: str
    trials: list[BeamRecord]
    sensitivity: DeviceSensitivity

    def __len__(self) -> int:
        return len(self.trials)

    def count(self, outcome: Outcome) -> int:
        return sum(1 for t in self.trials if t.outcome is outcome)

    def sdc_records(self) -> list[BeamRecord]:
        return [t for t in self.trials if t.outcome is Outcome.SDC]

    def probability(self, outcome: Outcome) -> float:
        if not self.trials:
            raise ValueError("empty campaign")
        return self.count(outcome) / len(self.trials)


class BeamExperiment:
    """Runs strike trials for one benchmark on the machine model."""

    def __init__(
        self,
        benchmark: Benchmark | str,
        seed: int,
        sensitivity: DeviceSensitivity = DEFAULT_SENSITIVITY,
        config: PhiConfig = KNC_3120A,
        watchdog_factor: float = 10.0,
        benchmark_params: dict[str, Any] | None = None,
    ):
        if isinstance(benchmark, str):
            benchmark = create(benchmark, **(benchmark_params or {}))
        self.benchmark = benchmark
        self.seed = int(seed)
        self.sensitivity = sensitivity
        self.machine = XeonPhiMachine(config)
        self.watchdog_factor = float(watchdog_factor)
        state = self._fresh_state()
        self.total_steps = benchmark.num_steps(state)
        start = time.perf_counter()
        self.golden = benchmark.run(state)
        self.golden_runtime = max(time.perf_counter() - start, 1e-4)

    def _fresh_state(self) -> Any:
        return self.benchmark.make_state(
            derive_rng(self.seed, "beam", self.benchmark.name, "input")
        )

    def run_trial(self, trial: int) -> BeamRecord:
        """Simulate one potential strike and classify its outcome."""
        bench = self.benchmark
        rng = derive_rng(self.seed, "beam", bench.name, "trial", str(trial))
        strike_step = int(rng.integers(0, self.total_steps))
        resource = self.sensitivity.sample_resource(rng)
        occupied = rng.random() < self.sensitivity.occupancy_of(resource)

        if not occupied:
            return BeamRecord(
                benchmark=bench.name,
                trial=trial,
                resource=resource.value,
                effect="dead_state",
                strike_step=strike_step,
                total_steps=self.total_steps,
                occupied=False,
                outcome=Outcome.MASKED,
            )

        state = self._fresh_state()
        deadline = time.perf_counter() + self.watchdog_factor * self.golden_runtime + 1.0
        effect = "unapplied"
        outcome = Outcome.MASKED
        due_kind: DueKind | None = None
        due_detail = ""
        sdc_metrics: dict[str, Any] = {}
        try:
            for index in range(self.total_steps):
                if index == strike_step:
                    result = self.machine.apply_strike(bench, state, index, resource, rng)
                    effect = result.effect
                bench.step(state, index)
                if time.perf_counter() > deadline:
                    raise BenchmarkHang("beam watchdog expired")
            # Beam comparison is bitwise: "The SDC FIT includes all
            # executions with any bit mismatch" (Section 4.2) — unlike
            # CAROL-FI's printed-output diff.
            observed = bench.output(state)
        except MachineCheckError as exc:
            outcome = Outcome.DUE
            due_kind = DueKind.MCA
            due_detail = str(exc)
            effect = "machine_check"
        except SchedulerWedge as exc:
            outcome = Outcome.DUE
            due_kind = DueKind.TIMEOUT
            due_detail = str(exc)
            effect = "scheduler_wedge"
        except BenchmarkHang as exc:
            outcome = Outcome.DUE
            due_kind = DueKind.TIMEOUT
            due_detail = str(exc)
        except _CRASH_EXCEPTIONS as exc:
            outcome = Outcome.DUE
            due_kind = DueKind.CRASH
            due_detail = f"{type(exc).__name__}: {exc}"
        else:
            mask = wrong_mask(self.golden, observed)
            if mask.any():
                outcome = Outcome.SDC
                pattern = classify_mask(mask, bench.output_dims)
                sdc_metrics = {
                    "wrong_elements": int(mask.sum()),
                    "wrong_fraction": float(mask.mean()),
                    "max_rel_err": max_relative_error(self.golden, observed),
                    "pattern": pattern.value,
                }
        return BeamRecord(
            benchmark=bench.name,
            trial=trial,
            resource=resource.value,
            effect=effect,
            strike_step=strike_step,
            total_steps=self.total_steps,
            occupied=True,
            outcome=outcome,
            due_kind=due_kind,
            due_detail=due_detail,
            sdc_metrics=sdc_metrics,
        )

    def run_campaign(
        self, trials: int, log_path: str | Path | None = None
    ) -> BeamCampaignResult:
        """Run ``trials`` strike trials (deterministic per seed)."""
        if trials < 1:
            raise ValueError("trials must be positive")
        log = JsonlLog(log_path) if log_path is not None else None
        records = []
        for trial in range(trials):
            record = self.run_trial(trial)
            records.append(record)
            if log is not None:
                log.append(record.to_dict())
        return BeamCampaignResult(
            benchmark=self.benchmark.name, trials=records, sensitivity=self.sensitivity
        )
