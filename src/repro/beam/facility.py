"""Poisson beam-session mode.

The event-driven campaign (:mod:`repro.beam.experiment`) assumes the
single-strike regime.  This module simulates the physical session the
paper actually ran: executions back to back under a Poisson strike
process at a chosen flux, which lets one *verify* the tuning criterion
("experiments were tuned to guarantee observed output error rates
lower than 1e-4 errors/execution, ensuring that the probability of
more than one neutron generating a failure in a single benchmark
execution remains negligible").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.beam.flux import LanceBeam
from repro.beam.sensitivity import DEFAULT_SENSITIVITY, DeviceSensitivity

__all__ = ["BeamSession", "SessionStats"]


@dataclass(frozen=True)
class SessionStats:
    """Aggregate statistics of one simulated beam session."""

    executions: int
    strikes: int
    multi_strike_executions: int
    beam_seconds: float
    fluence_n_cm2: float

    @property
    def strikes_per_execution(self) -> float:
        return self.strikes / self.executions if self.executions else 0.0

    @property
    def multi_strike_fraction(self) -> float:
        return (
            self.multi_strike_executions / self.executions if self.executions else 0.0
        )


class BeamSession:
    """Simulates executions under a Poisson strike arrival process."""

    def __init__(
        self,
        beam: LanceBeam,
        sensitivity: DeviceSensitivity = DEFAULT_SENSITIVITY,
        execution_seconds: float = 1.0,
    ):
        if execution_seconds <= 0:
            raise ValueError("execution time must be positive")
        self.beam = beam
        self.sensitivity = sensitivity
        self.execution_seconds = float(execution_seconds)

    @property
    def strikes_per_execution_mean(self) -> float:
        """Expected strikes landing in the modelled area per execution."""
        return (
            self.sensitivity.total_cross_section_cm2
            * self.beam.flux_n_cm2_s
            * self.execution_seconds
        )

    def strike_counts(self, executions: int, rng: np.random.Generator) -> np.ndarray:
        """Number of strikes in each of ``executions`` runs."""
        if executions < 1:
            raise ValueError("executions must be positive")
        return rng.poisson(self.strikes_per_execution_mean, size=executions)

    def simulate(self, executions: int, rng: np.random.Generator) -> SessionStats:
        """Run the arrival process (no program execution) and summarise."""
        counts = self.strike_counts(executions, rng)
        beam_seconds = executions * self.execution_seconds
        return SessionStats(
            executions=executions,
            strikes=int(counts.sum()),
            multi_strike_executions=int((counts >= 2).sum()),
            beam_seconds=beam_seconds,
            fluence_n_cm2=self.beam.fluence(beam_seconds),
        )

    def max_flux_for_error_rate(
        self, errors_per_execution: float, visible_probability: float
    ) -> float:
        """Flux keeping observed errors/execution below a target.

        ``visible_probability`` is P(SDC or DUE | strike) for the
        benchmark, from a strike campaign.  This reproduces the paper's
        tuning: pick the flux so error rate <= 1e-4 per execution.
        """
        if not 0 < visible_probability <= 1:
            raise ValueError("visible_probability must be in (0, 1]")
        if errors_per_execution <= 0:
            raise ValueError("target error rate must be positive")
        sigma = self.sensitivity.total_cross_section_cm2
        return errors_per_execution / (
            sigma * visible_probability * self.execution_seconds
        )
