"""Statistics used throughout the reliability analysis.

The paper reports Poisson-counted error rates with 95% confidence
intervals below 10% of the value (beam, Section 4.2) and binomial
proportions with 1.96% worst-case error bars (injection, Section 6).
This module provides exactly those estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = [
    "CountEstimate",
    "anytime_proportion_ci",
    "poisson_ci",
    "proportion_ci",
    "required_events_for_relative_ci",
    "two_proportion_z",
    "wilson_ci",
    "half_width_for_proportion",
]


@dataclass(frozen=True)
class CountEstimate:
    """A rate estimate with a two-sided confidence interval."""

    value: float
    lower: float
    upper: float
    confidence: float = 0.95

    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the point estimate."""
        if self.value == 0:
            return math.inf
        return (self.upper - self.lower) / 2.0 / self.value


def poisson_ci(events: int, confidence: float = 0.95) -> CountEstimate:
    """Exact (Garwood) CI for a Poisson count.

    Returns the interval on the *count*; divide by exposure to get a
    rate interval, which is how the beam FIT CIs are built.
    """
    if events < 0:
        raise ValueError("events must be non-negative")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    lower = 0.0 if events == 0 else sps.chi2.ppf(alpha / 2, 2 * events) / 2.0
    upper = sps.chi2.ppf(1 - alpha / 2, 2 * (events + 1)) / 2.0
    return CountEstimate(float(events), float(lower), float(upper), confidence)


def wilson_ci(successes: int, trials: int, confidence: float = 0.95) -> CountEstimate:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    # At p = 0 (or 1) the bound equals p exactly; rounding can leave it a
    # few ulp past p, so clamp the interval to always contain the estimate.
    lower = min(max(0.0, center - half), p)
    upper = max(min(1.0, center + half), p)
    return CountEstimate(p, lower, upper, confidence)


def proportion_ci(successes: int, trials: int, confidence: float = 0.95) -> CountEstimate:
    """Normal-approximation (Wald) CI for a proportion.

    This is the estimator behind the paper's "worst case statistical
    error bars at 95% confidence level ... at most 1.96%" claim for
    10,000 injections (half-width = 1.96 * sqrt(p(1-p)/n) <= 0.98%,
    i.e. a 1.96% full width at p = 0.5).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    p = successes / trials
    half = z * math.sqrt(p * (1 - p) / trials)
    return CountEstimate(p, max(0.0, p - half), min(1.0, p + half), confidence)


def anytime_proportion_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> CountEstimate:
    """Anytime-valid confidence interval for a binomial proportion.

    A Wilson interval is only valid at a *pre-registered* sample size;
    checking it after every merged shard (as the campaign convergence
    monitor does) inflates the error rate.  This interval uses the
    law-of-the-iterated-logarithm "stitched" boundary for bounded
    variables (Howard et al., 2021, eq. (11) specialised to the [0, 1]
    case), which holds *simultaneously at every sample size*: a
    campaign may peek after every record and stop the first time the
    interval is narrow enough without biasing the coverage guarantee.

    The price of anytime validity is width: the half-width carries an
    extra ``log log n`` factor over the fixed-n interval, so early
    stopping on this interval is conservative, never optimistic.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    n = float(trials)
    p = successes / trials
    # Stitched LIL boundary for 1/2-sub-Gaussian increments (any
    # variable bounded in [0, 1]); valid uniformly over n >= 1.
    half = 1.7 * math.sqrt((math.log(math.log(2 * max(n, 2.0))) + 0.72 * math.log(5.2 / alpha)) / n)
    return CountEstimate(p, max(0.0, p - half), min(1.0, p + half), confidence)


def two_proportion_z(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> tuple[float, float]:
    """Pooled two-proportion z-test: ``(z, two_sided_p_value)``.

    The cross-shard drift detector's primitive: is shard A's outcome
    rate compatible with the rest of the campaign's?  Under H0 (both
    samples share one proportion) the pooled statistic is ~N(0, 1).
    Degenerate pools (all successes or none, or an empty sample) carry
    no evidence either way and return ``(0.0, 1.0)``.
    """
    for successes, trials in ((successes_a, trials_a), (successes_b, trials_b)):
        if trials < 0 or not 0 <= successes <= max(trials, 0):
            raise ValueError("successes must be within [0, trials]")
    if trials_a == 0 or trials_b == 0:
        return 0.0, 1.0
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    if pooled <= 0.0 or pooled >= 1.0:
        return 0.0, 1.0
    se = math.sqrt(pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b))
    z = (successes_a / trials_a - successes_b / trials_b) / se
    return float(z), float(2.0 * sps.norm.sf(abs(z)))


def half_width_for_proportion(trials: int, p: float = 0.5, confidence: float = 0.95) -> float:
    """Worst-case (or given-p) Wald half width for ``trials`` samples."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    return float(z * math.sqrt(p * (1 - p) / trials))


def required_events_for_relative_ci(
    relative_half_width: float, confidence: float = 0.95
) -> int:
    """Poisson events needed so the CI half-width <= fraction of the mean.

    Normal approximation: n >= (z / w)^2, so a 10% relative CI at 95%
    confidence needs ~385 events.  (The paper quotes "more than 100
    SDC/DUE for each benchmark" for its sub-10% intervals — its actual
    per-benchmark counts are in the public logs and exceed this
    threshold; 100 events alone give ~±20%.)
    """
    if relative_half_width <= 0:
        raise ValueError("relative_half_width must be positive")
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    return int(math.ceil((z / relative_half_width) ** 2))


def mean_and_sem(values: np.ndarray) -> tuple[float, float]:
    """Mean and standard error of the mean of a 1-D sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1) / math.sqrt(arr.size))
