"""Reliability unit conversions (FIT, MTBF, fluence, flux scaling).

Conventions follow JEDEC JESD89A as used in the paper:

* FIT — Failures In Time, failures per 1e9 device-hours.
* Sea-level reference neutron flux (>10 MeV): 13 n/(cm^2 * h).
* Accelerated beam results scale to natural rates by the ratio of the
  beam flux to the natural flux.
"""

from __future__ import annotations

__all__ = [
    "FIT_HOURS",
    "SEA_LEVEL_FLUX_N_CM2_H",
    "acceleration_factor",
    "cross_section_from_counts",
    "fit_from_cross_section",
    "fit_to_mtbf_hours",
    "mtbf_hours_to_fit",
    "natural_hours_covered",
]

FIT_HOURS = 1e9
"""Device-hours in one FIT unit."""

SEA_LEVEL_FLUX_N_CM2_H = 13.0
"""JEDEC reference atmospheric neutron flux at sea level (n / cm^2 / h)."""


def cross_section_from_counts(events: int | float, fluence_n_cm2: float) -> float:
    """Cross section (cm^2) = observed events / particle fluence (n/cm^2)."""
    if fluence_n_cm2 <= 0:
        raise ValueError("fluence must be positive")
    if events < 0:
        raise ValueError("events must be non-negative")
    return float(events) / float(fluence_n_cm2)


def fit_from_cross_section(
    cross_section_cm2: float, natural_flux_n_cm2_h: float = SEA_LEVEL_FLUX_N_CM2_H
) -> float:
    """FIT rate implied by a cross section under a natural flux.

    failures/hour = sigma * flux; FIT = failures/hour * 1e9.
    """
    if cross_section_cm2 < 0:
        raise ValueError("cross section must be non-negative")
    if natural_flux_n_cm2_h <= 0:
        raise ValueError("flux must be positive")
    return cross_section_cm2 * natural_flux_n_cm2_h * FIT_HOURS


def fit_to_mtbf_hours(fit: float, devices: int = 1) -> float:
    """Mean time between failures (hours) of ``devices`` boards at ``fit`` each."""
    if fit <= 0:
        raise ValueError("FIT must be positive")
    if devices <= 0:
        raise ValueError("devices must be positive")
    return FIT_HOURS / (fit * devices)


def mtbf_hours_to_fit(mtbf_hours: float, devices: int = 1) -> float:
    """Inverse of :func:`fit_to_mtbf_hours`."""
    if mtbf_hours <= 0:
        raise ValueError("MTBF must be positive")
    if devices <= 0:
        raise ValueError("devices must be positive")
    return FIT_HOURS / (mtbf_hours * devices)


def acceleration_factor(
    beam_flux_n_cm2_s: float, natural_flux_n_cm2_h: float = SEA_LEVEL_FLUX_N_CM2_H
) -> float:
    """How many natural hours one beam second emulates.

    LANSCE runs at 1e5 - 2.5e6 n/cm^2/s, i.e. 6-8 orders of magnitude
    above the 13 n/cm^2/h natural flux, exactly the paper's framing.
    """
    if beam_flux_n_cm2_s <= 0:
        raise ValueError("beam flux must be positive")
    if natural_flux_n_cm2_h <= 0:
        raise ValueError("natural flux must be positive")
    return beam_flux_n_cm2_s / (natural_flux_n_cm2_h / 3600.0) / 3600.0


def natural_hours_covered(
    fluence_n_cm2: float, natural_flux_n_cm2_h: float = SEA_LEVEL_FLUX_N_CM2_H
) -> float:
    """Natural-exposure hours equivalent to a delivered beam fluence."""
    if fluence_n_cm2 < 0:
        raise ValueError("fluence must be non-negative")
    if natural_flux_n_cm2_h <= 0:
        raise ValueError("flux must be positive")
    return fluence_n_cm2 / natural_flux_n_cm2_h
