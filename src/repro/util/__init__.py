"""Shared utilities for the Xeon Phi reliability reproduction.

The subpackage deliberately has no dependencies on the rest of the
library so every other subsystem (machine model, injectors, analysis)
can build on it without cycles.
"""

from repro.util.bits import (
    bit_width,
    flip_bit_inplace,
    flip_bits_inplace,
    get_bit,
    randomize_element_inplace,
    zero_element_inplace,
)
from repro.util.rng import derive_rng, spawn_rngs
from repro.util.stats import (
    poisson_ci,
    proportion_ci,
    required_events_for_relative_ci,
    wilson_ci,
)
from repro.util.units import (
    FIT_HOURS,
    SEA_LEVEL_FLUX_N_CM2_H,
    fit_from_cross_section,
    fit_to_mtbf_hours,
    mtbf_hours_to_fit,
    natural_hours_covered,
)

__all__ = [
    "FIT_HOURS",
    "SEA_LEVEL_FLUX_N_CM2_H",
    "bit_width",
    "derive_rng",
    "fit_from_cross_section",
    "fit_to_mtbf_hours",
    "flip_bit_inplace",
    "flip_bits_inplace",
    "get_bit",
    "mtbf_hours_to_fit",
    "natural_hours_covered",
    "poisson_ci",
    "proportion_ci",
    "randomize_element_inplace",
    "required_events_for_relative_ci",
    "spawn_rngs",
    "wilson_ci",
    "zero_element_inplace",
]
