"""Plain-text table rendering for the experiment harness.

The benchmark harness prints paper-vs-measured rows for every figure
and table; this module renders them without any third-party formatting
dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text.rstrip("%x"))
    except ValueError:
        return False
    return True


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render an aligned ASCII table.

    Cells that render as numbers are right-aligned, text cells
    left-aligned; floats use ``floatfmt``.
    """
    str_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric_cols = []
    for col in range(len(headers)):
        cells = [row[col] for row in str_rows if row[col] not in ("", "-")]
        numeric_cols.append(bool(cells) and all(_is_number(c) for c in cells))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric_cols[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, floatfmt: str = ".2f"
) -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = " ".join(
        f"({format(float(x), 'g')}, {format(float(y), floatfmt)})" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
