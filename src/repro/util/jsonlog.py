"""Structured JSONL campaign logs.

CAROL-FI's Supervisor logs one record per injection (variable name,
frame, fault model, time window, outcome, ...); the beam driver logs one
record per observed error.  Both use this append-only JSON-lines store
so third-party analysis can re-parse raw campaign data, mirroring the
paper's public log repository.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["JsonlLog", "dump_records", "load_records"]


def _sanitize(value: Any) -> Any:
    """Convert NumPy scalars/arrays to JSON-serialisable builtins."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


class JsonlLog:
    """Append-only JSONL file of dict records."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: dict[str, Any]) -> None:
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(_sanitize(record), sort_keys=True) + "\n")

    def extend(self, records: Iterable[dict[str, Any]]) -> None:
        with self.path.open("a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(_sanitize(record), sort_keys=True) + "\n")

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return iter(())
        return iter(load_records(self.path))

    def __len__(self) -> int:
        return sum(1 for _ in self)


def dump_records(path: str | Path, records: Iterable[dict[str, Any]]) -> None:
    """Write (overwrite) ``records`` to ``path`` as JSONL."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(_sanitize(record), sort_keys=True) + "\n")


def load_records(path: str | Path) -> list[dict[str, Any]]:
    """Read all JSONL records from ``path``."""
    out: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
