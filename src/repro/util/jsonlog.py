"""Structured JSONL campaign logs.

CAROL-FI's Supervisor logs one record per injection (variable name,
frame, fault model, time window, outcome, ...); the beam driver logs one
record per observed error.  Both use this append-only JSON-lines store
so third-party analysis can re-parse raw campaign data, mirroring the
paper's public log repository.

The store doubles as the campaign engine's shard checkpoint format, so
it is written to survive a killed worker: files are opened in append
mode with explicit UTF-8, every record is flushed to the OS as soon as
it is written, and the reader ignores a partial trailing line (the only
damage a kill mid-write can cause to an append-only file).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import IO, Any

import numpy as np

__all__ = ["JsonlLog", "dump_records", "load_records", "load_records_tolerant"]


def _sanitize(value: Any) -> Any:
    """Convert NumPy scalars/arrays to JSON-serialisable builtins."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


class JsonlLog:
    """Append-only JSONL file of dict records.

    The underlying file is kept open in append mode and flushed after
    every record, so a record is durable the moment :meth:`append`
    returns even if the writing process is later killed.  Usable as a
    context manager; an unclosed log loses nothing because of the
    per-record flush.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = None

    def _file(self) -> IO[str]:
        if self._fh is None or self._fh.closed:
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    def append(self, record: dict[str, Any]) -> None:
        fh = self._file()
        fh.write(json.dumps(_sanitize(record), sort_keys=True) + "\n")
        fh.flush()

    def extend(self, records: Iterable[dict[str, Any]]) -> None:
        for record in records:
            self.append(record)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "JsonlLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return iter(())
        return iter(load_records(self.path))

    def __len__(self) -> int:
        return sum(1 for _ in self)


def dump_records(path: str | Path, records: Iterable[dict[str, Any]]) -> None:
    """Write (overwrite) ``records`` to ``path`` as JSONL."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(_sanitize(record), sort_keys=True) + "\n")


def load_records(path: str | Path, strict: bool = False) -> list[dict[str, Any]]:
    """Read all JSONL records from ``path``.

    A writer killed mid-append leaves at most one partial final line;
    that line is silently dropped so checkpoints survive hard kills.
    Corruption anywhere *before* the final line — or any bad line when
    ``strict`` is true — still raises ``json.JSONDecodeError``.
    """
    with Path(path).open("r", encoding="utf-8") as fh:
        lines = [line.strip() for line in fh]
    content = [(i, line) for i, line in enumerate(lines) if line]
    out: list[dict[str, Any]] = []
    for pos, (_, line) in enumerate(content):
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or pos != len(content) - 1:
                raise
            break  # partial trailing line from a killed writer
    return out


def load_records_tolerant(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Read JSONL records, skipping corrupt lines but *counting* them.

    Failure-event logs and other diagnostics are appended across worker
    deaths and hard kills, so interior damage is possible and must not
    make the whole log unreadable.  Unlike :func:`load_records` this
    reader never raises on bad content: it returns every parseable
    record plus the number of non-empty lines it had to skip, so callers
    can surface "N corrupt lines" instead of silently dropping data.
    A missing file reads as ``([], 0)``.
    """
    target = Path(path)
    if not target.exists():
        return [], 0
    out: list[dict[str, Any]] = []
    skipped = 0
    with target.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict):
                out.append(record)
            else:
                skipped += 1
    return out, skipped
