"""Deterministic named random streams.

Every stochastic component (beam strike process, Flip-script variable
selection, benchmark input generation, ...) derives its own independent
``numpy`` generator from a campaign seed plus a stable string path, so
campaigns are reproducible bit-for-bit and adding a consumer never
perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def _name_entropy(name: str | int) -> int:
    """Stable 128-bit entropy for one path component.

    Integer components hash as their decimal string, so
    ``derive_rng(7, "run", 5)`` and ``derive_rng(7, "run", "5")`` name
    the same stream — shard and run indices can be passed uncast.
    """
    digest = hashlib.sha256(str(name).encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "little")


def derive_rng(seed: int, *names: str | int) -> np.random.Generator:
    """Return a generator keyed by ``seed`` and a stable path of names.

    ``derive_rng(7, "beam", "dgemm")`` always yields the same stream, and
    streams with different paths are statistically independent (distinct
    SeedSequence spawn keys).
    """
    entropy = [int(seed)] + [_name_entropy(n) for n in names]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed: int, count: int, *names: str | int) -> list[np.random.Generator]:
    """Return ``count`` independent generators under one named path."""
    if count < 0:
        raise ValueError("count must be non-negative")
    entropy = [int(seed)] + [_name_entropy(n) for n in names]
    children = np.random.SeedSequence(entropy).spawn(count)
    return [np.random.default_rng(child) for child in children]
