"""Bit-level corruption primitives on NumPy backing stores.

All injectable benchmark and machine state in this library is held in
NumPy arrays (0-d arrays for scalars), so every fault model reduces to
an in-place bit operation on one flat element of an array.  Bit indices
are counted little-endian across the element's bytes: bit 0 is the
least-significant bit of byte 0, bit ``8 * itemsize - 1`` the MSB of the
last byte.  For little-endian machines (the only ones we support) this
matches the numeric bit significance of integer dtypes, which is what
the paper's fault models assume.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "bit_width",
    "flip_bit_inplace",
    "flip_bits_inplace",
    "get_bit",
    "randomize_element_inplace",
    "zero_element_inplace",
]

if sys.byteorder != "little":  # pragma: no cover - exotic platforms
    raise ImportError("repro.util.bits assumes a little-endian host")


def bit_width(dtype: np.dtype | type) -> int:
    """Number of bits in one element of ``dtype``."""
    return 8 * np.dtype(dtype).itemsize


def _byte_matrix(arr: np.ndarray) -> np.ndarray:
    """A (n_elements, itemsize) uint8 view of ``arr``'s buffer.

    Requires a C-contiguous array; callers that own non-contiguous state
    must densify it first (injectable state is contiguous by library
    convention, enforced here).
    """
    if not isinstance(arr, np.ndarray):
        raise TypeError(f"expected ndarray, got {type(arr).__name__}")
    if arr.dtype.hasobject:
        raise TypeError("cannot corrupt object arrays")
    if not arr.flags.c_contiguous:
        raise ValueError("injectable arrays must be C-contiguous")
    flat = arr.reshape(-1)
    return flat.view(np.uint8).reshape(flat.size, arr.dtype.itemsize)


def _check_index(arr: np.ndarray, flat_index: int) -> int:
    size = arr.size
    if size == 0:
        raise IndexError("cannot corrupt an empty array")
    index = int(flat_index)
    if not 0 <= index < size:
        raise IndexError(f"flat index {index} out of range for size {size}")
    return index


def get_bit(arr: np.ndarray, flat_index: int, bit: int) -> int:
    """Read bit ``bit`` of element ``flat_index`` (0 or 1)."""
    bytes_ = _byte_matrix(arr)
    index = _check_index(arr, flat_index)
    byte_idx, bit_off = divmod(int(bit), 8)
    if not 0 <= byte_idx < bytes_.shape[1]:
        raise IndexError(f"bit {bit} out of range for itemsize {arr.dtype.itemsize}")
    return int(bytes_[index, byte_idx] >> bit_off) & 1


def flip_bit_inplace(arr: np.ndarray, flat_index: int, bit: int) -> None:
    """Flip a single bit of one element in place (the Single model)."""
    bytes_ = _byte_matrix(arr)
    index = _check_index(arr, flat_index)
    byte_idx, bit_off = divmod(int(bit), 8)
    if not 0 <= byte_idx < bytes_.shape[1]:
        raise IndexError(f"bit {bit} out of range for itemsize {arr.dtype.itemsize}")
    bytes_[index, byte_idx] ^= np.uint8(1 << bit_off)


def flip_bits_inplace(arr: np.ndarray, flat_index: int, bits: list[int] | tuple[int, ...]) -> None:
    """Flip several distinct bits of one element in place."""
    if len(set(int(b) for b in bits)) != len(bits):
        raise ValueError("bit positions must be distinct")
    for bit in bits:
        flip_bit_inplace(arr, flat_index, bit)


def randomize_element_inplace(arr: np.ndarray, flat_index: int, rng: np.random.Generator) -> None:
    """Overwrite every bit of one element with random bits (Random model)."""
    bytes_ = _byte_matrix(arr)
    index = _check_index(arr, flat_index)
    bytes_[index, :] = rng.integers(0, 256, size=bytes_.shape[1], dtype=np.uint8)


def zero_element_inplace(arr: np.ndarray, flat_index: int) -> None:
    """Set every bit of one element to zero (Zero model)."""
    bytes_ = _byte_matrix(arr)
    index = _check_index(arr, flat_index)
    bytes_[index, :] = 0
