"""Figure 2 — benchmark FIT rates and spatial error distribution.

Beam campaign per benchmark; SDC FIT partitioned into the five output
patterns, plus the DUE FIT, all at sea level.  Also checks the
Section 4.3 claim that fewer than 10% of corrupted executions contain a
single wrong element.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.spatial import ErrorPattern
from repro.beam.fit import FitReport, estimate_fit
from repro.benchmarks.registry import BEAM_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.experiments.paper import FIGURE2_FIT
from repro.util.tables import format_table

__all__ = ["Figure2Result", "render", "run"]


@dataclass
class Figure2Result:
    """Measured FIT reports plus the paper's read-off values."""

    reports: dict[str, FitReport]
    single_element_fraction: dict[str, float]

    def max_total_fit(self) -> float:
        """Largest SDC+DUE FIT across benchmarks (paper: 193)."""
        return max(r.total_fit for r in self.reports.values())


def run(data: ExperimentData) -> Figure2Result:
    """Run (or reuse) the beam campaigns and estimate FIT rates."""
    reports: dict[str, FitReport] = {}
    single_fraction: dict[str, float] = {}
    for name in BEAM_BENCHMARKS:
        campaign = data.beam(name)
        reports[name] = estimate_fit(campaign)
        sdcs = campaign.sdc_records()
        singles = sum(
            1 for r in sdcs if r.sdc_metrics.get("pattern") == ErrorPattern.SINGLE.value
        )
        single_fraction[name] = singles / len(sdcs) if sdcs else 0.0
    return Figure2Result(reports=reports, single_element_fraction=single_fraction)


def render(result: Figure2Result) -> str:
    """Paper-vs-measured table in the layout of Figure 2."""
    headers = [
        "benchmark",
        "SDC FIT",
        "(95% CI)",
        "DUE FIT",
        "cubic",
        "square",
        "line",
        "single",
        "random",
        "paper SDC",
        "paper DUE",
        "single-elem %",
    ]
    rows = []
    for name, report in sorted(result.reports.items()):
        paper_sdc, paper_due = FIGURE2_FIT[name]
        patterns = report.sdc_by_pattern
        rows.append(
            [
                name,
                report.sdc.fit,
                f"[{report.sdc.lower:.0f}, {report.sdc.upper:.0f}]",
                report.due.fit,
                patterns["cubic"].fit,
                patterns["square"].fit,
                patterns["line"].fit,
                patterns["single"].fit,
                patterns["random"].fit,
                paper_sdc,
                paper_due,
                100.0 * result.single_element_fraction[name],
            ]
        )
    lines = [
        format_table(
            headers,
            rows,
            title="Figure 2 — FIT rates and spatial distribution (sea level)",
            floatfmt=".1f",
        )
    ]
    any_report = next(iter(result.reports.values()))
    lines.append(
        f"\nequivalent exposure per benchmark: "
        f"{any_report.equivalent_beam_hours:.1f} beam hours at LANSCE, "
        f"{any_report.equivalent_natural_hours / 8766.0:.0f} years natural"
    )
    lines.append(f"max total FIT observed: {result.max_total_fit():.0f} (paper: 193)")
    return "\n".join(lines)

