"""Figure 5 — PVF per fault model (5a: SDC, 5b: DUE)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pvf import pvf_by_fault_model
from repro.benchmarks.registry import INJECTION_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.experiments.paper import FIGURE5_EXPECTATIONS
from repro.faults.models import FaultModel
from repro.faults.outcome import Outcome
from repro.util.tables import format_table

__all__ = ["Figure5Result", "render", "run"]

_MODEL_ORDER = tuple(m.value for m in FaultModel.all())


@dataclass
class Figure5Result:
    """PVF (%) per benchmark, outcome and fault model."""

    sdc: dict[str, dict[str, float]]
    due: dict[str, dict[str, float]]

    def model_pvf(self, benchmark: str, outcome: Outcome, model: str) -> float:
        table = self.sdc if outcome is Outcome.SDC else self.due
        return table[benchmark][model]


def run(data: ExperimentData) -> Figure5Result:
    sdc: dict[str, dict[str, float]] = {}
    due: dict[str, dict[str, float]] = {}
    for name in INJECTION_BENCHMARKS:
        records = data.injection(name).records
        sdc[name] = {
            model: 100.0 * est.value
            for model, est in pvf_by_fault_model(records, Outcome.SDC, _MODEL_ORDER).items()
        }
        due[name] = {
            model: 100.0 * est.value
            for model, est in pvf_by_fault_model(records, Outcome.DUE, _MODEL_ORDER).items()
        }
    return Figure5Result(sdc=sdc, due=due)


def _table(title: str, data: dict[str, dict[str, float]]) -> str:
    headers = ["benchmark", *(m for m in _MODEL_ORDER)]
    rows = []
    for name in sorted(data):
        rows.append([name, *(data[name].get(m, 0.0) for m in _MODEL_ORDER)])
    return format_table(headers, rows, title=title, floatfmt=".1f")


def render(result: Figure5Result) -> str:
    lines = [
        _table("Figure 5a — SDC PVF (%) per fault model", result.sdc),
        "",
        _table("Figure 5b — DUE PVF (%) per fault model", result.due),
        "",
        "paper's qualitative signatures:",
    ]
    lines.extend(f"  - {claim}" for claim in FIGURE5_EXPECTATIONS)
    return "\n".join(lines)
