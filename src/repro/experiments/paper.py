"""Reference values reported by the paper.

Figure values are read off the published plots (the paper releases raw
logs, not tabulated figures), so they carry ~5-10 FIT of read-off
imprecision; text values are quoted exactly.  Each experiment prints
these next to its own measurements so EXPERIMENTS.md can track
paper-vs-measured for every artifact.
"""

from __future__ import annotations

__all__ = [
    "FIGURE2_FIT",
    "FIGURE3_POINTS",
    "FIGURE4_SHARES",
    "FIGURE5_EXPECTATIONS",
    "FIGURE6_EXPECTATIONS",
    "SECTION6_CRITICALITY",
    "TEXT_CLAIMS",
]

#: Figure 2, read off the plot: benchmark -> (SDC FIT, DUE FIT).
FIGURE2_FIT: dict[str, tuple[float, float]] = {
    "clamr": (40.0, 35.0),
    "dgemm": (113.0, 20.0),
    "hotspot": (125.0, 68.0),
    "lavamd": (75.0, 15.0),
    "lud": (140.0, 30.0),
}

#: Figure 3 / Section 4.4 key read-outs: benchmark -> list of
#: (tolerance, FIT reduction %) anchor points quoted in the text.
FIGURE3_POINTS: dict[str, list[tuple[float, float]]] = {
    "hotspot": [(0.005, 85.0), (0.02, 95.0)],
    "dgemm": [(0.001, 25.0)],  # 113 -> 84 FIT at a small margin
}

#: Figure 4, read off the plot: benchmark -> (masked, sdc, due) in %.
FIGURE4_SHARES: dict[str, tuple[float, float, float]] = {
    "clamr": (75.0, 10.0, 15.0),
    "dgemm": (40.0, 27.0, 33.0),
    "hotspot": (75.0, 12.0, 13.0),
    "lavamd": (85.0, 8.0, 7.0),
    "lud": (50.0, 25.0, 25.0),
    "nw": (55.0, 22.0, 23.0),
}

#: Figure 5 qualitative signatures the text calls out.
FIGURE5_EXPECTATIONS: tuple[str, ...] = (
    "Single and Double have similar outcomes for DGEMM/LUD",
    "Random lowers SDC and raises DUE for algebraic benchmarks",
    "Zero yields lower DUE than the other models",
    "HotSpot: Single has the lowest SDC PVF (small errors dissipate)",
    "LavaMD: all four models have similar PVFs",
    "NW: Zero faults cause (almost) no errors; Single has the highest SDC rate",
)

#: Figure 6 qualitative signatures the text calls out.
FIGURE6_EXPECTATIONS: tuple[str, ...] = (
    "DGEMM SDC PVF is flat across windows; DUE is lower in the first window",
    "CLAMR peaks at time window 3 (max active cells) and then decreases",
    "HotSpot deviates only slightly between windows",
    "LUD is most critical in the middle of the execution",
    "NW DUE is lower at the beginning, then stabilises",
)

#: Section 6 per-portion criticality: benchmark -> portion ->
#: (SDC %, DUE %) of faults injected into that portion.
SECTION6_CRITICALITY: dict[str, dict[str, tuple[float, float]]] = {
    "dgemm": {"matrices": (43.0, 19.0), "control": (38.0, 38.0)},
    "clamr": {"sort": (39.0, 43.0), "tree": (20.0, 41.0), "others": (33.0, 28.0)},
    "hotspot": {"constant+control": (30.0, 40.0)},
    "lavamd": {"charge+distance": (57.0, 11.0)},  # share of all SDCs / DUEs
    "lud": {"matrices": (54.0, 28.0), "control": (24.0, 36.0)},
}

#: Exact textual claims tracked by the harness.
TEXT_CLAIMS: dict[str, str | float] = {
    "max_fit": 193.0,  # "can be as high as 193 FIT, even if ECC is enabled"
    "trinity_boards": 19_000,
    "trinity_mtbf_days_low": 11.0,
    "trinity_mtbf_days_high": 12.0,
    "single_element_sdc_fraction_max": 0.10,  # "<10% ... single erroneous element"
    "hotspot_reduction_at_0p5pct": 85.0,
    "hotspot_surviving_at_2pct": 5.0,  # "SDC FIT decrease to 5% of its original value"
    "dgemm_fit_drop": "113 -> 84 (25% drop) at a small tolerance",
    "mantissa_bits_0p1pct": 41,
    "mantissa_bits_15pct": 49,
    "injection_count_per_benchmark": 10_000,
    "worst_case_error_bar_pct": 1.96,
    "beam_hours": 500,
    "natural_years_covered": 57_000,
}
