"""Experiment harness: regenerate every table and figure of the paper.

Each module reproduces one artifact of the evaluation:

========================== ==================================================
module                      paper artifact
========================== ==================================================
:mod:`~repro.experiments.figure2`       Figure 2 — FIT rates + spatial partition (beam)
:mod:`~repro.experiments.figure3`       Figure 3 — FIT reduction vs error tolerance
:mod:`~repro.experiments.figure4`       Figure 4 — injection outcome shares
:mod:`~repro.experiments.figure5`       Figure 5a/5b — PVF per fault model
:mod:`~repro.experiments.figure6`       Figure 6a/6b — PVF per time window
:mod:`~repro.experiments.criticality`   Section 6 per-portion criticality tables
:mod:`~repro.experiments.extrapolation` Section 4.2 Trinity/exascale projections
:mod:`~repro.experiments.mitigation`    Sections 4.3/6.1 ABFT + hardening coverage
:mod:`~repro.experiments.futurework`    Section 7 hardened-benchmark campaigns
========================== ==================================================

:mod:`~repro.experiments.data` caches the underlying campaigns so the
beam figures (2, 3) share one campaign per benchmark and the injection
figures (4, 5, 6, criticality, mitigation) share another.
:mod:`~repro.experiments.paper` holds the paper-reported reference
values each experiment prints next to its measurements.
"""

from repro.experiments.data import ExperimentData

__all__ = ["ExperimentData"]
