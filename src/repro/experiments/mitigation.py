"""Sections 4.3 and 6.1 — mitigation analysis.

Two parts:

* **ABFT on the beam data** — the fraction of each benchmark's observed
  SDCs whose spatial pattern (single / line / random) ABFT corrects in
  O(1); the paper: "most of the observed SDCs in DGEMM could be
  corrected by ABFT".
* **Selective hardening on the injection data** — coverage of the
  paper's per-benchmark recommended plans (residue for algebraic codes,
  DWC for control variables, parity for NW, RMT for CLAMR's Sort/Tree
  and LavaMD), evaluated analytically per fault model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.registry import BEAM_BENCHMARKS, INJECTION_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.hardening.evaluate import (
    AbftBeamCoverage,
    CoverageReport,
    abft_beam_coverage,
    evaluate_plan,
)
from repro.hardening.selective import RECOMMENDED_PLANS
from repro.util.tables import format_table

__all__ = ["MitigationResult", "render", "run"]


@dataclass
class MitigationResult:
    """ABFT beam census plus plan coverage per benchmark."""

    abft: dict[str, AbftBeamCoverage]
    coverage: dict[str, CoverageReport]


def run(data: ExperimentData) -> MitigationResult:
    abft = {name: abft_beam_coverage(data.beam(name)) for name in BEAM_BENCHMARKS}
    coverage = {}
    for name in INJECTION_BENCHMARKS:
        plan = RECOMMENDED_PLANS[name]
        coverage[name] = evaluate_plan(data.injection(name).records, plan)
    return MitigationResult(abft=abft, coverage=coverage)


def render(result: MitigationResult) -> str:
    abft_rows = []
    for name in sorted(result.abft):
        census = result.abft[name]
        abft_rows.append(
            [
                name,
                census.sdc_count,
                census.correctable,
                100.0 * census.correctable_fraction,
            ]
        )
    lines = [
        format_table(
            ["benchmark", "beam SDCs", "ABFT-correctable", "correctable %"],
            abft_rows,
            title="Section 4.3 — ABFT correctability of observed beam SDCs",
            floatfmt=".1f",
        ),
        "paper: most observed DGEMM SDCs are single/line/random, hence ABFT-correctable",
        "",
    ]
    cov_rows = []
    for name in sorted(result.coverage):
        report = result.coverage[name]
        protected = ", ".join(
            f"{portion}:{tech.value}" for portion, tech in report.plan.assignments.items()
        )
        cov_rows.append(
            [
                name,
                report.harmful_faults,
                100.0 * report.coverage_fraction,
                100.0 * report.expected_detection_fraction,
                protected,
            ]
        )
    lines.append(
        format_table(
            ["benchmark", "harmful faults", "covered %", "detected %", "plan"],
            cov_rows,
            title="Section 6.1 — recommended selective-hardening plans",
            floatfmt=".1f",
        )
    )
    return "\n".join(lines)
