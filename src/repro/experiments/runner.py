"""CLI runner: regenerate any subset of the paper's artifacts.

Usage (installed as ``repro-experiments``)::

    repro-experiments                 # everything at full scale
    repro-experiments --quick         # 10% campaigns, minutes not hours
    repro-experiments figure2 figure3 --seed 7
    repro-experiments --workers 8 --checkpoints /tmp/ckpt figure4
    repro-experiments --isolation subprocess --timeout 60 figure4
    repro-experiments --list

Campaigns are shared across experiments within one invocation (Figures
2/3 reuse one beam campaign per benchmark; Figures 4-6, criticality and
mitigation reuse one injection campaign per benchmark).  Injection
campaigns run on the sharded parallel engine: ``--workers`` (or the
``REPRO_WORKERS`` environment variable) sets the process count, and
``--checkpoints DIR`` makes campaigns resumable — re-invoking with the
same directory replays finished shards instead of re-running them.

Observability (:mod:`repro.telemetry`): ``--metrics-out PATH`` exports
campaign metrics on exit (Prometheus text, or a JSONL snapshot for a
``.json``/``.jsonl`` suffix) and prints the metric summary table to
stderr; ``--trace PATH`` records phase-timing spans as ``trace.jsonl``;
``--progress-interval SECONDS`` prints a periodic one-line campaign
status (runs/s, ETA, outcome mix, retries/quarantines, slowest shard).

Injection fast path: campaigns run with the execution-prefix snapshot
cache on by default (``--no-snapshots`` disables it; records are
bit-identical either way) and ``--golden-cache DIR`` persists golden
runs on disk so repeated or spawn-based sessions skip them.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from collections.abc import Callable, Sequence
from typing import Any

from repro.carolfi.engine import ShardProgress
from repro.carolfi.isolation import IsolationConfig, IsolationMode
from repro.experiments import (
    criticality,
    data as data_mod,
    extrapolation,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    futurework,
    mitigation,
    propagation,
)
from repro.telemetry import Telemetry, TelemetryConfig, summary_table

__all__ = ["EXPERIMENTS", "main", "run_experiments"]

#: name -> (run, render) pairs, in paper order.
EXPERIMENTS: dict[str, tuple[Callable, Callable]] = {
    "figure2": (figure2.run, figure2.render),
    "figure3": (figure3.run, figure3.render),
    "figure4": (figure4.run, figure4.render),
    "figure5": (figure5.run, figure5.render),
    "figure6": (figure6.run, figure6.render),
    "criticality": (criticality.run, criticality.render),
    "extrapolation": (extrapolation.run, extrapolation.render),
    "mitigation": (mitigation.run, mitigation.render),
    "futurework": (futurework.run, futurework.render),
    "propagation": (propagation.run, propagation.render),
}


def _print_progress(event: ShardProgress) -> None:
    """One stderr heartbeat line per shard event."""
    eta = "?" if not math.isfinite(event.eta_s) else f"{event.eta_s:.0f}s"
    line = (
        f"[shard {event.shard_index + 1}/{event.shard_count}] "
        f"{event.event:<8} {event.done_runs}/{event.total_runs} injections "
        f"({event.rate:.1f}/s, eta {eta})"
    )
    if event.detail:
        line += f" — {event.detail}"
    print(line, file=sys.stderr, flush=True)


def run_experiments(
    names: Sequence[str],
    seed: int = 2017,
    scale: float = 1.0,
    stream: Any = None,
    workers: int | None = 1,
    checkpoint_root: str | None = None,
    isolation: IsolationConfig | None = None,
    progress: Callable[[ShardProgress], None] | None = None,
    telemetry: Telemetry | None = None,
    snapshots: bool = True,
    batch_size: int = 1,
    golden_cache: str | None = None,
    target_ci: float | None = None,
) -> data_mod.ExperimentData:
    """Run the named experiments, printing each rendered artifact."""
    stream = stream or sys.stdout
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; known: {list(EXPERIMENTS)}")
    shared = data_mod.ExperimentData(
        seed=seed,
        scale=scale,
        workers=workers,
        checkpoint_root=checkpoint_root,
        isolation=isolation,
        telemetry=telemetry,
        progress=progress,
        snapshots=snapshots,
        batch_size=batch_size,
        golden_cache=golden_cache,
        target_ci=target_ci,
    )
    for name in names:
        run, render = EXPERIMENTS[name]
        start = time.perf_counter()
        result = run(shared)
        elapsed = time.perf_counter() - start
        print(f"\n### {name} ({elapsed:.1f}s)\n", file=stream)
        print(render(result), file=stream)
    return shared


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the Xeon Phi reliability paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"subset to run (default: all of {list(EXPERIMENTS)})",
    )
    parser.add_argument("--seed", type=int, default=2017, help="campaign seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="campaign size multiplier (1.0 = full, 0.1 = quick)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorthand for --scale 0.1"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="injection campaign worker processes "
        "(default: $REPRO_WORKERS, else all cpu cores; 1 = serial in-process)",
    )
    parser.add_argument(
        "--checkpoints",
        metavar="DIR",
        default=None,
        help="checkpoint root; campaigns resume from completed shards under it",
    )
    parser.add_argument(
        "--isolation",
        choices=[mode.value for mode in IsolationMode],
        default=None,
        help="where each injection executes: 'inproc' (default, fast) or "
        "'subprocess' (disposable sandbox worker per campaign; crashes and "
        "hangs become observed process deaths, as in the paper)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard per-injection wall-clock deadline; a worker over it is "
        "killed and the run recorded as a hang DUE (subprocess isolation "
        "only; default: derived from the golden runtime)",
    )
    parser.add_argument(
        "--mem-limit",
        type=float,
        default=None,
        metavar="MB",
        help="RSS ceiling for the sandbox worker; a worker over it is killed "
        "and the run recorded as an OOM DUE (subprocess isolation only)",
    )
    parser.add_argument(
        "--no-snapshots",
        action="store_true",
        help="disable the execution-prefix snapshot fast path (every run "
        "replays from step 0; records are bit-identical either way)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="N",
        help="vectorized batched-injection width: group runs sharing a "
        "prefix-snapshot anchor and step their corrupted states together "
        "through the benchmarks' batched kernels (1 = disabled; records "
        "are byte-identical at any width; in-process isolation only)",
    )
    parser.add_argument(
        "--golden-cache",
        metavar="DIR",
        default=None,
        help="on-disk golden-run cache directory shared across processes "
        "and sessions (default: $REPRO_GOLDEN_CACHE if set, else "
        "<checkpoints>/golden-cache when checkpointing)",
    )
    parser.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="HALFWIDTH",
        help="stop each injection campaign at the first shard-merge "
        "boundary where every (benchmark, fault model) cell's SDC and "
        "DUE confidence intervals are at most this half-width; stopped "
        "records are a byte-identical prefix of the uncapped campaign "
        "(excluded from the checkpoint fingerprint, so resumes stay valid)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-shard heartbeats (injections/sec, ETA) to stderr",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="export campaign metrics on exit: Prometheus text, or an "
        "appended JSONL snapshot for a .json/.jsonl suffix; also prints "
        "the metric summary table to stderr",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record phase-timing spans (campaign, shard, run, corrupt, "
        "compare, checkpoint_write...) as JSONL trace events",
    )
    parser.add_argument(
        "--progress-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print a one-line campaign status (runs/s, ETA, outcome mix, "
        "retries, slowest shard) to stderr at most this often",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    scale = 0.1 if args.quick else args.scale
    isolation = None
    if (
        args.isolation == IsolationMode.SUBPROCESS.value
        or args.timeout is not None
        or args.mem_limit is not None
    ):
        isolation = IsolationConfig(
            mode=IsolationMode.SUBPROCESS,
            timeout_s=args.timeout,
            mem_limit_mb=args.mem_limit,
        )
    telemetry = None
    if (
        args.metrics_out is not None
        or args.trace is not None
        or args.progress_interval is not None
    ):
        telemetry = Telemetry(
            TelemetryConfig(
                metrics_path=args.metrics_out,
                trace_path=args.trace,
                progress_interval_s=args.progress_interval,
            )
        )
    try:
        run_experiments(
            args.experiments,
            seed=args.seed,
            scale=scale,
            workers=args.workers,
            checkpoint_root=args.checkpoints,
            isolation=isolation,
            progress=_print_progress if args.progress else None,
            telemetry=telemetry,
            snapshots=not args.no_snapshots,
            batch_size=args.batch_size,
            golden_cache=args.golden_cache,
            target_ci=args.target_ci,
        )
    finally:
        if telemetry is not None:
            exported = telemetry.finalize()
            print(summary_table(telemetry.registry), file=sys.stderr)
            if exported is not None:
                print(f"metrics written to {exported}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
