"""Section 6 — per-benchmark criticality tables.

For each benchmark, group the injection campaign by code portion (the
paper's aggregation: operand pointers count with the data they point
at, CLAMR's mesh splits into Sort / Tree / others) and report the SDC
and DUE rates of faults landing in each portion, next to the numbers
quoted in the paper's per-benchmark discussions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.criticality import PortionReport, criticality_by_portion
from repro.benchmarks.registry import INJECTION_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.experiments.paper import SECTION6_CRITICALITY
from repro.util.tables import format_table

__all__ = ["CriticalityResult", "render", "run"]


@dataclass
class CriticalityResult:
    """Portion reports per benchmark, most critical first."""

    portions: dict[str, list[PortionReport]]

    def most_critical(self, benchmark: str) -> str:
        return self.portions[benchmark][0].portion


def run(data: ExperimentData) -> CriticalityResult:
    portions = {
        name: criticality_by_portion(data.injection(name).records)
        for name in INJECTION_BENCHMARKS
    }
    return CriticalityResult(portions=portions)


def render(result: CriticalityResult) -> str:
    headers = [
        "benchmark",
        "portion",
        "faults",
        "sdc %",
        "due %",
        "paper sdc %",
        "paper due %",
    ]
    rows = []
    for name in sorted(result.portions):
        paper = SECTION6_CRITICALITY.get(name, {})
        for report in result.portions[name]:
            ref = paper.get(report.portion)
            rows.append(
                [
                    name,
                    report.portion,
                    report.injections,
                    100.0 * report.sdc.value,
                    100.0 * report.due.value,
                    ref[0] if ref else "-",
                    ref[1] if ref else "-",
                ]
            )
    return format_table(
        headers,
        rows,
        title="Section 6 — criticality of code portions (rates of faults in portion)",
        floatfmt=".1f",
    )
