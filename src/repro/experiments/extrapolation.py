"""Section 4.2 — machine-scale extrapolation.

"If we extrapolate the FIT rates to a Trinity-size machine with 19,000
Xeon Phis ... one should expect to see a SDC for LUD or DUE for HotSpot
every eleven or twelve days", and an exascale machine (10x the boards)
sees almost daily events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.extrapolate import (
    EXASCALE_BOARDS,
    TRINITY_BOARDS,
    MachineProjection,
    project_machine,
)
from repro.beam.flux import LANL_ALTITUDE_M, natural_flux_at_altitude
from repro.util.units import SEA_LEVEL_FLUX_N_CM2_H
from repro.experiments.data import ExperimentData
from repro.experiments.figure2 import run as run_figure2
from repro.util.tables import format_table

__all__ = ["ExtrapolationResult", "render", "run"]


@dataclass
class ExtrapolationResult:
    """Trinity and exascale projections per benchmark and outcome."""

    trinity: dict[str, dict[str, MachineProjection]]
    exascale: dict[str, dict[str, MachineProjection]]


def run(data: ExperimentData) -> ExtrapolationResult:
    figure2 = run_figure2(data)
    trinity: dict[str, dict[str, MachineProjection]] = {}
    exascale: dict[str, dict[str, MachineProjection]] = {}
    for name, report in figure2.reports.items():
        per_outcome_t = {}
        per_outcome_e = {}
        for outcome, estimate in (("sdc", report.sdc), ("due", report.due)):
            if estimate.fit > 0:
                per_outcome_t[outcome] = project_machine(estimate.fit, TRINITY_BOARDS)
                per_outcome_e[outcome] = project_machine(estimate.fit, EXASCALE_BOARDS)
        trinity[name] = per_outcome_t
        exascale[name] = per_outcome_e
    return ExtrapolationResult(trinity=trinity, exascale=exascale)


def render(result: ExtrapolationResult) -> str:
    headers = [
        "benchmark",
        "outcome",
        "FIT/board",
        "Trinity MTBF (days)",
        "exascale MTBF (days)",
    ]
    rows = []
    for name in sorted(result.trinity):
        for outcome in ("sdc", "due"):
            trin = result.trinity[name].get(outcome)
            exa = result.exascale[name].get(outcome)
            if trin is None or exa is None:
                continue
            rows.append(
                [name, outcome.upper(), trin.fit_per_board, trin.mtbf_days, exa.mtbf_days]
            )
    table = format_table(
        headers,
        rows,
        title=(
            f"Section 4.2 — extrapolation to Trinity ({TRINITY_BOARDS} boards) "
            f"and exascale ({EXASCALE_BOARDS} boards)"
        ),
        floatfmt=".1f",
    )
    altitude_factor = natural_flux_at_altitude(LANL_ALTITUDE_M) / SEA_LEVEL_FLUX_N_CM2_H
    return (
        table
        + "\npaper: SDC for LUD / DUE for HotSpot every 11-12 days at Trinity "
        "scale; almost daily events at exascale"
        + (
            f"\nextension: Trinity actually operates at Los Alamos "
            f"({LANL_ALTITUDE_M:.0f} m), where the atmospheric flux is "
            f"~{altitude_factor:.1f}x sea level — divide every MTBF above "
            f"accordingly (the paper's extrapolation deliberately assumes "
            f"sea level)"
        )
    )
