"""Figure 6 — PVF per execution-time window (6a: SDC, 6b: DUE).

CLAMR runs nine windows, DGEMM and HotSpot five, LUD and NW four
(paper Section 6); LavaMD is not part of the time-window plots.  Each
window's PVF is independent ("not to be confused with the contribution
of each time window to the benchmark PVF"), so columns may sum past
100%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pvf import pvf_by_window
from repro.benchmarks.registry import TIME_WINDOW_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.experiments.paper import FIGURE6_EXPECTATIONS
from repro.faults.outcome import Outcome
from repro.util.tables import format_series

__all__ = ["Figure6Result", "render", "run"]


@dataclass
class Figure6Result:
    """PVF (%) per benchmark and window, for SDC and DUE."""

    sdc: dict[str, list[tuple[int, float]]]
    due: dict[str, list[tuple[int, float]]]

    def peak_window(self, benchmark: str, outcome: Outcome) -> int:
        """Window index with the highest PVF."""
        series = (self.sdc if outcome is Outcome.SDC else self.due)[benchmark]
        return max(series, key=lambda pair: pair[1])[0]


def run(data: ExperimentData) -> Figure6Result:
    sdc: dict[str, list[tuple[int, float]]] = {}
    due: dict[str, list[tuple[int, float]]] = {}
    for name in TIME_WINDOW_BENCHMARKS:
        records = data.injection(name).records
        sdc[name] = [
            (w, 100.0 * est.value)
            for w, est in sorted(pvf_by_window(records, Outcome.SDC).items())
        ]
        due[name] = [
            (w, 100.0 * est.value)
            for w, est in sorted(pvf_by_window(records, Outcome.DUE).items())
        ]
    return Figure6Result(sdc=sdc, due=due)


def render(result: Figure6Result) -> str:
    lines = ["Figure 6a — SDC PVF (%) per time window", "=" * 50]
    for name in sorted(result.sdc):
        xs = [w + 1 for w, _ in result.sdc[name]]
        ys = [v for _, v in result.sdc[name]]
        lines.append(format_series(f"{name:8s}", xs, ys, floatfmt=".1f"))
    lines.extend(["", "Figure 6b — DUE PVF (%) per time window", "=" * 50])
    for name in sorted(result.due):
        xs = [w + 1 for w, _ in result.due[name]]
        ys = [v for _, v in result.due[name]]
        lines.append(format_series(f"{name:8s}", xs, ys, floatfmt=".1f"))
    lines.extend(["", "paper's qualitative signatures:"])
    lines.extend(f"  - {claim}" for claim in FIGURE6_EXPECTATIONS)
    return "\n".join(lines)
