"""Extension — propagation study (Sections 2.2 / 4.4 context).

Not a numbered figure of the paper, but the mechanism behind two of
its claims: iterative codes spread and *compound* errors (CLAMR,
LavaMD, LUD, DGEMM) while HotSpot's open-system stencil attenuates
them.  For each benchmark we trace a batch of injected faults and
report how the corrupted-element count evolves from injection to
output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.propagation import PropagationProfile, propagation_profile
from repro.benchmarks.registry import INJECTION_BENCHMARKS, create
from repro.experiments.data import ExperimentData
from repro.faults.models import FaultModel
from repro.util.tables import format_table

__all__ = ["PropagationResult", "render", "run"]

_PROFILES_PER_BENCHMARK = 24


@dataclass
class PropagationResult:
    """Aggregated propagation behaviour per benchmark."""

    profiles: dict[str, list[PropagationProfile]]

    def summary(self, benchmark: str) -> dict[str, float]:
        profiles = [p for p in self.profiles[benchmark] if p.points]
        if not profiles:
            return {"grown": 0.0, "final_wrong": 0.0, "monotone": 0.0, "crashed": 0.0}
        grown = [p for p in profiles if p.final_wrong > 1]
        return {
            "grown": len(grown) / len(profiles),
            "final_wrong": float(np.mean([p.final_wrong for p in profiles])),
            "monotone": float(np.mean([p.monotone_growth_fraction() for p in profiles])),
            "crashed": sum(1 for p in self.profiles[benchmark] if p.crashed)
            / len(self.profiles[benchmark]),
        }


def run(data: ExperimentData) -> PropagationResult:
    profiles: dict[str, list[PropagationProfile]] = {}
    count = max(6, int(_PROFILES_PER_BENCHMARK * min(data.scale * 4, 1.0)))
    for name in INJECTION_BENCHMARKS:
        bench = create(name)
        batch = []
        for index in range(count):
            model = FaultModel.all()[index % 4]
            batch.append(propagation_profile(bench, seed=data.seed + index, model=model))
        profiles[name] = batch
    return PropagationResult(profiles=profiles)


def render(result: PropagationResult) -> str:
    headers = [
        "benchmark",
        "profiles",
        "multi-element %",
        "mean final wrong",
        "monotone growth",
        "crashed %",
    ]
    rows = []
    for name in sorted(result.profiles):
        stats = result.summary(name)
        rows.append(
            [
                name,
                len(result.profiles[name]),
                100.0 * stats["grown"],
                stats["final_wrong"],
                stats["monotone"],
                100.0 * stats["crashed"],
            ]
        )
    table = format_table(
        headers,
        rows,
        title="Extension — fault propagation profiles (per-step corruption tracking)",
        floatfmt=".2f",
    )
    return (
        table
        + "\npaper context: errors 'tend to propagate and compound' for the\n"
        "iterative codes, while HotSpot attenuates (lower monotone-growth score)"
    )
