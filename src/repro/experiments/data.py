"""Shared, memoised campaign data for the experiment harness.

Figures 2 and 3 consume the same beam campaigns; Figures 4-6, the
criticality tables and the mitigation analysis consume the same
injection campaigns.  ``ExperimentData`` runs each campaign at most
once per (benchmark, size, seed) and hands the cached result to every
experiment, so regenerating the whole paper costs one campaign per
benchmark per injector.

Campaign sizes scale with the ``scale`` parameter: 1.0 reproduces
statistically solid counts; 0.1 is a quick smoke configuration used by
the test-suite and CI.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.beam.experiment import BeamCampaignResult, BeamExperiment
from repro.benchmarks.registry import BEAM_BENCHMARKS, INJECTION_BENCHMARKS
from repro.carolfi.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.carolfi.engine import ShardProgress
from repro.carolfi.isolation import IsolationConfig
from repro.telemetry import Telemetry

__all__ = ["ExperimentData"]

#: Full-scale trial counts (scale = 1.0).
_BEAM_TRIALS = 1500
_INJECTIONS = 1600


@dataclass
class ExperimentData:
    """Lazily-run, memoised campaigns behind all experiments.

    ``workers`` and ``checkpoint_root`` are forwarded to the sharded
    campaign engine: ``workers=1`` (the default, used by the test
    suite) keeps the plain serial path, ``workers=None`` auto-detects
    from ``REPRO_WORKERS`` / cpu count, and a ``checkpoint_root`` gives
    every benchmark campaign its own resumable checkpoint directory
    under it.  ``isolation`` selects where individual injections run
    (an :class:`~repro.carolfi.isolation.IsolationConfig`; ``None``
    keeps the fast in-process default).  ``telemetry`` (a
    :class:`~repro.telemetry.Telemetry` bundle) is shared by every
    injection campaign, so one exported registry covers the session.
    ``snapshots`` toggles the execution-prefix fast path (on by
    default; records are identical either way), ``batch_size`` sets the
    vectorized batched-injection width (1 disables; records are
    byte-identical at any width) and ``golden_cache`` names an on-disk
    golden-run cache directory shared by all campaigns.  ``target_ci`` forwards the statistical early-stopping
    target (CI half-width) to every injection campaign; stopped
    campaigns keep a byte-identical prefix of the uncapped record
    stream, so downstream figures stay deterministic.
    """

    seed: int = 2017
    scale: float = 1.0
    workers: int | None = 1
    checkpoint_root: str | Path | None = None
    isolation: IsolationConfig | None = None
    snapshots: bool = True
    batch_size: int = 1
    golden_cache: str | Path | None = None
    target_ci: float | None = None
    telemetry: Telemetry | None = field(default=None, repr=False)
    progress: Callable[[ShardProgress], None] | None = field(default=None, repr=False)
    _beam: dict[str, BeamCampaignResult] = field(default_factory=dict, repr=False)
    _injection: dict[str, CampaignResult] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def beam_trials(self) -> int:
        return max(50, int(_BEAM_TRIALS * self.scale))

    @property
    def injections(self) -> int:
        return max(50, int(_INJECTIONS * self.scale))

    def beam(self, benchmark: str) -> BeamCampaignResult:
        """The (cached) beam campaign of one benchmark."""
        if benchmark not in BEAM_BENCHMARKS:
            raise KeyError(f"{benchmark!r} was not irradiated in the paper")
        if benchmark not in self._beam:
            experiment = BeamExperiment(benchmark, seed=self.seed)
            self._beam[benchmark] = experiment.run_campaign(self.beam_trials)
        return self._beam[benchmark]

    def injection(self, benchmark: str) -> CampaignResult:
        """The (cached) CAROL-FI campaign of one benchmark."""
        if benchmark not in INJECTION_BENCHMARKS:
            raise KeyError(f"{benchmark!r} is not in the injection study")
        if benchmark not in self._injection:
            config = CampaignConfig(
                benchmark=benchmark,
                injections=self.injections,
                seed=self.seed,
                snapshots=self.snapshots,
                batch_size=self.batch_size,
                target_ci=self.target_ci,
            )
            checkpoint_dir = None
            if self.checkpoint_root is not None:
                checkpoint_dir = (
                    Path(self.checkpoint_root)
                    / f"{benchmark}-seed{self.seed}-n{self.injections}"
                )
            self._injection[benchmark] = run_campaign(
                config,
                workers=self.workers,
                checkpoint_dir=checkpoint_dir,
                progress=self.progress,
                isolation=self.isolation,
                telemetry=self.telemetry,
                golden_cache=self.golden_cache,
            )
        return self._injection[benchmark]

    def all_beam(self) -> dict[str, BeamCampaignResult]:
        return {name: self.beam(name) for name in BEAM_BENCHMARKS}

    def all_injection(self) -> dict[str, CampaignResult]:
        return {name: self.injection(name) for name in INJECTION_BENCHMARKS}
