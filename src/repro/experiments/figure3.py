"""Figure 3 — SDC FIT reduction vs. tolerated relative error.

Reuses the Figure 2 beam campaigns: each SDC record carries the maximum
relative error of its corrupted output, so the tolerance sweep is a
pure reclassification.  Key text read-outs (HotSpot -85% at 0.5%,
DGEMM's initial 25% drop, saturation) are printed alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.relative_error import (
    PAPER_TOLERANCES,
    fit_reduction_curve,
    mantissa_bits_within,
)
from repro.benchmarks.registry import BEAM_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.experiments.paper import FIGURE3_POINTS
from repro.util.tables import format_series, format_table

__all__ = ["Figure3Result", "render", "run"]


@dataclass
class Figure3Result:
    """Per-benchmark (tolerance, FIT-reduction%) curves."""

    curves: dict[str, list[tuple[float, float]]]

    def reduction_at(self, benchmark: str, tolerance: float) -> float:
        """FIT reduction (%) of one benchmark at one tolerance."""
        for tol, reduction in self.curves[benchmark]:
            if abs(tol - tolerance) < 1e-12:
                return reduction
        raise KeyError(f"tolerance {tolerance} not in the sweep grid")


def run(data: ExperimentData) -> Figure3Result:
    curves: dict[str, list[tuple[float, float]]] = {}
    for name in BEAM_BENCHMARKS:
        sdcs = data.beam(name).sdc_records()
        max_errs = [r.sdc_metrics["max_rel_err"] for r in sdcs]
        if not max_errs:
            curves[name] = [(tol, 0.0) for tol in PAPER_TOLERANCES]
            continue
        curves[name] = fit_reduction_curve(max_errs)
    return Figure3Result(curves=curves)


def render(result: Figure3Result) -> str:
    lines = ["Figure 3 — SDC FIT reduction vs tolerated relative error", "=" * 60]
    for name, curve in sorted(result.curves.items()):
        xs = [100.0 * tol for tol, _ in curve]
        ys = [red for _, red in curve]
        lines.append(format_series(f"{name:8s} (x=tol %, y=reduction %)", xs, ys, floatfmt=".0f"))
    lines.append("")
    anchor_rows = []
    for name, points in FIGURE3_POINTS.items():
        for tol, paper_red in points:
            try:
                measured = result.reduction_at(name, tol)
            except KeyError:
                continue
            anchor_rows.append([name, 100.0 * tol, paper_red, measured])
    lines.append(
        format_table(
            ["benchmark", "tolerance %", "paper reduction %", "measured %"],
            anchor_rows,
            title="text anchors (Section 4.4)",
            floatfmt=".1f",
        )
    )
    lines.append(
        "\nmantissa-bit saturation (double precision): "
        f"0.1% tolerance frees {mantissa_bits_within(0.001)} bits (paper: 41), "
        f"15% frees {mantissa_bits_within(0.15)} bits (paper: 49)"
    )
    return "\n".join(lines)
