"""The paper's future work: mitigation validation campaigns.

"In the future, we plan to implement the mitigation techniques based on
the radiation and fault injection analysis.  Then, we will validate
them with fault injection campaigns."  (Section 7.)

For each benchmark, rerun the CAROL-FI campaign against its hardened
variant (Section 6.1's recommended guards, plus ABFT output
verification for DGEMM) and compare outcome shares with the
unprotected Figure 4 baseline: how much SDC/DUE turns into detections
and corrections, and what the protection costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pvf import outcome_shares
from repro.benchmarks.registry import INJECTION_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.hardening.hardened import HardenedCampaignResult, run_hardened_campaign
from repro.util.tables import format_table

__all__ = ["FutureWorkResult", "render", "run"]


@dataclass
class FutureWorkResult:
    """Unprotected vs hardened outcome shares per benchmark."""

    baseline: dict[str, dict[str, float]]
    hardened: dict[str, HardenedCampaignResult]

    def harmful_reduction(self, benchmark: str) -> float:
        """Fraction of the baseline SDC+DUE removed by the hardening."""
        base = self.baseline[benchmark]
        before = base["sdc"] + base["due"]
        after = self.hardened[benchmark].residual_harmful()
        if before <= 0:
            return 0.0
        return 1.0 - after / before


def run(data: ExperimentData) -> FutureWorkResult:
    baseline = {}
    hardened = {}
    for name in INJECTION_BENCHMARKS:
        baseline[name] = outcome_shares(data.injection(name).records)
        hardened[name] = run_hardened_campaign(
            name, injections=data.injections, seed=data.seed
        )
    return FutureWorkResult(baseline=baseline, hardened=hardened)


def render(result: FutureWorkResult) -> str:
    headers = [
        "benchmark",
        "base sdc %",
        "base due %",
        "hard sdc %",
        "hard due %",
        "detected %",
        "corrected %",
        "harm -%",
        "time x",
    ]
    rows = []
    for name in sorted(result.hardened):
        base = result.baseline[name]
        campaign = result.hardened[name]
        shares = campaign.shares()
        rows.append(
            [
                name,
                100.0 * base["sdc"],
                100.0 * base["due"],
                100.0 * shares["sdc"],
                100.0 * shares["due"],
                100.0 * shares["detected"],
                100.0 * shares["corrected"],
                100.0 * result.harmful_reduction(name),
                campaign.time_overhead_factor,
            ]
        )
    table = format_table(
        headers,
        rows,
        title="Future work (Section 7) — hardened-benchmark injection campaigns",
        floatfmt=".1f",
    )
    return (
        table
        + "\nguards: Section 6.1 recommendations (DWC on control/pointers, "
        "checksums on algebraic data, parity on NW's integer matrices, "
        "ABFT verify+correct on the DGEMM output)"
    )
