"""Figure 4 — outcomes of fault injections (Masked / SDC / DUE)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pvf import outcome_shares
from repro.benchmarks.registry import INJECTION_BENCHMARKS
from repro.experiments.data import ExperimentData
from repro.experiments.paper import FIGURE4_SHARES
from repro.util.tables import format_table

__all__ = ["Figure4Result", "render", "run"]


@dataclass
class Figure4Result:
    """Outcome shares per benchmark (fractions of all injections)."""

    shares: dict[str, dict[str, float]]

    def masked_majority(self) -> dict[str, bool]:
        """Which benchmarks mask the majority of faults (all but DGEMM
        in the paper)."""
        return {name: s["masked"] > 0.5 for name, s in self.shares.items()}


def run(data: ExperimentData) -> Figure4Result:
    shares = {
        name: outcome_shares(data.injection(name).records)
        for name in INJECTION_BENCHMARKS
    }
    return Figure4Result(shares=shares)


def render(result: Figure4Result) -> str:
    headers = [
        "benchmark",
        "masked %",
        "sdc %",
        "due %",
        "paper masked",
        "paper sdc",
        "paper due",
    ]
    rows = []
    for name in sorted(result.shares):
        s = result.shares[name]
        paper = FIGURE4_SHARES[name]
        rows.append(
            [
                name,
                100.0 * s["masked"],
                100.0 * s["sdc"],
                100.0 * s["due"],
                paper[0],
                paper[1],
                paper[2],
            ]
        )
    return format_table(
        headers, rows, title="Figure 4 — outcomes of fault injections", floatfmt=".1f"
    )
