"""Log parser CLI — the artifact's "parser scripts".

The paper publishes its raw beam and injection logs and ships parser
scripts that turn them into the reported tables.  Our campaigns write
the same kind of JSONL logs (``run_campaign(..., log_path=...)`` and
``BeamExperiment.run_campaign(..., log_path=...)``); this CLI re-parses
them into the same summaries, so analysis can run from logs alone:

    repro-parse-logs injection runs/dgemm.jsonl runs/lud.jsonl
    repro-parse-logs beam runs/beam_dgemm.jsonl
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.criticality import criticality_by_portion
from repro.analysis.severity import severity_census
from repro.analysis.pvf import outcome_shares, pvf_by_fault_model, pvf_by_window
from repro.beam.experiment import BeamCampaignResult, BeamRecord
from repro.beam.fit import estimate_fit, fit_by_resource
from repro.beam.sensitivity import DEFAULT_SENSITIVITY
from repro.carolfi.logparse import merge_logs
from repro.faults.outcome import Outcome
from repro.util.jsonlog import load_records
from repro.util.tables import format_table

__all__ = ["main", "summarize_beam_log", "summarize_injection_log"]


def summarize_injection_log(paths: Sequence[str], stream) -> None:
    """Outcome shares, PVF slices and criticality from injection logs."""
    records = merge_logs(*paths)
    if not records:
        raise SystemExit("no records in the given logs")
    benchmarks = sorted({r.benchmark for r in records})
    for name in benchmarks:
        subset = [r for r in records if r.benchmark == name]
        shares = outcome_shares(subset)
        print(f"\n== {name}: {len(subset)} injections", file=stream)
        print(
            "   outcomes: "
            + "  ".join(f"{k} {100 * v:.1f}%" for k, v in shares.items()),
            file=stream,
        )
        rows = []
        for outcome in (Outcome.SDC, Outcome.DUE):
            by_model = pvf_by_fault_model(subset, outcome)
            rows.append(
                [outcome.value, *(f"{100 * est.value:.1f}" for est in by_model.values())]
            )
        models = list(pvf_by_fault_model(subset, Outcome.SDC))
        print(format_table(["PVF %", *models], rows), file=stream)
        windows = pvf_by_window(subset, Outcome.SDC)
        series = " ".join(f"w{w + 1}:{100 * est.value:.0f}%" for w, est in windows.items())
        print(f"   SDC by window: {series}", file=stream)
        census = severity_census(
            r.sdc_metrics for r in subset if r.outcome is Outcome.SDC
        )
        if sum(census.values()):
            print(
                "   SDC severity (tol 2%): "
                + "  ".join(f"{k} {v}" for k, v in census.items() if v),
                file=stream,
            )
        portion_rows = [
            [r.portion, r.injections, 100 * r.sdc.value, 100 * r.due.value]
            for r in criticality_by_portion(subset)
        ]
        print(
            format_table(
                ["portion", "faults", "sdc %", "due %"], portion_rows, floatfmt=".1f"
            ),
            file=stream,
        )


def summarize_beam_log(paths: Sequence[str], stream) -> None:
    """FIT rates (overall, per pattern, per resource) from beam logs."""
    records: list[BeamRecord] = []
    for path in paths:
        records.extend(BeamRecord.from_dict(raw) for raw in load_records(path))
    if not records:
        raise SystemExit("no records in the given logs")
    benchmarks = sorted({r.benchmark for r in records})
    for name in benchmarks:
        subset = [r for r in records if r.benchmark == name]
        campaign = BeamCampaignResult(name, subset, DEFAULT_SENSITIVITY)
        report = estimate_fit(campaign)
        print(
            f"\n== {name}: {len(subset)} strike trials -> "
            f"SDC {report.sdc.fit:.1f} FIT "
            f"[{report.sdc.lower:.1f}, {report.sdc.upper:.1f}], "
            f"DUE {report.due.fit:.1f} FIT",
            file=stream,
        )
        pattern_rows = [
            [pattern, est.fit, est.events]
            for pattern, est in report.sdc_by_pattern.items()
            if est.events
        ]
        if pattern_rows:
            print(
                format_table(["pattern", "FIT", "events"], pattern_rows, floatfmt=".1f"),
                file=stream,
            )
        census = severity_census(r.sdc_metrics for r in campaign.sdc_records())
        print(
            "   SDC severity (tol 2%): "
            + "  ".join(f"{k} {v}" for k, v in census.items() if v),
            file=stream,
        )
        resource_rows = [
            [resource, est.fit, est.events]
            for resource, est in fit_by_resource(campaign, Outcome.SDC).items()
        ]
        if resource_rows:
            print(
                format_table(
                    ["SDCs by resource", "FIT", "events"], resource_rows, floatfmt=".1f"
                ),
                file=stream,
            )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-parse-logs",
        description="Summarise persisted campaign logs (the artifact's parser scripts).",
    )
    parser.add_argument("kind", choices=["injection", "beam"], help="log type")
    parser.add_argument("logs", nargs="+", help="JSONL log files")
    args = parser.parse_args(argv)
    if args.kind == "injection":
        summarize_injection_log(args.logs, sys.stdout)
    else:
        summarize_beam_log(args.logs, sys.stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
