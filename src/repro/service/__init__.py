"""Distributed campaign service: backends, scheduler, broker, HTTP API.

The campaign engine executes shards through a transport-agnostic
:class:`~repro.service.backend.ShardBackend`:

* :class:`~repro.service.local.LocalBackend` — one supervised
  ``mp.Process`` per lease on this host (the engine's default);
* :class:`~repro.service.broker.BrokerBackend` — a TCP work-queue
  broker leasing shards to connected ``repro-worker`` agents, with
  record streaming, re-lease on worker loss and work stealing.

:mod:`repro.service.serve` adds ``repro-serve``: an HTTP front door
that accepts campaign configs, runs them through either backend, and
serves progress and artifacts.

The package-wide invariant is inherited from the engine: per-run RNG is
keyed by run index, so the merged ``campaign.jsonl`` is byte-identical
at any worker/host count — including after steals, re-leases and worker
kills.
"""

from repro.service.backend import BackendEvent, LeaseResult, ShardBackend, ShardLease
from repro.service.scheduler import StealPolicy
from repro.service.wire import FrameDecoder, FrameError, decode_frame, encode_frame

__all__ = [
    "BackendEvent",
    "FrameDecoder",
    "FrameError",
    "LeaseResult",
    "ShardBackend",
    "ShardLease",
    "StealPolicy",
    "decode_frame",
    "encode_frame",
]
