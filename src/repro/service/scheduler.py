"""Transport-agnostic shard scheduling: leases, retries, steals, re-leases.

This loop is the generalisation of the engine's original process pool:
it keeps the fault-domain semantics (deterministic backoff, liveness
reaping, poison-run quarantine, no-progress abandonment) but talks to a
:class:`~repro.service.backend.ShardBackend` instead of ``mp.Process``
directly, so the same scheduler drives local worker processes and
remote ``repro-worker`` agents behind a broker.

Additions over the original pool, available when the backend supports
them:

* **record streaming** — completed runs arrive one ``rec`` event at a
  time, so a lease that dies mid-range is re-leased from its last
  delivered record, not from the start of the shard;
* **work stealing** — when every shard is leased and capacity is idle,
  the straggler lease with the most remaining runs is split at the
  midpoint of its remaining range (a pure function of its progress, so
  the split is deterministic given the same state) and the tail half is
  leased to the idle worker;
* **quarantine dedup** — a run is quarantined exactly once per
  campaign, keyed by ``(shard, run)``; every re-lease ships the full
  quarantine set, so a poison run is never re-executed on another host
  without its ``sandbox:`` failure event on record (events carry the
  lease id — the shard attempt — that triggered them).

None of this can change campaign records: per-run RNG is keyed by run
index, so a stolen, re-leased or duplicated run produces byte-identical
rows wherever and however often it executes; the scheduler merges by
run index and keeps the first copy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.carolfi.engine import (
    CHECKPOINT_VERSION,
    RetryPolicy,
    ShardFailure,
    ShardSpec,
    backoff_delay,
)
from repro.faults.outcome import DueKind
from repro.service.backend import BackendEvent, LeaseResult, ShardBackend, ShardLease
from repro.telemetry import Telemetry
from repro.telemetry.metrics import NULL_REGISTRY, Histogram
from repro.util.jsonlog import JsonlLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.carolfi.campaign import CampaignConfig
    from repro.carolfi.engine import FailureSink, _ConvergenceGate, _Heartbeat

__all__ = ["StealPolicy", "run_shards", "write_shard_checkpoint"]

#: Scheduler poll period while leases are in flight.
_POLL_S = 0.005


@dataclass(frozen=True)
class StealPolicy:
    """When to split a straggler lease's remaining range.

    With ``adaptive`` (the default) the straggler threshold is not a
    fixed run count but an estimate from the observed latency
    distribution: the scheduler keeps a per-worker EWMA of record
    inter-arrival gaps plus a fleet-wide latency histogram, and a lease
    is only split when the victim's expected remaining wall time
    (``remaining × ewma``) exceeds the larger of ``min_benefit_s``, the
    fleet's ``quantile`` latency, and four heartbeat round trips (the
    coordination cost of the split).  Workers with no latency evidence
    yet fall back to the fixed ``min_remaining`` floor.
    """

    enabled: bool = True

    min_remaining: int = 4
    """Evidence-free fallback: a worker that has not streamed a record
    yet is only split when at least this many runs remain; below that
    the steal costs more coordination than it saves."""

    adaptive: bool = True
    """Estimate the straggler threshold from observed latency instead
    of treating ``min_remaining`` alone as the bar."""

    quantile: float = 0.95
    """Fleet latency / heartbeat-RTT quantile used as the overhead
    estimate a steal must beat."""

    ewma_alpha: float = 0.25
    """Smoothing factor for the per-worker record-gap EWMA (1 = only
    the latest observation counts)."""

    min_benefit_s: float = 0.05
    """Absolute floor on the expected tail time worth stealing."""

    def __post_init__(self) -> None:
        if self.min_remaining < 2:
            raise ValueError("min_remaining must be >= 2 (victim and thief both keep work)")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_benefit_s < 0:
            raise ValueError("min_benefit_s must be >= 0")


@dataclass
class _Lease:
    """Runtime state of one active lease."""

    lease: ShardLease
    worker: str
    stop: int  # effective stop; shrinks when the lease is stolen from
    current_run: int | None = None
    done_through: int = -1  # last run index whose record arrived (streaming)
    last_beat: float = 0.0
    dispatched_mono: float = 0.0  # monotonic submit time (turnaround base)
    last_rec_mono: float | None = None  # monotonic arrival of latest record

    def __post_init__(self) -> None:
        self.done_through = self.lease.start - 1


@dataclass
class _Shard:
    """Book-keeping for one shard across all its leases."""

    spec: ShardSpec
    pending: list[tuple[int, int]] = field(default_factory=list)
    active: dict[str, _Lease] = field(default_factory=dict)
    rows: dict[int, dict[str, Any]] = field(default_factory=dict)
    skip: dict[int, tuple[str, str]] = field(default_factory=dict)
    deaths: dict[int, int] = field(default_factory=dict)
    attempts: int = 0
    lease_seq: int = 0
    no_progress: int = 0
    progress_mark: int = -1
    max_ok: int = -1
    started: bool = False
    finished: bool = False
    eligible_at: float = 0.0
    dispatched_at: float = 0.0

    def progress(self, streaming: bool) -> int:
        return len(self.rows) if streaming else self.max_ok

    def missing_runs(self) -> list[int]:
        return [k for k in self.spec.run_indices() if k not in self.rows]


def _contiguous_ranges(indices: list[int]) -> list[tuple[int, int]]:
    """Group sorted run indices into ``[start, stop)`` ranges."""
    ranges: list[tuple[int, int]] = []
    for k in indices:
        if ranges and ranges[-1][1] == k:
            ranges[-1] = (ranges[-1][0], k + 1)
        else:
            ranges.append((k, k + 1))
    return ranges


def write_shard_checkpoint(
    path: str, fingerprint: str, spec: ShardSpec, rows: Iterable[dict[str, Any]]
) -> None:
    """Write one complete shard checkpoint (header, records, done footer).

    Streaming backends deliver records to the scheduler instead of
    letting the executing worker write its own checkpoint file (the
    worker may be on another host); the scheduler persists the shard in
    the engine's existing checkpoint format once it completes, so
    resume works identically for local and distributed campaigns.
    """
    from pathlib import Path

    target = Path(path)
    target.unlink(missing_ok=True)
    with JsonlLog(target) as log:
        log.append(
            {
                "kind": "header",
                "version": CHECKPOINT_VERSION,
                "config_hash": fingerprint,
                "shard": spec.index,
                "start": spec.start,
                "stop": spec.stop,
            }
        )
        count = 0
        for row in rows:
            log.append({"kind": "record", "data": row})
            count += 1
        log.append({"kind": "done", "count": count})


def run_shards(
    config: "CampaignConfig",
    pending: list[ShardSpec],
    ckpt_file: Callable[[ShardSpec], str | None],
    fingerprint: str,
    heartbeat: "_Heartbeat",
    executed: dict[int, list[dict[str, Any]]],
    backend: ShardBackend,
    policy: RetryPolicy,
    sink: "FailureSink",
    tel: Telemetry,
    reporter: Any,
    gate: "_ConvergenceGate",
    steal: StealPolicy | None = None,
) -> None:
    """Drive ``pending`` shards to completion through ``backend``.

    Raises :class:`ShardFailure` when a shard keeps failing without
    making progress.  The backend is *not* closed on return — its
    lifetime belongs to the caller (a broker outlives the campaigns it
    serves) — but every lease this call opened is cancelled.
    """
    steal = steal or StealPolicy()
    streaming = backend.streams_records
    announce = streaming  # lease lifecycle events only exist off-host
    # Hand the backend the campaign's telemetry bundle before anything
    # is dispatched: a broker registers its fleet-only series here and
    # captures the campaign span context (run_shards executes inside it)
    # so lease frames can carry the trace across hosts.
    backend.attach_telemetry(tel)
    shard_done = tel.registry.gauge(
        "repro_shard_runs_done", help="Runs completed so far, by shard."
    )
    shard_seconds = tel.registry.histogram(
        "repro_shard_duration_seconds",
        help="Wall time of one shard execution (successful attempt).",
    )
    # Service counters exist only for distributed backends: a local
    # campaign's registry must stay counter-for-counter identical to its
    # serial twin (tested), and leases are invisible implementation
    # detail there anyway.
    if announce:
        lease_counter = tel.registry.counter(
            "repro_service_leases_total", help="Shard leases issued, by disposition."
        )
        steal_counter = tel.registry.counter(
            "repro_service_steals_total", help="Straggler leases split by work stealing."
        )
        turnaround_hist = tel.registry.histogram(
            "repro_service_lease_turnaround_seconds",
            help="Dispatch-to-done wall time of completed leases, by worker.",
        )
        run_latency_hist = tel.registry.histogram(
            "repro_service_run_latency_seconds",
            help="Gap between consecutive streamed records of a lease, by worker.",
        )
        slowest_gauge = tel.registry.gauge(
            "repro_service_lease_slowest_seconds",
            help="Slowest completed lease turnaround so far, by worker.",
        )
    else:
        lease_counter = NULL_REGISTRY.counter("repro_service_leases_total")
        steal_counter = NULL_REGISTRY.counter("repro_service_steals_total")
        turnaround_hist = NULL_REGISTRY.histogram("repro_service_lease_turnaround_seconds")
        run_latency_hist = NULL_REGISTRY.histogram("repro_service_run_latency_seconds")
        slowest_gauge = NULL_REGISTRY.gauge("repro_service_lease_slowest_seconds")
    # Adaptive-steal evidence lives outside the registry so the
    # estimator works even with telemetry disabled (the broker
    # byte-identity drills): a per-worker EWMA of record gaps plus one
    # private fleet-wide latency histogram for the quantile threshold.
    worker_ewma: dict[str, float] = {}
    slowest_by_worker: dict[str, float] = {}
    fleet_latency = Histogram("fleet_run_latency_seconds")
    rtt_hist: Histogram | None = None
    if announce and tel.registry.enabled:
        for metric in tel.registry.metrics():
            if metric.name == "repro_service_heartbeat_rtt_seconds" and isinstance(
                metric, Histogram
            ):
                rtt_hist = metric  # registered by the broker's attach hook

    shards = {
        spec.index: _Shard(spec=spec, pending=[(spec.start, spec.stop)]) for spec in pending
    }
    lease_to_shard: dict[str, int] = {}
    quarantined: set[tuple[int, int]] = set()

    def dispatch(shard: _Shard, start: int, stop: int, now: float) -> None:
        shard.attempts += 1
        shard.lease_seq += 1
        lease_id = f"s{shard.spec.index:05d}.{shard.lease_seq}"
        lease = ShardLease(
            lease_id=lease_id,
            shard_index=shard.spec.index,
            start=start,
            stop=stop,
            attempt=shard.attempts,
            skip={k: v for k, v in shard.skip.items() if start <= k < stop},
            checkpoint_file=None if streaming else ckpt_file(shard.spec),
        )
        worker = backend.submit(lease)
        state = _Lease(
            lease=lease, worker=worker, stop=stop, last_beat=now, dispatched_mono=now
        )
        shard.active[lease_id] = state
        shard.dispatched_at = time.perf_counter()
        lease_to_shard[lease_id] = shard.spec.index
        lease_counter.inc(event="issued")
        if announce:
            sink(
                {
                    "event": "lease",
                    "shard": shard.spec.index,
                    "lease": lease_id,
                    "worker": worker,
                    "start": start,
                    "stop": stop,
                    "attempt": shard.attempts,
                    "resume_from": start if start > shard.spec.start else None,
                }
            )
        if not shard.started:
            shard.started = True
            heartbeat.emit("started", shard.spec)

    def finish_shard(shard: _Shard) -> None:
        index = shard.spec.index
        if streaming:
            rows = [shard.rows[k] for k in shard.spec.run_indices()]
            path = ckpt_file(shard.spec)
            if path is not None:
                write_shard_checkpoint(path, fingerprint, shard.spec, rows)
            executed[index] = rows
        # Non-streaming backends stored the rows wholesale in the done
        # result handler before calling finish_shard.
        shard.finished = True
        heartbeat.record_done(shard.spec.size, live=True)
        heartbeat.emit("finished", shard.spec)
        shard_done.set(shard.spec.size, shard=index)
        if tel.registry.enabled:
            shard_seconds.observe(time.perf_counter() - shard.dispatched_at)
        gate.mark_complete(index)

    def quarantine(shard: _Shard, run: int, due_kind: DueKind, detail: str, lease_id: str) -> bool:
        """Record one poison run exactly once; True if newly quarantined.

        Dedupe by ``(shard, run)``: concurrent leases (a victim and its
        thief, or racing re-leases) may both die on the same run, but
        only the first death past the threshold emits the quarantine
        event and extends the skip set — a shard re-leased to another
        host never silently skips a run without its ``sandbox:`` event
        on record.
        """
        key = (shard.spec.index, run)
        if key in quarantined:
            return False
        quarantined.add(key)
        count = shard.deaths.get(run, 0)
        shard.skip[run] = (
            due_kind.value,
            f"sandbox: quarantined after {count} shard-worker deaths ({detail})",
        )
        sink(
            {
                "event": "quarantine",
                "shard": shard.spec.index,
                "run": run,
                "detail": detail,
                **({"lease": lease_id} if announce else {}),
            }
        )
        lease_counter.inc(event="quarantine")
        heartbeat.emit("quarantined", shard.spec, detail=f"run {run}: {detail}")
        return True

    def handle_failure(shard: _Shard, state: _Lease, detail: str, reaped: bool) -> None:
        index = shard.spec.index
        lease_id = state.lease.lease_id
        run = state.current_run
        due_kind = DueKind.HANG if reaped else DueKind.CRASH
        progressed = shard.progress(streaming) > shard.progress_mark
        shard.progress_mark = max(shard.progress(streaming), shard.progress_mark)
        if run is not None:
            count = shard.deaths[run] = shard.deaths.get(run, 0) + 1
            sink(
                {
                    "event": "worker_death",
                    "shard": index,
                    "run": run,
                    "attempt": shard.attempts,
                    "deaths": count,
                    "detail": detail,
                    **({"lease": lease_id, "worker": state.worker} if announce else {}),
                }
            )
            if count >= policy.max_run_deaths and quarantine(
                shard, run, due_kind, detail, lease_id
            ):
                progressed = True
        else:
            sink(
                {
                    "event": "worker_death",
                    "shard": index,
                    "run": None,
                    "attempt": shard.attempts,
                    "detail": detail,
                    **({"lease": lease_id, "worker": state.worker} if announce else {}),
                }
            )
        if progressed:
            shard.no_progress = 0
        else:
            shard.no_progress += 1
            if shard.no_progress >= policy.max_attempts:
                sink(
                    {
                        "event": "shard_failed",
                        "shard": index,
                        "attempt": shard.attempts,
                        "detail": detail,
                    }
                )
                heartbeat.emit("failed", shard.spec, detail=detail)
                raise ShardFailure(index, shard.attempts, detail)
        delay = backoff_delay(config.seed, index, shard.attempts, policy)
        sink(
            {
                "event": "retry",
                "shard": index,
                "attempt": shard.attempts,
                "delay_s": round(delay, 3),
                "detail": detail,
            }
        )
        heartbeat.emit("retried", shard.spec, detail=detail)
        shard.eligible_at = time.monotonic() + delay
        # Re-queue what the dead lease still owed.  Streaming backends
        # resume from the last delivered record; others re-run the
        # whole range (their records only arrive wholesale at "done").
        resume = max(state.done_through + 1, state.lease.start) if streaming else state.lease.start
        if resume < state.stop:
            shard.pending.append((resume, state.stop))
            if announce:
                sink(
                    {
                        "event": "re_lease",
                        "shard": index,
                        "lease": lease_id,
                        "resume_from": resume,
                        "stop": state.stop,
                        "detail": detail,
                    }
                )
                lease_counter.inc(event="re_lease")

    def drop_lease(shard: _Shard, lease_id: str) -> _Lease:
        state = shard.active.pop(lease_id)
        lease_to_shard.pop(lease_id, None)
        return state

    def handle_result(result: LeaseResult, now: float) -> None:
        index = lease_to_shard.get(result.lease_id)
        if index is None:
            return  # cancelled lease racing its own result: already judged
        shard = shards[index]
        state = drop_lease(shard, result.lease_id)
        if result.status == "done":
            lease_counter.inc(event="done")
            turnaround = max(0.0, now - state.dispatched_mono)
            turnaround_hist.observe(turnaround, worker=state.worker)
            if turnaround > slowest_by_worker.get(state.worker, 0.0):
                slowest_by_worker[state.worker] = turnaround
                slowest_gauge.set(round(turnaround, 6), worker=state.worker)
            if announce:
                sink(
                    {
                        "event": "lease_done",
                        "shard": index,
                        "lease": result.lease_id,
                        "worker": state.worker,
                        "runs": state.stop - state.lease.start,
                    }
                )
            if streaming:
                # The lease's own range must be covered; other leases
                # (after a steal) may still owe their halves.
                missing = shard.missing_runs()
                owed = {
                    k
                    for other in shard.active.values()
                    for k in range(max(other.done_through + 1, other.lease.start), other.stop)
                }
                stray = [k for k in missing if k not in owed]
                for start, stop in _contiguous_ranges(stray):
                    shard.pending.append((start, stop))
                if not missing and not shard.active:
                    finish_shard(shard)
            else:
                assert result.rows is not None
                executed[index] = result.rows
                finish_shard(shard)
        elif result.status == "error":
            state.current_run = (
                result.error_run if result.error_run is not None else state.current_run
            )
            handle_failure(shard, state, result.detail, reaped=False)
        else:  # dead
            handle_failure(shard, state, result.detail, reaped=False)
        if streaming and not shard.finished and not shard.active and not shard.pending:
            missing = shard.missing_runs()
            if not missing:
                finish_shard(shard)

    def handle_event(event: BackendEvent, now: float) -> None:
        if event.kind == "metrics":
            tel.registry.merge(event.payload)
            return
        if event.kind == "spans":
            for record in event.payload:
                tel.trace_write(record)
            return
        if event.kind == "worker":
            if announce:
                sink(dict(event.payload))
            return
        index = lease_to_shard.get(event.lease_id or "")
        if index is None:
            return
        shard = shards[index]
        state = shard.active.get(event.lease_id or "")
        if state is None:
            return  # stale event from a lease judged earlier this drain
        state.last_beat = now
        if event.kind == "run":
            state.current_run = event.run
        elif event.kind == "ok":
            state.current_run = None
            assert event.run is not None
            shard.max_ok = max(shard.max_ok, event.run)
            shard_done.set(event.run - shard.spec.start + 1, shard=index)
        elif event.kind == "rec":
            state.current_run = None
            assert event.run is not None and event.row is not None
            # Keep-first: duplicates (steal overshoot) are byte-identical.
            shard.rows.setdefault(event.run, event.row)
            state.done_through = max(state.done_through, event.run)
            shard_done.set(len(shard.rows), shard=index)
            # Record-gap latency: evidence for the adaptive stealer and
            # the per-worker run-latency histogram.
            gap = now - (
                state.last_rec_mono if state.last_rec_mono is not None else state.dispatched_mono
            )
            state.last_rec_mono = now
            if gap >= 0:
                fleet_latency.observe(gap)
                run_latency_hist.observe(gap, worker=state.worker)
                prev = worker_ewma.get(state.worker)
                worker_ewma[state.worker] = (
                    gap
                    if prev is None
                    else steal.ewma_alpha * gap + (1.0 - steal.ewma_alpha) * prev
                )
        elif event.kind == "failure":
            sink({"shard": index, **event.payload})

    def steal_overhead() -> tuple[float, float | None, float | None]:
        """``(overhead_s, fleet_q, rtt_q)`` — the latency bar a steal must beat.

        The overhead estimate is the largest of the policy's absolute
        floor, the fleet's ``quantile`` record latency (a healthy worker
        would clear that much tail itself almost immediately) and four
        heartbeat round trips (shrink + re-lease coordination cost).
        """
        fleet_q = fleet_latency.quantile(steal.quantile)
        rtt_q = rtt_hist.quantile(steal.quantile) if rtt_hist is not None else None
        overhead = steal.min_benefit_s
        if fleet_q is not None:
            overhead = max(overhead, fleet_q)
        if rtt_q is not None:
            overhead = max(overhead, 4.0 * rtt_q)
        return overhead, fleet_q, rtt_q

    def try_steal(now: float) -> None:
        if not (backend.supports_steal and steal.enabled):
            return
        if any(s.pending for s in shards.values()) or backend.capacity() < 1:
            return
        overhead, fleet_q, rtt_q = (
            steal_overhead() if steal.adaptive else (0.0, None, None)
        )
        # Candidate score: the victim's expected remaining wall time
        # (runs × EWMA latency) when latency evidence exists, else the
        # raw remaining-run count behind the fixed min_remaining floor.
        best: tuple[float, _Shard, _Lease, int, float | None, str] | None = None
        for shard in shards.values():
            for state in shard.active.values():
                remaining = state.stop - (state.done_through + 1)
                if remaining < 2:  # victim and thief both keep work
                    continue
                latency = worker_ewma.get(state.worker) if steal.adaptive else None
                if latency is None:
                    if remaining < steal.min_remaining:
                        continue
                    score, estimator = float(remaining), "fixed"
                else:
                    expected = remaining * latency
                    if expected < overhead:
                        continue
                    score, estimator = expected, "ewma"
                if best is None or score > best[0]:
                    best = (score, shard, state, remaining, latency, estimator)
        if best is None:
            return
        _score, shard, victim, remaining, latency, estimator = best
        next_undone = victim.done_through + 1
        mid = next_undone + (remaining + 1) // 2  # victim keeps the in-flight half
        if mid >= victim.stop or not backend.shrink(victim.lease.lease_id, mid):
            return
        old_stop = victim.stop
        victim.stop = mid
        steal_counter.inc()
        lease_counter.inc(event="steal")
        sink(
            {
                "event": "steal",
                "shard": shard.spec.index,
                "victim": victim.lease.lease_id,
                "victim_worker": victim.worker,
                "split": mid,
                "stop": old_stop,
                # Evidence behind the decision: what was observed, what
                # threshold it had to beat, and which estimator judged it.
                "estimator": estimator,
                "remaining": remaining,
                "observed_latency_s": None if latency is None else round(latency, 6),
                "expected_tail_s": None if latency is None else round(remaining * latency, 6),
                "threshold_s": round(overhead, 6) if steal.adaptive else None,
                "fleet_latency_q": None if fleet_q is None else round(fleet_q, 6),
                "heartbeat_rtt_q": None if rtt_q is None else round(rtt_q, 6),
                "quantile": steal.quantile if steal.adaptive else None,
            }
        )
        heartbeat.emit(
            "stolen",
            shard.spec,
            detail=f"lease {victim.lease.lease_id} split at run {mid} ({estimator})",
        )
        dispatch(shard, mid, old_stop, now)

    try:
        while not gate.stopped and any(not s.finished for s in shards.values()):
            now = time.monotonic()
            reporter.tick()
            for event in backend.heartbeats():
                handle_event(event, now)
            for result in backend.results():
                handle_result(result, now)
            # Liveness: a lease whose executor sent nothing for too long
            # is reaped — cancelled at the backend, its in-flight run
            # charged a death, its remaining range re-queued.
            for shard in shards.values():
                for lease_id, state in list(shard.active.items()):
                    if now - state.last_beat <= policy.liveness_timeout_s:
                        continue
                    sink(
                        {
                            "event": "reap",
                            "shard": shard.spec.index,
                            "run": state.current_run,
                            "attempt": shard.attempts,
                            "detail": f"no heartbeat for "
                            f"{policy.liveness_timeout_s:.0f}s; worker killed",
                            **({"lease": lease_id, "worker": state.worker} if announce else {}),
                        }
                    )
                    heartbeat.emit(
                        "reaped",
                        shard.spec,
                        detail=f"no heartbeat for {policy.liveness_timeout_s:.0f}s",
                    )
                    backend.cancel(lease_id, reap=True)
                    drop_lease(shard, lease_id)
                    handle_failure(
                        shard,
                        state,
                        f"hung: no heartbeat for {policy.liveness_timeout_s:.0f}s; "
                        "worker reaped",
                        reaped=True,
                    )
            # Dispatch pending ranges into free capacity, shard order.
            while backend.capacity() > 0:
                ready = next(
                    (
                        s
                        for s in sorted(shards.values(), key=lambda s: s.spec.index)
                        if s.pending and s.eligible_at <= now and not s.finished
                    ),
                    None,
                )
                if ready is None:
                    break
                start, stop = ready.pending.pop(0)
                dispatch(ready, start, stop, now)
            try_steal(now)
            if any(not s.finished for s in shards.values()) and not gate.stopped:
                time.sleep(_POLL_S)
    finally:
        # A converged gate (or a raised ShardFailure) ends the campaign:
        # in-flight leases beyond the stop point are abandoned (their
        # partial checkpoints are simply re-run on a later resume).
        for shard in shards.values():
            for lease_id in list(shard.active):
                backend.cancel(lease_id)
                drop_lease(shard, lease_id)
