"""Tagged JSONL wire frames shared by the heartbeat pipe and the broker socket.

The campaign engine's worker protocol has always been "small JSON-able
dicts over a byte channel" — heartbeats, metric deltas, span batches,
failure events, record rows.  This module gives those dicts one framed
wire format usable on *any* transport:

* a frame is one line: ``<length>:<crc32>:<payload-json>\\n``, where
  ``length`` is the byte length of the payload and ``crc32`` its
  zlib CRC-32 in 8 hex digits;
* a corrupted, truncated or interleaved frame is **detectable** (the
  tag no longer matches the payload) instead of silently parsing into
  the wrong record — plain JSONL can only ever detect a damaged
  *trailing* line;
* frames are self-delimiting on stream transports: the
  :class:`FrameDecoder` reassembles frames from arbitrary byte chunks,
  tolerates a partial trailing frame (the writer may still be mid-
  ``write``), and counts every frame it had to skip.

Used by the local engine's heartbeat pipe
(:mod:`repro.service.local`; ``Connection.send_bytes`` is message-
oriented, so only the tag validation matters there) and by the broker's
TCP socket (:mod:`repro.service.broker`; stream-oriented, so the
decoder does the reassembly too).
"""

from __future__ import annotations

import json
import zlib
from typing import Any

__all__ = [
    "FrameError",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "decode_frame",
    "encode_frame",
]

#: Upper bound on one frame's payload; a tag announcing more than this
#: is treated as corruption, not as an instruction to buffer forever.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ValueError):
    """A frame failed its length/checksum validation or JSON parse."""


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Encode one dict as a tagged frame line (length + CRC-32 + JSON)."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return b"%d:%08x:%s\n" % (len(payload), zlib.crc32(payload), payload)


def decode_frame(data: bytes) -> dict[str, Any]:
    """Decode one complete frame (with or without the trailing newline).

    Raises :class:`FrameError` on any mismatch between the tag and the
    payload — a short read, a torn write, two interleaved frames — so a
    damaged frame can never be mistaken for a valid record.
    """
    line = data.rstrip(b"\n")
    head, sep, rest = line.partition(b":")
    if not sep:
        raise FrameError("frame has no length tag")
    crc_hex, sep, payload = rest.partition(b":")
    if not sep:
        raise FrameError("frame has no checksum tag")
    try:
        length = int(head)
        crc = int(crc_hex, 16)
    except ValueError as exc:
        raise FrameError(f"unparseable frame tag {head!r}:{crc_hex!r}") from exc
    if length < 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} out of bounds")
    if len(payload) != length:
        raise FrameError(f"frame payload is {len(payload)} bytes, tag says {length}")
    if zlib.crc32(payload) != crc:
        raise FrameError("frame checksum mismatch")
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise FrameError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame payload must be a dict, got {type(obj).__name__}")
    return obj


class FrameDecoder:
    """Reassembles tagged frames from an arbitrary byte stream.

    Feed it whatever the transport hands you; it returns every complete,
    valid frame and keeps the (possibly partial) tail buffered.  Damage
    is contained to the damaged line: a frame that fails validation is
    skipped and counted (:attr:`skipped`), and decoding resynchronises
    at the next newline — the property plain JSONL lacks for anything
    but the final line.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.skipped = 0

    @property
    def pending(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data``; return every complete valid frame it closed."""
        self._buffer.extend(data)
        frames: list[dict[str, Any]] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                # An impossible tag in the partial tail will never become
                # a valid frame: drop it now so the buffer cannot grow
                # without bound on a hostile or desynchronised stream.
                if len(self._buffer) > MAX_FRAME_BYTES:
                    self._buffer.clear()
                    self.skipped += 1
                return frames
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if not line:
                continue
            try:
                frames.append(decode_frame(line))
            except FrameError:
                self.skipped += 1
