"""The transport-agnostic shard backend protocol.

The campaign scheduler (:mod:`repro.service.scheduler`) never talks to
processes, pipes or sockets directly: it leases contiguous run ranges
to a :class:`ShardBackend` and reacts to the events the backend drains
back.  Two implementations exist:

* :class:`repro.service.local.LocalBackend` — the engine's original
  fault-domain machinery: one disposable ``mp.Process`` per lease,
  heartbeats over a pipe;
* :class:`repro.service.broker.BrokerBackend` — a TCP work-queue
  server leasing shards to connected ``repro-worker`` agents, with
  per-record streaming, work stealing and re-lease on worker loss.

A **lease** is one attempt to execute one contiguous run range of one
shard.  A shard may be covered by several leases over its lifetime
(retries after a worker death, a steal splitting a straggler's
remaining range); the scheduler owns that bookkeeping, the backend only
executes leases and reports what happened to them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BackendEvent",
    "LeaseResult",
    "ShardBackend",
    "ShardLease",
]


@dataclass(frozen=True)
class ShardLease:
    """One attempt to execute the run range ``[start, stop)`` of a shard.

    ``start`` is the *resume point*, not necessarily the shard's first
    run index: a re-lease after a worker death starts where the dead
    lease's streamed records end, and a lease minted by a steal starts
    at the split point.  ``skip`` maps quarantined run indices to their
    ``(due_kind, detail)`` — the executing worker records them as
    synthetic DUEs without running them, on whatever host the lease
    lands.
    """

    lease_id: str
    shard_index: int
    start: int
    stop: int
    attempt: int
    skip: dict[int, tuple[str, str]] = field(default_factory=dict)
    checkpoint_file: str | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bad lease range [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class BackendEvent:
    """One incremental event drained from a backend.

    ``kind`` is one of:

    * ``"run"`` — the lease began executing run ``run`` (liveness beat);
    * ``"ok"`` — run ``run`` completed (non-streaming backends);
    * ``"rec"`` — run ``run`` completed and ``row`` is its record dict
      (streaming backends);
    * ``"metrics"`` / ``"spans"`` — a telemetry delta / span batch in
      ``payload``;
    * ``"failure"`` — a worker-side failure event dict in ``payload``;
    * ``"worker"`` — worker membership changed (connected/lost);
      ``payload`` is the event dict, ``lease_id`` is ``None``.
    """

    kind: str
    lease_id: str | None = None
    run: int | None = None
    row: dict[str, Any] | None = None
    payload: Any = None


@dataclass(frozen=True)
class LeaseResult:
    """Terminal outcome of one lease attempt.

    ``status`` is ``"done"`` (range fully executed; ``rows`` carries the
    record dicts unless the backend streamed them), ``"error"`` (one
    run raised an exception that escaped the crash net; ``error_run``
    attributes it) or ``"dead"`` (the executor vanished — process exit,
    connection loss — without reporting).
    """

    lease_id: str
    status: str
    rows: list[dict[str, Any]] | None = None
    detail: str = ""
    error_run: int | None = None
    worker: str = ""


class ShardBackend(abc.ABC):
    """Executes shard leases somewhere; the scheduler does not care where."""

    #: Whether :meth:`shrink` can split a running lease's remaining
    #: range (work stealing).  Backends whose executors cannot be
    #: re-scoped mid-flight leave this False.
    supports_steal: bool = False

    #: Whether completed runs stream back one ``"rec"`` event at a time.
    #: Streaming backends can resume a failed lease from its last
    #: delivered record; non-streaming ones re-run the whole range.
    streams_records: bool = False

    def attach_telemetry(self, telemetry: Any) -> None:
        """Optional hook: the scheduler hands over the campaign's
        :class:`~repro.telemetry.Telemetry` bundle before dispatching.

        Backends that observe fleet state the scheduler cannot see
        (worker membership, heartbeat round trips) register their
        fleet-only series on the campaign registry here, and backends
        that ship work to other hosts capture the current span context
        so remote executors can continue the campaign trace.  The
        default is a no-op — local backends receive telemetry at
        construction and have nothing host-level to add.
        """

    @abc.abstractmethod
    def capacity(self) -> int:
        """Free executor slots right now (0 = submit would have to wait)."""

    @abc.abstractmethod
    def submit(self, lease: ShardLease) -> str:
        """Dispatch a lease to an executor; returns a worker label."""

    @abc.abstractmethod
    def heartbeats(self) -> list[BackendEvent]:
        """Drain incremental events (runs, records, telemetry, failures)."""

    @abc.abstractmethod
    def results(self) -> list[LeaseResult]:
        """Drain terminal lease outcomes (done / error / dead)."""

    @abc.abstractmethod
    def cancel(self, lease_id: str, *, reap: bool = False) -> None:
        """Abandon a lease.  ``reap`` kills an unresponsive executor
        outright (the liveness path); a cancelled lease emits no
        further events and no result."""

    def shrink(self, lease_id: str, new_stop: int) -> bool:
        """Narrow a running lease to ``[start, new_stop)`` (steal prep).

        Best-effort: the executor may already be past ``new_stop``; any
        overshoot produces byte-identical duplicate records the
        scheduler deduplicates.  Returns False when unsupported.
        """
        return False

    @abc.abstractmethod
    def close(self) -> None:
        """Release every executor and transport resource."""

    def __enter__(self) -> "ShardBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
