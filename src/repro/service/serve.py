"""repro-serve: an HTTP front door for injection campaigns.

Clients POST a campaign config — either the artifact's INI format
(Appendix A.4) or the JSON wire form of
:meth:`~repro.carolfi.campaign.CampaignConfig.to_wire` — and get back a
job id.  Jobs run one at a time in a background thread (campaign
determinism makes queueing trivial: nothing about a result depends on
*when* it ran), each in its own directory with the engine's full
artifact set: ``campaign.jsonl``, ``failures.jsonl``, per-shard
checkpoints, and a final metrics snapshot.

Progress is assembled from the live telemetry registry (merged worker
counters) plus the engine's heartbeat callback, so ``GET
/campaigns/<id>`` reports done/total runs, rate and outcome mix while
the campaign is still running, and ``/stream`` pushes those snapshots
as JSON lines until the job ends.

The HTTP layer is a small stdlib ``asyncio`` server (no framework, no
dependency): request framing is strict (content-length required for
bodies), responses are JSON except the artifact downloads, and every
connection closes after one exchange.

Routes::

    POST /campaigns                  INI or JSON config -> {"id": ...}
    GET  /campaigns                  job list
    GET  /campaigns/<id>             status + progress + outcome counters
    GET  /campaigns/<id>/stream      JSONL progress until terminal
    GET  /campaigns/<id>/log         merged campaign.jsonl (when done)
    GET  /campaigns/<id>/failures    failure-event JSONL
    GET  /campaigns/<id>/metrics     registry snapshot (live)
    GET  /metrics                    Prometheus scrape: all jobs merged

``/metrics`` is the fleet scrape endpoint: every job's live registry —
for a broker-backed job that includes the continuously merged worker
deltas and the broker's fleet series — folded into one exposition-text
page, each sample labelled with its ``job`` id.

With ``--broker-port`` each campaign executes through a
:class:`~repro.service.broker.BrokerBackend` bound to that port and
remote ``repro-worker`` agents do the work; otherwise the local
fault-domain pool runs it in-process.  ``--broker-metrics-port``
additionally exposes the broker's own ``/metrics`` scrape endpoint.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import queue
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.carolfi.campaign import CampaignConfig
from repro.carolfi.configfile import parse_config_text
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.exporters import prometheus_text, snapshot_record, write_metrics_file
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["CampaignService", "main"]


@dataclass
class CampaignJob:
    """One submitted campaign and everything known about it."""

    job_id: str
    config: CampaignConfig
    workers: int
    job_dir: Path
    status: str = "queued"  # queued | running | done | failed
    error: str = ""
    records: int = 0
    stopped_early: bool = False
    progress: dict[str, Any] = field(default_factory=dict)
    telemetry: Telemetry | None = None

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def summary(self) -> dict[str, Any]:
        out = {
            "id": self.job_id,
            "status": self.status,
            "benchmark": self.config.benchmark,
            "injections": self.config.injections,
            "seed": self.config.seed,
            "workers": self.workers,
            "records": self.records,
            "stopped_early": self.stopped_early,
            "progress": self.progress,
        }
        if self.error:
            out["error"] = self.error
        tel = self.telemetry
        if tel is not None and tel.registry.enabled:
            try:
                counters = tel.registry.counter_values()
            except RuntimeError:  # pragma: no cover — racing a writer
                counters = {}
            out["outcomes"] = counters.get("repro_records_total", {}) or counters.get(
                "repro_runs_total", {}
            )
        return out


class CampaignService:
    """The job store, the runner thread, and the HTTP server."""

    def __init__(
        self,
        data_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        broker_host: str = "127.0.0.1",
        broker_port: int | None = None,
        broker_metrics_port: int | None = None,
    ):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.default_workers = workers
        self.broker_host = broker_host
        self.broker_port = broker_port
        self.broker_metrics_port = broker_metrics_port
        self.jobs: dict[str, CampaignJob] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._runner: threading.Thread | None = None
        self._http: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._seq = 0

    # -- job lifecycle --------------------------------------------------------

    def submit(self, config: CampaignConfig, workers: int | None = None) -> CampaignJob:
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq:04d}"
            job = CampaignJob(
                job_id=job_id,
                config=config,
                workers=workers or self.default_workers,
                job_dir=self.data_dir / job_id,
            )
            self.jobs[job_id] = job
            self._order.append(job_id)
        job.job_dir.mkdir(parents=True, exist_ok=True)
        self._queue.put(job_id)
        return job

    def _run_jobs(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            self._run_one(self.jobs[job_id])

    def _run_one(self, job: CampaignJob) -> None:
        from repro.carolfi.engine import campaign_fingerprint, run_sharded_campaign

        tel = Telemetry(TelemetryConfig())
        job.telemetry = tel
        job.status = "running"

        def on_progress(p: Any) -> None:
            job.progress = {
                "event": p.event,
                "shard": p.shard_index,
                "shards": p.shard_count,
                "done_runs": p.done_runs,
                "total_runs": p.total_runs,
                "elapsed_s": round(p.elapsed_s, 3),
                "rate": round(p.rate, 3),
            }

        backend = None
        try:
            if self.broker_port is not None:
                from repro.service.broker import BrokerBackend

                backend = BrokerBackend(
                    job.config,
                    campaign_fingerprint(job.config, None),
                    host=self.broker_host,
                    port=self.broker_port,
                    metrics_port=self.broker_metrics_port,
                )
            result = run_sharded_campaign(
                job.config,
                workers=job.workers,
                checkpoint_dir=job.job_dir / "checkpoints",
                log_path=job.job_dir / "campaign.jsonl",
                failure_log=job.job_dir / "failures.jsonl",
                telemetry=tel,
                progress=on_progress,
                backend=backend,
            )
            job.records = len(result.records)
            job.stopped_early = result.stopped_early
            write_metrics_file(tel.registry, job.job_dir / "metrics.json")
            job.status = "done"
        except Exception as exc:  # noqa: BLE001 — job failure is a result
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "failed"
        finally:
            if backend is not None:
                backend.close()

    def _fleet_registry(self) -> MetricsRegistry:
        """Every job's live registry merged into one, samples labelled ``job``.

        The ``job`` label keeps jobs' series apart (merging would
        otherwise add their counters together) and lets one scrape
        follow a whole fleet of campaigns.  Snapshots race the runner
        thread's writes; a registry that grew a series mid-iteration
        raises ``RuntimeError`` and that job is retried, then skipped
        for this scrape.
        """
        merged = MetricsRegistry()
        with self._lock:
            jobs = [(job_id, self.jobs[job_id].telemetry) for job_id in self._order]
        for job_id, tel in jobs:
            if tel is None or not tel.registry.enabled:
                continue
            snap: dict[str, Any] | None = None
            for _attempt in range(3):
                try:
                    snap = tel.registry.snapshot()
                    break
                except RuntimeError:  # pragma: no cover — racing a writer
                    continue
            if snap is None:  # pragma: no cover — persistent race
                continue
            for wire in snap.values():
                for pair in wire.get("values", []):
                    pair[0] = list(pair[0]) + [["job", job_id]]
            merged.merge(snap)
        return merged

    # -- HTTP ----------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await self._read_request(reader)
        except (asyncio.IncompleteReadError, ValueError, ConnectionError):
            writer.close()
            return
        try:
            await self._route(method, path, body, writer)
        except ConnectionError:  # pragma: no cover — client went away
            pass
        except Exception as exc:  # noqa: BLE001 — one bad request, not the server
            try:
                await self._respond_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except ConnectionError:  # pragma: no cover
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # client gone or server stopping: nothing left to say

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line: {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _route(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "POST" and path == "/campaigns":
            await self._post_campaign(body, writer)
            return
        if method != "GET":
            await self._respond_json(writer, 405, {"error": "method not allowed"})
            return
        if path == "/metrics":
            body = prometheus_text(self._fleet_registry()).encode("utf-8")
            writer.write(
                f"HTTP/1.1 200 OK\r\n"
                f"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1")
                + body
            )
            await writer.drain()
            return
        if path == "/campaigns":
            with self._lock:
                jobs = [self.jobs[j].summary() for j in self._order]
            await self._respond_json(writer, 200, {"campaigns": jobs})
            return
        if path.startswith("/campaigns/"):
            rest = path[len("/campaigns/") :]
            job_id, _, artifact = rest.partition("/")
            job = self.jobs.get(job_id)
            if job is None:
                await self._respond_json(writer, 404, {"error": f"no job {job_id}"})
                return
            if not artifact:
                await self._respond_json(writer, 200, job.summary())
            elif artifact == "stream":
                await self._stream_progress(job, writer)
            elif artifact == "log":
                await self._respond_file(
                    writer, job.job_dir / "campaign.jsonl", ready=job.status == "done"
                )
            elif artifact == "failures":
                await self._respond_file(
                    writer, job.job_dir / "failures.jsonl", ready=True, default=b""
                )
            elif artifact == "metrics":
                tel = job.telemetry
                snap = (
                    snapshot_record(tel.registry)
                    if tel is not None and tel.registry.enabled
                    else {}
                )
                await self._respond_json(writer, 200, snap)
            else:
                await self._respond_json(writer, 404, {"error": f"no artifact {artifact}"})
            return
        await self._respond_json(writer, 404, {"error": f"no route {path}"})

    async def _post_campaign(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            await self._respond_json(writer, 400, {"error": "body must be UTF-8"})
            return
        workers: int | None = None
        try:
            if text.lstrip().startswith("{"):
                payload = json.loads(text)
                if not isinstance(payload, dict):
                    raise ValueError("JSON body must be an object")
                if "config" in payload:
                    if payload.get("workers") is not None:
                        workers = int(payload["workers"])
                    config = CampaignConfig.from_wire(dict(payload["config"]))
                else:
                    config = CampaignConfig.from_wire(payload)
            else:
                config, _log = parse_config_text(text)
        except (ValueError, KeyError, TypeError) as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        job = self.submit(config, workers=workers)
        await self._respond_json(
            writer,
            202,
            {
                "id": job.job_id,
                "status": job.status,
                "links": {
                    "self": f"/campaigns/{job.job_id}",
                    "stream": f"/campaigns/{job.job_id}/stream",
                    "log": f"/campaigns/{job.job_id}/log",
                    "failures": f"/campaigns/{job.job_id}/failures",
                    "metrics": f"/campaigns/{job.job_id}/metrics",
                },
            },
        )

    async def _stream_progress(
        self, job: CampaignJob, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/jsonl\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        last: Any = None
        while True:
            snapshot = job.summary()
            if snapshot != last:
                writer.write(json.dumps(snapshot, sort_keys=True).encode() + b"\n")
                await writer.drain()
                last = snapshot
            if job.terminal:
                return
            await asyncio.sleep(0.1)

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error"}
        writer.write(
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
            + body
        )
        await writer.drain()

    async def _respond_file(
        self,
        writer: asyncio.StreamWriter,
        path: Path,
        *,
        ready: bool,
        default: bytes | None = None,
    ) -> None:
        if not ready or not path.exists():
            if default is not None and ready:
                data = default
            else:
                await self._respond_json(
                    writer, 409 if not ready else 404, {"error": "artifact not ready"}
                )
                return
        else:
            data = path.read_bytes()
        writer.write(
            f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: application/jsonl\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
            + data
        )
        await writer.drain()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "CampaignService":
        """Start the runner thread and the HTTP server (background)."""
        self._runner = threading.Thread(
            target=self._run_jobs, name="repro-serve-jobs", daemon=True
        )
        self._runner.start()
        self._http = threading.Thread(
            target=self._serve_http, name="repro-serve-http", daemon=True
        )
        self._http.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("repro-serve HTTP server failed to start")
        return self

    def _serve_http(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            server = await asyncio.start_server(self._handle, self.host, self.port)
            self.port = server.sockets[0].getsockname()[1]
            self._started.set()
            async with server:
                await server.serve_forever()

        try:
            loop.run_until_complete(_main())
        except asyncio.CancelledError:  # pragma: no cover — normal stop
            pass
        finally:
            loop.close()

    def stop(self) -> None:
        self._queue.put(None)
        loop = self._loop
        if loop is not None and loop.is_running():
            for task in asyncio.all_tasks(loop):
                loop.call_soon_threadsafe(task.cancel)
        if self._http is not None:
            self._http.join(timeout=10)
        if self._runner is not None:
            self._runner.join(timeout=60)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="HTTP submission API for injection campaigns.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8757)
    parser.add_argument(
        "--data", default="repro-serve-data", help="artifact directory (one subdir per job)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="local worker processes per campaign"
    )
    parser.add_argument(
        "--broker-port",
        type=int,
        default=None,
        help="lease shards to repro-worker agents on this TCP port "
        "instead of running them locally",
    )
    parser.add_argument(
        "--broker-metrics-port",
        type=int,
        default=None,
        help="also expose the broker's own /metrics scrape endpoint "
        "on this TCP port (requires --broker-port)",
    )
    args = parser.parse_args(argv)
    if args.broker_metrics_port is not None and args.broker_port is None:
        parser.error("--broker-metrics-port requires --broker-port")
    service = CampaignService(
        args.data,
        host=args.host,
        port=args.port,
        workers=args.workers,
        broker_port=args.broker_port,
        broker_metrics_port=args.broker_metrics_port,
    )
    service.start()
    print(f"repro-serve listening on http://{args.host}:{service.port}", flush=True)
    if service.broker_port is not None:
        print(f"leasing shards to workers on port {service.broker_port}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        service.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
