"""BrokerBackend: a TCP work-queue leasing shards to repro-worker agents.

The broker is a plain, synchronous, non-blocking stdlib TCP server
embedded in the scheduler's poll loop — ``heartbeats()`` doubles as the
event pump (accept, read, flush), so no extra thread is needed and the
scheduler stays single-threaded.  Workers connect, announce themselves
(``hello``), and then hold at most one lease each; everything on the
socket is the tagged JSON frame format of :mod:`repro.service.wire`,
the same vocabulary the local heartbeat pipe speaks.

Frames the broker **sends**::

    {"kind": "lease", "lease": {...}, "config": {...}, "fingerprint": s}
    {"kind": "shrink", "lease": id, "stop": n}     # work stealing
    {"kind": "cancel", "lease": id}                # abandon politely

Frames the broker **receives**::

    {"kind": "hello", "worker": name, "pid": n}
    {"kind": "run",  "lease": id, "run": k}        # liveness beat
    {"kind": "rec",  "lease": id, "run": k, "row": {...}}
    {"kind": "metrics", "delta": {...}} / {"kind": "spans", "batch": [...]}
    {"kind": "failure", "event": {...}}
    {"kind": "pong", "seq": n}                     # heartbeat RTT probe
    {"kind": "done", "lease": id} / {"kind": "error", "lease": id, ...}

Observability: when the scheduler attaches its telemetry bundle
(:meth:`BrokerBackend.attach_telemetry`), lease frames carry the
campaign span's :class:`~repro.telemetry.spans.SpanContext` — workers
continue the trace and stream their spans back as ``spans`` frames —
and the broker registers its fleet-only series (``repro_service_
worker_up``, per-worker heartbeat-RTT histograms, disconnect and
per-worker run counters) on the campaign registry.  These series exist
*only* behind a broker, so a local campaign's registry stays
counter-for-counter identical to its serial twin.  With
``metrics_port`` set, a tiny daemon thread answers ``GET /metrics``
scrapes with the Prometheus text rendering of that continuously merged
registry.

Fault model: a worker that disconnects (or is reaped) while holding a
lease yields a ``dead`` :class:`~repro.service.backend.LeaseResult`;
the scheduler re-leases the remaining range to any other worker,
resuming after the last streamed record.  Records are keyed by run
index, so none of this can change campaign bytes — a lease executed
one-and-a-half times produces some byte-identical duplicate records
and the scheduler keeps the first of each.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.service.backend import BackendEvent, LeaseResult, ShardBackend, ShardLease
from repro.service.wire import FrameDecoder, encode_frame
from repro.telemetry.exporters import prometheus_text
from repro.telemetry.metrics import NULL_REGISTRY, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.carolfi.campaign import CampaignConfig
    from repro.telemetry import Telemetry
    from repro.telemetry.spans import SpanContext

__all__ = ["BrokerBackend", "RTT_BUCKETS", "lease_to_wire", "lease_from_wire"]

#: Heartbeat-RTT histogram bounds (seconds): localhost round trips
#: (~100µs) through congested cross-host links (~seconds).
RTT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Seconds between heartbeat-RTT pings to each connected worker.
_PING_INTERVAL_S = 0.5


def lease_to_wire(lease: ShardLease) -> dict[str, Any]:
    """JSON-safe dict for one lease (inverted by :func:`lease_from_wire`)."""
    return {
        "lease_id": lease.lease_id,
        "shard_index": lease.shard_index,
        "start": lease.start,
        "stop": lease.stop,
        "attempt": lease.attempt,
        "skip": {str(k): [kind, detail] for k, (kind, detail) in lease.skip.items()},
    }


def lease_from_wire(data: dict[str, Any]) -> ShardLease:
    return ShardLease(
        lease_id=str(data["lease_id"]),
        shard_index=int(data["shard_index"]),
        start=int(data["start"]),
        stop=int(data["stop"]),
        attempt=int(data["attempt"]),
        skip={
            int(k): (str(v[0]), str(v[1])) for k, v in dict(data.get("skip") or {}).items()
        },
    )


class _Agent:
    """One connected worker: socket, frame decoder, outbox, lease."""

    __slots__ = (
        "sock",
        "decoder",
        "name",
        "lease_id",
        "outbox",
        "closed",
        "addr",
        "pid",
        "ping_seq",
        "ping_sent",
        "last_frame",
    )

    def __init__(self, sock: socket.socket, addr: str = "?"):
        self.sock = sock
        self.decoder = FrameDecoder()
        self.name: str | None = None  # set by hello
        self.lease_id: str | None = None
        self.outbox = bytearray()
        self.closed = False
        self.addr = addr  # peer address, for disruption attribution
        self.pid: int | None = None  # set by hello
        self.ping_seq = 0
        self.ping_sent: float | None = None  # monotonic send time of open ping
        self.last_frame = time.monotonic()


class BrokerBackend(ShardBackend):
    """Lease shards to remote ``repro-worker`` agents over TCP."""

    supports_steal = True
    streams_records = True

    def __init__(
        self,
        config: "CampaignConfig",
        fingerprint: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = None,
    ):
        self._config_wire = config.to_wire()
        self._fingerprint = fingerprint
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ)
        self._agents: list[_Agent] = []
        self._leases: dict[str, _Agent] = {}
        self._events: list[BackendEvent] = []
        self._results: list[LeaseResult] = []
        self._seq = 0
        # Fleet telemetry: null until the scheduler attaches its bundle.
        self._registry: MetricsRegistry | None = None
        self._trace_context: "SpanContext | None" = None
        self._worker_up = NULL_REGISTRY.gauge("repro_service_worker_up")
        self._rtt_hist = NULL_REGISTRY.histogram("repro_service_heartbeat_rtt_seconds")
        self._worker_runs = NULL_REGISTRY.counter("repro_service_worker_runs_total")
        self._disconnects = NULL_REGISTRY.counter("repro_service_disconnects_total")
        self._worker_idle = NULL_REGISTRY.gauge("repro_service_worker_idle_seconds")
        self._last_ping = 0.0
        self._metrics_listener: socket.socket | None = None
        if metrics_port is not None:
            self._metrics_listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._metrics_listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._metrics_listener.bind((host, metrics_port))
            self._metrics_listener.listen(8)
            threading.Thread(
                target=self._serve_metrics, name="repro-broker-metrics", daemon=True
            ).start()

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` workers should connect to."""
        host, port = self._listener.getsockname()[:2]
        return str(host), int(port)

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """``(host, port)`` of the ``/metrics`` endpoint, if one is up."""
        if self._metrics_listener is None:
            return None
        host, port = self._metrics_listener.getsockname()[:2]
        return str(host), int(port)

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Adopt the campaign's registry and span context (scheduler hook).

        The fleet-only series registered here exist exclusively behind a
        broker: local campaigns never reach this code, so their registry
        stays identical to a serial run's (the equality invariant).
        """
        if telemetry.registry.enabled:
            reg = telemetry.registry
            self._registry = reg
            self._worker_up = reg.gauge(
                "repro_service_worker_up",
                help="1 while the named worker is connected to the broker.",
            )
            self._rtt_hist = reg.histogram(
                "repro_service_heartbeat_rtt_seconds",
                help="Broker<->worker heartbeat round-trip time, by worker.",
                buckets=RTT_BUCKETS,
            )
            self._worker_runs = reg.counter(
                "repro_service_worker_runs_total",
                help="Records streamed through the broker, by worker and outcome.",
            )
            self._disconnects = reg.counter(
                "repro_service_disconnects_total",
                help="Unexpected worker disconnects observed by the broker.",
            )
            self._worker_idle = reg.gauge(
                "repro_service_worker_idle_seconds",
                help="Seconds since the broker last heard from each worker.",
            )
            # Workers routinely say hello before the campaign attaches
            # its telemetry (wait_for_workers runs first): backfill the
            # membership gauge so they are not invisible until they
            # reconnect.
            for agent in self._agents:
                if agent.name is not None and not agent.closed:
                    self._worker_up.set(1, worker=agent.name)
        self._trace_context = (
            telemetry.tracer.current_context() if telemetry.tracing else None
        )

    # -- scheduler-facing protocol -------------------------------------------

    def capacity(self) -> int:
        self._pump()
        return sum(
            1
            for a in self._agents
            if a.name is not None and a.lease_id is None and not a.closed
        )

    def submit(self, lease: ShardLease) -> str:
        self._pump()
        idle = [
            a
            for a in self._agents
            if a.name is not None and a.lease_id is None and not a.closed
        ]
        if not idle:
            raise RuntimeError("broker has no idle worker (capacity() said otherwise?)")
        # Deterministic choice given the same membership: by name.
        agent = min(idle, key=lambda a: a.name or "")
        agent.lease_id = lease.lease_id
        self._leases[lease.lease_id] = agent
        frame = {
            "kind": "lease",
            "lease": lease_to_wire(lease),
            "config": self._config_wire,
            "fingerprint": self._fingerprint,
        }
        if self._trace_context is not None:
            # The worker opens its lease/run spans as children of the
            # campaign span, so the merged trace.jsonl is one tree.
            frame["trace"] = self._trace_context.to_wire()
        self._send(agent, frame)
        return agent.name or "worker"

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Pump until ``count`` workers have said hello, or ``timeout``.

        Campaign kick-off helper: leases dispatched before every worker
        has connected all land on the early arrivals, which makes any
        orchestration that expects a particular worker to hold a lease
        (chaos drills, the broker acceptance tests) a scheduling race.
        Only the socket pump runs here — queued events stay queued for
        the next :meth:`heartbeats` call.
        """
        deadline = time.monotonic() + timeout
        while True:
            self._pump()
            connected = sum(
                1 for a in self._agents if a.name is not None and not a.closed
            )
            if connected >= count:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def heartbeats(self) -> list[BackendEvent]:
        self._pump()
        out = self._events
        self._events = []
        return out

    def results(self) -> list[LeaseResult]:
        self._pump()
        out = self._results
        self._results = []
        return out

    def cancel(self, lease_id: str, *, reap: bool = False) -> None:
        agent = self._leases.pop(lease_id, None)
        if agent is None:
            return
        agent.lease_id = None
        if reap:
            # Presumed hung: a cancel frame would sit unread forever.
            self._drop(agent, announce=True, detail="reaped by scheduler")
        else:
            self._send(agent, {"kind": "cancel", "lease": lease_id})

    def shrink(self, lease_id: str, new_stop: int) -> bool:
        agent = self._leases.get(lease_id)
        if agent is None or agent.closed:
            return False
        self._send(agent, {"kind": "shrink", "lease": lease_id, "stop": new_stop})
        return True

    def close(self) -> None:
        for agent in list(self._agents):
            self._drop(agent, announce=False)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        self._listener.close()
        self._selector.close()
        if self._metrics_listener is not None:
            try:
                self._metrics_listener.close()  # unblocks the scrape thread
            except OSError:  # pragma: no cover
                pass
            self._metrics_listener = None

    # -- /metrics scrape endpoint ---------------------------------------------

    def _serve_metrics(self) -> None:
        """Answer ``GET /metrics`` scrapes (daemon thread, one per broker).

        Renders whatever registry :meth:`attach_telemetry` installed —
        the campaign registry the scheduler merges worker deltas into —
        so a mid-campaign scrape sees live fleet counters.  Rendering
        races the scheduler thread's writes; a registry that grew a new
        series mid-iteration raises ``RuntimeError`` and the render is
        simply retried.  Exits when :meth:`close` closes the listener.
        """
        listener = self._metrics_listener
        if listener is None:  # pragma: no cover — defensive
            return
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: broker shut down
            try:
                conn.settimeout(5.0)
                request = b""
                while b"\r\n\r\n" not in request and len(request) < (1 << 16):
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    request += chunk
                head = request.split(b"\r\n", 1)[0].split(b" ")
                target = head[1].decode("latin-1", "replace") if len(head) >= 2 else ""
                conn.sendall(self._metrics_response(target))
            except OSError:  # pragma: no cover — scraper went away
                pass
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass

    def _metrics_response(self, target: str) -> bytes:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path not in ("/", "/metrics"):
            body = b"not found\n"
            status = "404 Not Found"
            ctype = "text/plain; charset=utf-8"
        else:
            registry = self._registry
            text = ""
            if registry is not None:
                for _attempt in range(5):
                    try:
                        text = prometheus_text(registry)
                        break
                    except RuntimeError:  # racing a writer: retry
                        continue
            body = text.encode("utf-8")
            status = "200 OK"
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        return head.encode("latin-1") + body

    # -- socket plumbing ------------------------------------------------------

    def _send(self, agent: _Agent, frame: dict[str, Any]) -> None:
        if agent.closed:
            return
        agent.outbox.extend(encode_frame(frame))
        self._flush(agent)

    def _flush(self, agent: _Agent) -> None:
        while agent.outbox and not agent.closed:
            try:
                sent = agent.sock.send(agent.outbox)
            except (BlockingIOError, InterruptedError):
                return  # try again next pump
            except OSError:
                self._drop(agent, announce=True, detail="send failed")
                return
            del agent.outbox[:sent]

    def _pump(self) -> None:
        """One non-blocking pass: accept, read, flush, ping, judge."""
        while True:
            ready = self._selector.select(timeout=0)
            if not ready:
                break
            for key, _mask in ready:
                if key.fileobj is self._listener:
                    self._accept()
                else:
                    self._read(key.data)
        for agent in self._agents:
            self._flush(agent)
        if self._registry is not None:
            self._ping_cycle()

    def _ping_cycle(self) -> None:
        """Probe heartbeat RTT and refresh per-worker idle gauges.

        One outstanding ping per worker at a time; a lost pong (worker
        died) is simply superseded by the next probe.  Runs only when a
        registry is attached — without one there is nowhere to record
        the observation and no reason to put frames on the wire.
        """
        now = time.monotonic()
        if now - self._last_ping < _PING_INTERVAL_S:
            return
        self._last_ping = now
        for agent in self._agents:
            if agent.name is None or agent.closed:
                continue
            self._worker_idle.set(round(now - agent.last_frame, 6), worker=agent.name)
            if agent.ping_sent is None:
                agent.ping_seq += 1
                agent.ping_sent = now
                self._send(agent, {"kind": "ping", "seq": agent.ping_seq})

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover — listener closing
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            agent = _Agent(sock, addr=f"{addr[0]}:{addr[1]}")
            self._agents.append(agent)
            self._selector.register(sock, selectors.EVENT_READ, agent)

    def _read(self, agent: _Agent) -> None:
        while not agent.closed:
            try:
                data = agent.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(agent, announce=True, detail="connection error")
                return
            if not data:
                self._drop(agent, announce=True, detail="connection closed")
                return
            agent.last_frame = time.monotonic()
            for frame in agent.decoder.feed(data):
                self._dispatch(agent, frame)

    def _dispatch(self, agent: _Agent, frame: dict[str, Any]) -> None:
        kind = frame.get("kind")
        if kind == "hello":
            self._seq += 1
            base = str(frame.get("worker") or f"worker-{self._seq}")
            names = {a.name for a in self._agents if a is not agent}
            name = base if base not in names else f"{base}#{self._seq}"
            agent.name = name
            if frame.get("pid") is not None:
                agent.pid = int(frame["pid"])
            self._worker_up.set(1, worker=name)
            self._events.append(
                BackendEvent(
                    "worker",
                    payload={
                        "event": "worker_connected",
                        "worker": name,
                        "addr": agent.addr,
                        "pid": agent.pid,
                    },
                )
            )
            return
        if kind == "pong":
            if agent.ping_sent is not None and int(frame.get("seq", -1)) == agent.ping_seq:
                self._rtt_hist.observe(
                    time.monotonic() - agent.ping_sent, worker=agent.name or "worker"
                )
                agent.ping_sent = None
            return
        lease_id = frame.get("lease")
        active = lease_id is not None and self._leases.get(lease_id) is agent
        if kind == "run" and active:
            self._events.append(BackendEvent("run", lease_id, run=int(frame["run"])))
        elif kind == "rec" and active:
            row = dict(frame["row"])
            self._worker_runs.inc(
                worker=agent.name or "worker", outcome=str(row.get("outcome", "?"))
            )
            self._events.append(BackendEvent("rec", lease_id, run=int(frame["run"]), row=row))
        elif kind == "metrics":
            self._events.append(BackendEvent("metrics", payload=frame["delta"]))
        elif kind == "spans":
            self._events.append(BackendEvent("spans", payload=frame["batch"]))
        elif kind == "failure":
            if active:
                self._events.append(BackendEvent("failure", lease_id, payload=frame["event"]))
        elif kind == "done" and active:
            assert lease_id is not None
            self._leases.pop(lease_id, None)
            agent.lease_id = None
            self._results.append(
                LeaseResult(lease_id, "done", worker=agent.name or "worker")
            )
        elif kind == "error" and active:
            assert lease_id is not None
            self._leases.pop(lease_id, None)
            agent.lease_id = None
            run = frame.get("run")
            self._results.append(
                LeaseResult(
                    lease_id,
                    "error",
                    detail=str(frame.get("detail", "worker error")),
                    error_run=None if run is None else int(run),
                    worker=agent.name or "worker",
                )
            )
        # Frames for stale leases (cancelled, already judged) are dropped.

    def _drop(self, agent: _Agent, announce: bool, detail: str = "") -> None:
        if agent.closed:
            return
        agent.closed = True
        try:
            self._selector.unregister(agent.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        try:
            agent.sock.close()
        except OSError:  # pragma: no cover
            pass
        if agent in self._agents:
            self._agents.remove(agent)
        name = agent.name or "worker"
        if agent.lease_id is not None:
            lease_id = agent.lease_id
            agent.lease_id = None
            self._leases.pop(lease_id, None)
            self._results.append(
                LeaseResult(
                    lease_id,
                    "dead",
                    detail=f"worker {name} lost ({detail})" if detail else f"worker {name} lost",
                    worker=name,
                )
            )
        if announce and agent.name is not None:
            self._worker_up.set(0, worker=name)
            self._disconnects.inc(worker=name)
            self._events.append(
                BackendEvent(
                    "worker",
                    payload={
                        "event": "worker_lost",
                        "worker": name,
                        "addr": agent.addr,
                        "pid": agent.pid,
                        "detail": detail,
                    },
                )
            )

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        host, port = self.address
        return f"BrokerBackend({host}:{port}, agents={len(self._agents)})"
