"""BrokerBackend: a TCP work-queue leasing shards to repro-worker agents.

The broker is a plain, synchronous, non-blocking stdlib TCP server
embedded in the scheduler's poll loop — ``heartbeats()`` doubles as the
event pump (accept, read, flush), so no extra thread is needed and the
scheduler stays single-threaded.  Workers connect, announce themselves
(``hello``), and then hold at most one lease each; everything on the
socket is the tagged JSON frame format of :mod:`repro.service.wire`,
the same vocabulary the local heartbeat pipe speaks.

Frames the broker **sends**::

    {"kind": "lease", "lease": {...}, "config": {...}, "fingerprint": s}
    {"kind": "shrink", "lease": id, "stop": n}     # work stealing
    {"kind": "cancel", "lease": id}                # abandon politely

Frames the broker **receives**::

    {"kind": "hello", "worker": name}
    {"kind": "run",  "lease": id, "run": k}        # liveness beat
    {"kind": "rec",  "lease": id, "run": k, "row": {...}}
    {"kind": "metrics", "delta": {...}} / {"kind": "spans", "batch": [...]}
    {"kind": "failure", "event": {...}}
    {"kind": "done", "lease": id} / {"kind": "error", "lease": id, ...}

Fault model: a worker that disconnects (or is reaped) while holding a
lease yields a ``dead`` :class:`~repro.service.backend.LeaseResult`;
the scheduler re-leases the remaining range to any other worker,
resuming after the last streamed record.  Records are keyed by run
index, so none of this can change campaign bytes — a lease executed
one-and-a-half times produces some byte-identical duplicate records
and the scheduler keeps the first of each.
"""

from __future__ import annotations

import selectors
import socket
import time
from typing import TYPE_CHECKING, Any

from repro.service.backend import BackendEvent, LeaseResult, ShardBackend, ShardLease
from repro.service.wire import FrameDecoder, encode_frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.carolfi.campaign import CampaignConfig

__all__ = ["BrokerBackend", "lease_to_wire", "lease_from_wire"]


def lease_to_wire(lease: ShardLease) -> dict[str, Any]:
    """JSON-safe dict for one lease (inverted by :func:`lease_from_wire`)."""
    return {
        "lease_id": lease.lease_id,
        "shard_index": lease.shard_index,
        "start": lease.start,
        "stop": lease.stop,
        "attempt": lease.attempt,
        "skip": {str(k): [kind, detail] for k, (kind, detail) in lease.skip.items()},
    }


def lease_from_wire(data: dict[str, Any]) -> ShardLease:
    return ShardLease(
        lease_id=str(data["lease_id"]),
        shard_index=int(data["shard_index"]),
        start=int(data["start"]),
        stop=int(data["stop"]),
        attempt=int(data["attempt"]),
        skip={
            int(k): (str(v[0]), str(v[1])) for k, v in dict(data.get("skip") or {}).items()
        },
    )


class _Agent:
    """One connected worker: socket, frame decoder, outbox, lease."""

    __slots__ = ("sock", "decoder", "name", "lease_id", "outbox", "closed")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.decoder = FrameDecoder()
        self.name: str | None = None  # set by hello
        self.lease_id: str | None = None
        self.outbox = bytearray()
        self.closed = False


class BrokerBackend(ShardBackend):
    """Lease shards to remote ``repro-worker`` agents over TCP."""

    supports_steal = True
    streams_records = True

    def __init__(
        self,
        config: "CampaignConfig",
        fingerprint: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._config_wire = config.to_wire()
        self._fingerprint = fingerprint
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ)
        self._agents: list[_Agent] = []
        self._leases: dict[str, _Agent] = {}
        self._events: list[BackendEvent] = []
        self._results: list[LeaseResult] = []
        self._seq = 0

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` workers should connect to."""
        host, port = self._listener.getsockname()[:2]
        return str(host), int(port)

    # -- scheduler-facing protocol -------------------------------------------

    def capacity(self) -> int:
        self._pump()
        return sum(
            1
            for a in self._agents
            if a.name is not None and a.lease_id is None and not a.closed
        )

    def submit(self, lease: ShardLease) -> str:
        self._pump()
        idle = [
            a
            for a in self._agents
            if a.name is not None and a.lease_id is None and not a.closed
        ]
        if not idle:
            raise RuntimeError("broker has no idle worker (capacity() said otherwise?)")
        # Deterministic choice given the same membership: by name.
        agent = min(idle, key=lambda a: a.name or "")
        agent.lease_id = lease.lease_id
        self._leases[lease.lease_id] = agent
        self._send(
            agent,
            {
                "kind": "lease",
                "lease": lease_to_wire(lease),
                "config": self._config_wire,
                "fingerprint": self._fingerprint,
            },
        )
        return agent.name or "worker"

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Pump until ``count`` workers have said hello, or ``timeout``.

        Campaign kick-off helper: leases dispatched before every worker
        has connected all land on the early arrivals, which makes any
        orchestration that expects a particular worker to hold a lease
        (chaos drills, the broker acceptance tests) a scheduling race.
        Only the socket pump runs here — queued events stay queued for
        the next :meth:`heartbeats` call.
        """
        deadline = time.monotonic() + timeout
        while True:
            self._pump()
            connected = sum(
                1 for a in self._agents if a.name is not None and not a.closed
            )
            if connected >= count:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def heartbeats(self) -> list[BackendEvent]:
        self._pump()
        out = self._events
        self._events = []
        return out

    def results(self) -> list[LeaseResult]:
        self._pump()
        out = self._results
        self._results = []
        return out

    def cancel(self, lease_id: str, *, reap: bool = False) -> None:
        agent = self._leases.pop(lease_id, None)
        if agent is None:
            return
        agent.lease_id = None
        if reap:
            # Presumed hung: a cancel frame would sit unread forever.
            self._drop(agent, announce=True, detail="reaped by scheduler")
        else:
            self._send(agent, {"kind": "cancel", "lease": lease_id})

    def shrink(self, lease_id: str, new_stop: int) -> bool:
        agent = self._leases.get(lease_id)
        if agent is None or agent.closed:
            return False
        self._send(agent, {"kind": "shrink", "lease": lease_id, "stop": new_stop})
        return True

    def close(self) -> None:
        for agent in list(self._agents):
            self._drop(agent, announce=False)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        self._listener.close()
        self._selector.close()

    # -- socket plumbing ------------------------------------------------------

    def _send(self, agent: _Agent, frame: dict[str, Any]) -> None:
        if agent.closed:
            return
        agent.outbox.extend(encode_frame(frame))
        self._flush(agent)

    def _flush(self, agent: _Agent) -> None:
        while agent.outbox and not agent.closed:
            try:
                sent = agent.sock.send(agent.outbox)
            except (BlockingIOError, InterruptedError):
                return  # try again next pump
            except OSError:
                self._drop(agent, announce=True, detail="send failed")
                return
            del agent.outbox[:sent]

    def _pump(self) -> None:
        """One non-blocking pass: accept, read, flush, judge."""
        while True:
            ready = self._selector.select(timeout=0)
            if not ready:
                break
            for key, _mask in ready:
                if key.fileobj is self._listener:
                    self._accept()
                else:
                    self._read(key.data)
        for agent in self._agents:
            self._flush(agent)

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover — listener closing
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            agent = _Agent(sock)
            self._agents.append(agent)
            self._selector.register(sock, selectors.EVENT_READ, agent)

    def _read(self, agent: _Agent) -> None:
        while not agent.closed:
            try:
                data = agent.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(agent, announce=True, detail="connection error")
                return
            if not data:
                self._drop(agent, announce=True, detail="connection closed")
                return
            for frame in agent.decoder.feed(data):
                self._dispatch(agent, frame)

    def _dispatch(self, agent: _Agent, frame: dict[str, Any]) -> None:
        kind = frame.get("kind")
        if kind == "hello":
            self._seq += 1
            base = str(frame.get("worker") or f"worker-{self._seq}")
            names = {a.name for a in self._agents if a is not agent}
            name = base if base not in names else f"{base}#{self._seq}"
            agent.name = name
            self._events.append(
                BackendEvent(
                    "worker", payload={"event": "worker_connected", "worker": name}
                )
            )
            return
        lease_id = frame.get("lease")
        active = lease_id is not None and self._leases.get(lease_id) is agent
        if kind == "run" and active:
            self._events.append(BackendEvent("run", lease_id, run=int(frame["run"])))
        elif kind == "rec" and active:
            self._events.append(
                BackendEvent(
                    "rec", lease_id, run=int(frame["run"]), row=dict(frame["row"])
                )
            )
        elif kind == "metrics":
            self._events.append(BackendEvent("metrics", payload=frame["delta"]))
        elif kind == "spans":
            self._events.append(BackendEvent("spans", payload=frame["batch"]))
        elif kind == "failure":
            if active:
                self._events.append(BackendEvent("failure", lease_id, payload=frame["event"]))
        elif kind == "done" and active:
            assert lease_id is not None
            self._leases.pop(lease_id, None)
            agent.lease_id = None
            self._results.append(
                LeaseResult(lease_id, "done", worker=agent.name or "worker")
            )
        elif kind == "error" and active:
            assert lease_id is not None
            self._leases.pop(lease_id, None)
            agent.lease_id = None
            run = frame.get("run")
            self._results.append(
                LeaseResult(
                    lease_id,
                    "error",
                    detail=str(frame.get("detail", "worker error")),
                    error_run=None if run is None else int(run),
                    worker=agent.name or "worker",
                )
            )
        # Frames for stale leases (cancelled, already judged) are dropped.

    def _drop(self, agent: _Agent, announce: bool, detail: str = "") -> None:
        if agent.closed:
            return
        agent.closed = True
        try:
            self._selector.unregister(agent.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        try:
            agent.sock.close()
        except OSError:  # pragma: no cover
            pass
        if agent in self._agents:
            self._agents.remove(agent)
        name = agent.name or "worker"
        if agent.lease_id is not None:
            lease_id = agent.lease_id
            agent.lease_id = None
            self._leases.pop(lease_id, None)
            self._results.append(
                LeaseResult(
                    lease_id,
                    "dead",
                    detail=f"worker {name} lost ({detail})" if detail else f"worker {name} lost",
                    worker=name,
                )
            )
        if announce and agent.name is not None:
            self._events.append(
                BackendEvent(
                    "worker",
                    payload={"event": "worker_lost", "worker": name, "detail": detail},
                )
            )

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        host, port = self.address
        return f"BrokerBackend({host}:{port}, agents={len(self._agents)})"
