"""LocalBackend: the engine's mp.Process fault domains behind ShardBackend.

This is the machinery that used to live inline in
``repro.carolfi.engine._run_pool``: one disposable, individually
supervised OS process per in-flight lease, heartbeating over a pipe.
The pipe now carries the same tagged JSON frames as the broker socket
(:mod:`repro.service.wire`) — ``Connection.send_bytes`` is already
message-oriented, so framing adds checksum validation, and local and
distributed execution share one wire vocabulary:

``{"kind": "run"|"ok"|"metrics"|"spans"|"failure"|"done"|"error", ...}``

Semantics preserved from the original pool: workers are not daemons
(they must be able to spawn sandbox children), a dying worker is
observed through its exit code, a final ``done``/``error`` frame still
sitting in the pipe is drained before the death is judged, and the
fork-method supervisor warm-up keeps golden runs amortised across
workers.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

from repro.carolfi import shmstore
from repro.carolfi.isolation import IsolationConfig, describe_exitcode, mp_context, supervisor_for
from repro.service.backend import BackendEvent, LeaseResult, ShardBackend, ShardLease
from repro.service.wire import FrameError, decode_frame, encode_frame
from repro.telemetry import ShardTelemetry, Telemetry, WorkerTelemetry

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

    from repro.carolfi.campaign import CampaignConfig

__all__ = ["LocalBackend"]


def _send(conn: "Connection", frame: dict[str, Any]) -> None:
    try:
        conn.send_bytes(encode_frame(frame))
    except (OSError, ValueError):  # pragma: no cover — parent already gone
        pass


def _lease_worker_main(
    config: "CampaignConfig",
    lease: ShardLease,
    fingerprint: str,
    isolation: IsolationConfig,
    shard_tel: ShardTelemetry,
    conn: "Connection",
    golden_cache: str | None = None,
) -> None:
    """Entry point of one disposable lease worker process.

    Telemetry is rebuilt locally from the picklable ``shard_tel``
    coordinates: metrics accumulate in a worker-private registry and
    spans buffer in memory, and both are drained over the pipe after
    every run (``metrics`` / ``spans`` frames).  Draining before the
    final ``done`` keeps merging at-most-once: a killed worker loses
    only its undrained tail, never double-counts.
    """
    # Imported here (not at module top) so the engine module is fully
    # initialised in forked children before we reach into it.
    from repro.carolfi import engine as _engine

    # Under the fork start method this process inherits the parent's
    # sandbox cache, whose workers are NOT our children: drop the
    # handles (keeping cached geometry) and let the engine build our
    # own sandbox on first use.
    for inherited in _engine._SANDBOXES.values():
        inherited.forget_worker()
    _engine._SANDBOXES.clear()

    worker_tel = WorkerTelemetry(shard_tel)

    def flush_telemetry() -> None:
        delta, spans = worker_tel.drain()
        if delta:
            _send(conn, {"kind": "metrics", "delta": delta})
        if spans:
            _send(conn, {"kind": "spans", "batch": spans})

    def run_done(k: int) -> None:
        _send(conn, {"kind": "ok", "run": k})
        flush_telemetry()

    def forward_failure(event: dict[str, Any]) -> None:
        _send(conn, {"kind": "failure", "event": event})

    spec = _engine.ShardSpec(index=lease.shard_index, start=lease.start, stop=lease.stop)
    try:
        with worker_tel.activate():
            _, rows = _engine._execute_shard(
                config,
                spec,
                lease.checkpoint_file,
                fingerprint,
                isolation=isolation,
                skip_runs=lease.skip,
                on_run=lambda k: _send(conn, {"kind": "run", "run": k}),
                on_run_done=run_done,
                on_failure=forward_failure,
                golden_cache=golden_cache,
            )
        flush_telemetry()  # tail: skip-run counters, shard + checkpoint spans
        _send(conn, {"kind": "done", "rows": rows})
        conn.close()
    except BaseException as exc:
        run = exc.run_index if isinstance(exc, _engine.ShardRunError) else None
        _send(conn, {"kind": "error", "detail": f"{type(exc).__name__}: {exc}", "run": run})
        raise SystemExit(1) from exc
    finally:
        # Multiprocessing children skip regular atexit (os._exit), so
        # daemon grandchildren are never auto-terminated and any
        # segment registered here is never auto-unlinked.  Close our
        # sandbox workers explicitly — an orphaned sandbox blocks in
        # conn.recv() forever, because its own inherited copy of the
        # parent pipe end keeps EOF from ever arriving — and reap any
        # segment *this* process published (normally none: the backend
        # publishes before forking; the pid guard protects the
        # parent's segments from us).
        for sandbox in _engine._SANDBOXES.values():
            sandbox.close()
        _engine._SANDBOXES.clear()
        shmstore.release_published()


class _LeaseProc:
    """One live lease: its process, pipe, and staged terminal frames."""

    __slots__ = ("lease", "proc", "conn", "done_rows", "error", "worker")

    def __init__(self, lease: ShardLease, proc: Any, conn: Any, worker: str):
        self.lease = lease
        self.proc = proc
        self.conn = conn
        self.worker = worker
        self.done_rows: list[dict[str, Any]] | None = None
        self.error: tuple[str, int | None] | None = None


class LocalBackend(ShardBackend):
    """One supervised ``mp.Process`` per lease on the local host.

    Unlike a shared process pool, each in-flight lease owns its worker:
    the backend observes that worker's exit code directly, the
    scheduler reaps it when its heartbeat stalls, and one pathological
    run can never poison a neighbouring shard's executor.
    """

    supports_steal = False
    streams_records = False

    def __init__(
        self,
        config: "CampaignConfig",
        fingerprint: str,
        *,
        workers: int,
        isolation: IsolationConfig | None = None,
        telemetry: Telemetry | None = None,
        golden_cache: str | None = None,
        on_event: Any = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        self._config = config
        self._fingerprint = fingerprint
        self._workers = workers
        self._isolation = isolation or IsolationConfig()
        self._telemetry = telemetry
        self._golden_cache = golden_cache
        self._ctx = mp_context()
        self._live: dict[str, _LeaseProc] = {}
        self._results: list[LeaseResult] = []
        if (
            self._ctx.get_start_method() == "fork"
            or golden_cache is not None
            or config.shared_store
        ):
            # Warm the per-process supervisor cache so every forked
            # worker (and, under subprocess isolation, every sandbox
            # grandchild) inherits the golden run — prefix-snapshot
            # store included — instead of recomputing it.  With an
            # on-disk golden cache the warm-up pays off under *any*
            # start method: the parent computes and persists the golden
            # run once and spawn-started workers load it from disk.
            # With the shared store on, this is also the publication
            # point of the host-wide shared-memory segment (and
            # ``on_event`` — the engine's failure sink — receives the
            # budget-degradation event exactly once per host).
            try:
                supervisor_for(config, golden_cache=golden_cache, on_event=on_event)
            except Exception:  # noqa: BLE001 — let workers report the real failure
                pass

    def capacity(self) -> int:
        return self._workers - len(self._live)

    def submit(self, lease: ShardLease) -> str:
        conn_r, conn_w = self._ctx.Pipe(duplex=False)
        shard_tel = (
            self._telemetry.shard_telemetry()
            if self._telemetry is not None
            else ShardTelemetry()
        )
        # Not a daemon: under subprocess isolation the lease worker must
        # spawn sandbox children, which daemonic processes may not do.
        # The scheduler reaps these workers itself (cancel) and the
        # sandbox children ARE daemons, so a dying worker takes its
        # sandbox down with it.
        proc = self._ctx.Process(
            target=_lease_worker_main,
            args=(
                self._config,
                lease,
                self._fingerprint,
                self._isolation,
                shard_tel,
                conn_w,
                self._golden_cache,
            ),
            daemon=False,
            name=f"lease-{lease.lease_id}",
        )
        proc.start()
        conn_w.close()
        worker = f"local/pid{proc.pid}"
        self._live[lease.lease_id] = _LeaseProc(lease, proc, conn_r, worker)
        return worker

    def _drain_conn(self, live: _LeaseProc, events: list[BackendEvent]) -> None:
        while live.conn is not None:
            try:
                if not live.conn.poll(0):
                    return
                raw = live.conn.recv_bytes()
            except (EOFError, OSError):
                return
            try:
                frame = decode_frame(raw)
            except FrameError:
                continue  # torn frame from a dying worker: skip, judge by exit code
            kind = frame.get("kind")
            lease_id = live.lease.lease_id
            if kind == "run":
                events.append(BackendEvent("run", lease_id, run=int(frame["run"])))
            elif kind == "ok":
                events.append(BackendEvent("ok", lease_id, run=int(frame["run"])))
            elif kind == "metrics":
                events.append(BackendEvent("metrics", lease_id, payload=frame["delta"]))
            elif kind == "spans":
                events.append(BackendEvent("spans", lease_id, payload=frame["batch"]))
            elif kind == "failure":
                events.append(BackendEvent("failure", lease_id, payload=frame["event"]))
            elif kind == "done":
                live.done_rows = list(frame["rows"])
            elif kind == "error":
                run = frame.get("run")
                live.error = (str(frame["detail"]), None if run is None else int(run))

    def heartbeats(self) -> list[BackendEvent]:
        events: list[BackendEvent] = []
        for live in list(self._live.values()):
            self._drain_conn(live, events)
            self._judge(live, events)
        return events

    def _judge(self, live: _LeaseProc, events: list[BackendEvent]) -> None:
        """Stage a terminal result once the lease's fate is knowable."""
        lease_id = live.lease.lease_id
        if live.done_rows is not None:
            self._retire(live)
            self._results.append(
                LeaseResult(lease_id, "done", rows=live.done_rows, worker=live.worker)
            )
            del self._live[lease_id]
        elif live.proc is not None and not live.proc.is_alive():
            live.proc.join(timeout=5.0)
            # A final done/error frame may still sit in the pipe: drain
            # once more before judging the death.
            self._drain_conn(live, events)
            if live.done_rows is not None:
                self._retire(live)
                self._results.append(
                    LeaseResult(lease_id, "done", rows=live.done_rows, worker=live.worker)
                )
            elif live.error is not None:
                detail, run = live.error
                self._retire(live)
                self._results.append(
                    LeaseResult(
                        lease_id, "error", detail=detail, error_run=run, worker=live.worker
                    )
                )
            else:
                detail = f"shard worker {describe_exitcode(live.proc.exitcode)}"
                self._retire(live)
                self._results.append(
                    LeaseResult(lease_id, "dead", detail=detail, worker=live.worker)
                )
            del self._live[lease_id]

    def results(self) -> list[LeaseResult]:
        out = self._results
        self._results = []
        return out

    def _retire(self, live: _LeaseProc) -> None:
        if live.conn is not None:
            try:
                live.conn.close()
            except OSError:  # pragma: no cover
                pass
            live.conn = None
        if live.proc is not None and live.proc.is_alive():
            live.proc.kill()
            live.proc.join(timeout=5.0)

    def cancel(self, lease_id: str, *, reap: bool = False) -> None:
        live = self._live.pop(lease_id, None)
        if live is not None:
            self._retire(live)

    def close(self) -> None:
        for lease_id in list(self._live):
            self.cancel(lease_id)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"LocalBackend(workers={self._workers}, live={len(self._live)}, pid={os.getpid()})"
