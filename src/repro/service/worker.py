"""repro-worker: a remote lease executor for the campaign broker.

One worker process connects to a :class:`repro.service.broker.
BrokerBackend`, announces itself, and then executes the leases the
broker sends — one at a time, one run at a time, streaming each run's
record back as it completes (``rec`` frames).  Between runs it polls
the socket for control frames, so a ``shrink`` (work stealing) or
``cancel`` takes effect at the next run boundary, and a ``ping`` is
answered immediately (the broker's heartbeat-RTT probe).

Observability: when the lease frame carries a span context, the worker
builds a local tracer parented on the broker's campaign span, wraps the
lease and each run in spans, and streams finished spans back as
``spans`` frames — always *before* the terminal ``done``/``error``
frame, so they arrive while the scheduler is still draining events for
this lease.  None of this touches record production: spans and metrics
never draw from the campaign's RNG streams, and a campaign without
tracing sends no span frames at all, so ``campaign.jsonl`` stays
byte-identical to serial either way.

Determinism: every run is executed through the engine's own
``_execute_shard`` on a single-run range, so record production — RNG
derivation, fault-model rotation, quarantined-run synthesis, outcome
classification — is byte-for-byte the code path a local campaign runs.
A worker never needs campaign context beyond the lease: the config
rides along in the lease frame and the per-run RNG is keyed by run
index.

Failure injection for tests (and chaos drills):

* ``REPRO_WORKER_DIE_AFTER=N`` — the process exits abruptly (no
  goodbye, no flush) after streaming its N-th record, simulating a
  worker host dying mid-lease;
* ``REPRO_WORKER_SLOW_S=x`` — sleep ``x`` seconds before each run,
  turning this worker into the straggler a steal rescues.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
from typing import Any, Sequence

from repro.carolfi.campaign import CampaignConfig
from repro.service.broker import lease_from_wire
from repro.service.wire import FrameDecoder, encode_frame
from repro.telemetry import NOOP_TRACER, activate
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanContext, Tracer

__all__ = ["main", "run_worker"]


class _SessionClosed(Exception):
    """The broker connection ended (EOF, reset, or broker shutdown)."""


class _Link:
    """Blocking socket + frame decoder + a queue of undelivered frames."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.decoder = FrameDecoder()
        self.queue: list[dict[str, Any]] = []

    def send(self, frame: dict[str, Any]) -> None:
        try:
            self.sock.sendall(encode_frame(frame))
        except OSError as exc:
            raise _SessionClosed(str(exc)) from exc

    def poll(self, timeout: float) -> list[dict[str, Any]]:
        """Frames available within ``timeout`` seconds (possibly none)."""
        if self.queue:
            out, self.queue = self.queue, []
            return out
        self.sock.settimeout(timeout if timeout > 0 else 0.000001)
        try:
            data = self.sock.recv(1 << 16)
        except (TimeoutError, socket.timeout):
            return []
        except OSError as exc:
            raise _SessionClosed(str(exc)) from exc
        if not data:
            raise _SessionClosed("connection closed by broker")
        return self.decoder.feed(data)

    def wait(self, timeout: float) -> dict[str, Any] | None:
        """The next frame, or ``None`` after ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while True:
            frames = self.poll(min(1.0, max(0.001, deadline - time.monotonic())))
            if frames:
                first, rest = frames[0], frames[1:]
                self.queue.extend(rest)
                return first
            if time.monotonic() >= deadline:
                return None


def _execute_lease(
    link: _Link,
    frame: dict[str, Any],
    state: dict[str, int],
    worker_name: str = "worker",
) -> None:
    """Run one lease, streaming records; returns when the lease ends."""
    from repro.carolfi import engine as _engine

    lease = lease_from_wire(frame["lease"])
    config = CampaignConfig.from_wire(frame["config"])
    fingerprint = str(frame["fingerprint"])
    lease_id = lease.lease_id
    stop = lease.stop
    die_after = int(os.environ.get("REPRO_WORKER_DIE_AFTER", "0") or 0)
    slow_s = float(os.environ.get("REPRO_WORKER_SLOW_S", "0") or 0)

    def forward_failure(event: dict[str, Any]) -> None:
        link.send({"kind": "failure", "lease": lease_id, "event": event})

    # Continue the broker's campaign trace when the lease carries its
    # span context: our lease/run spans become children of the campaign
    # span, and the merged trace.jsonl is one tree across hosts.
    spans: list[dict[str, Any]] = []
    if frame.get("trace") is not None:
        tracer: Any = Tracer(spans.append, parent=SpanContext.from_wire(frame["trace"]))
    else:
        tracer = NOOP_TRACER

    def flush_spans() -> None:
        if spans:
            link.send({"kind": "spans", "lease": lease_id, "batch": list(spans)})
            spans.clear()

    registry = MetricsRegistry()
    outcome = "done"  # done | cancelled | error
    error: tuple[str, int] | None = None
    with tracer.span(
        "lease",
        lease=lease_id,
        shard=lease.shard_index,
        start=lease.start,
        stop=lease.stop,
        attempt=lease.attempt,
        worker=worker_name,
    ) as lease_span:
        k = lease.start
        while k < stop:
            # Control frames act at run boundaries: shrink narrows the
            # range (steal), cancel abandons the lease, ping is answered
            # in place.  Anything for an older lease is stale, dropped.
            for control in link.poll(0):
                kind = control.get("kind")
                if kind == "ping":
                    link.send({"kind": "pong", "seq": control.get("seq")})
                elif kind == "shrink" and control.get("lease") == lease_id:
                    stop = min(stop, int(control["stop"]))
                elif kind == "cancel" and control.get("lease") == lease_id:
                    outcome = "cancelled"
                    break
            if outcome == "cancelled" or k >= stop:
                break
            link.send({"kind": "run", "lease": lease_id, "run": k})
            if slow_s > 0:
                time.sleep(slow_s)
            spec = _engine.ShardSpec(index=lease.shard_index, start=k, stop=k + 1)
            try:
                with activate(registry, tracer), tracer.span("run", run=k):
                    _, rows = _engine._execute_shard(
                        config,
                        spec,
                        None,
                        fingerprint,
                        skip_runs=lease.skip,
                        on_failure=forward_failure,
                    )
            except Exception as exc:  # noqa: BLE001 — reported, worker survives
                outcome = "error"
                error = (f"{type(exc).__name__}: {exc}", k)
                break
            link.send({"kind": "rec", "lease": lease_id, "run": k, "row": rows[0]})
            delta = registry.drain_delta()
            if delta:
                link.send({"kind": "metrics", "lease": lease_id, "delta": delta})
            flush_spans()
            state["records"] += 1
            if die_after and state["records"] >= die_after:
                # Chaos hook: vanish mid-lease with no goodbye — exactly
                # what a dying worker host looks like to the broker.
                os._exit(7)
            k += 1
        if outcome != "done":
            lease_span.set_attr("outcome", outcome)
    # The lease span is finished now; ship it (and any stragglers)
    # before the terminal frame so the scheduler still drains it.
    flush_spans()
    if outcome == "error" and error is not None:
        detail, run = error
        link.send({"kind": "error", "lease": lease_id, "detail": detail, "run": run})
    elif outcome == "done":
        link.send({"kind": "done", "lease": lease_id})
    # A cancelled lease ends silently: the scheduler already dropped it.


def run_worker(
    host: str,
    port: int,
    *,
    name: str | None = None,
    once: bool = False,
    reconnect_delay: float = 0.5,
) -> int:
    """Serve leases from the broker at ``host:port``.

    With ``once`` the worker exits when its session ends (broker gone
    or unreachable); otherwise it reconnects forever — the behaviour a
    long-lived worker host wants.
    """
    from repro.carolfi import shmstore

    worker_name = name or f"{socket.gethostname()}/pid{os.getpid()}"
    state = {"records": 0}
    try:
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=10)
            except OSError:
                if once:
                    return 1
                time.sleep(reconnect_delay)
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            link = _Link(sock)
            try:
                link.send({"kind": "hello", "worker": worker_name, "pid": os.getpid()})
                while True:
                    frame = link.wait(timeout=3600.0)
                    if frame is None:
                        continue
                    kind = frame.get("kind")
                    if kind == "ping":
                        link.send({"kind": "pong", "seq": frame.get("seq")})
                    elif kind == "lease":
                        _execute_lease(link, frame, state, worker_name)
            except _SessionClosed:
                pass
            finally:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
            if once:
                return 0
            time.sleep(reconnect_delay)
    finally:
        # Unlink any shared-memory snapshot segments this agent
        # published (first agent on a host publishes; later ones
        # attach).  Best effort — an abrupt death leaves the atexit
        # hook, and the engine-side teardown, as backstops.
        shmstore.release_published()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Execute campaign shard leases from a repro broker.",
    )
    parser.add_argument("broker", help="broker address as host:port")
    parser.add_argument("--name", default=None, help="worker name (default host/pid)")
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit when the broker goes away instead of reconnecting",
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.broker.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"broker must be host:port, got {args.broker!r}")
    return run_worker(host, int(port_text), name=args.name, once=args.once)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
