"""Multi-fault scenario fuzzing for the hardening stack.

The paper's campaign model is "one fault, one run", but real failures
compound: a second strike during recovery, dose accumulated across a
checkpoint interval, a flip landing inside DWC's comparison window.
This package turns the injector into a resilience *fuzzer*:

* :mod:`repro.fuzz.scenario` — the scenario grammar: a deterministic,
  seed-keyed sequence of steps (inject / dose / strike-during-recovery
  / pause-resume checkpointing) plus the hardening scheme it runs
  against;
* :mod:`repro.fuzz.executor` — executes a scenario against a benchmark
  wrapped in guards, ABFT and checkpoint/restart, producing a
  byte-comparable :class:`~repro.fuzz.executor.ScenarioRecord`;
* :mod:`repro.fuzz.oracle` — the interestingness oracle: hardening
  escapes, execution divergence, engine-invariant violations;
* :mod:`repro.fuzz.search` — seeded random generation with
  coverage-bucket corpus feedback;
* :mod:`repro.fuzz.shrink` — Hypothesis-style greedy shrinking to a
  minimal reproducer;
* :mod:`repro.fuzz.artifact` — replayable JSON reproducer artifacts.

See DESIGN §12 for the full grammar, oracle taxonomy and artifact
format.
"""

from repro.fuzz.artifact import Reproducer, load_reproducer, replay, replay_in_workers
from repro.fuzz.executor import ScenarioExecutor, ScenarioRecord
from repro.fuzz.oracle import Oracle, OracleFlag
from repro.fuzz.scenario import Scenario, ScenarioStep, SchemeSpec
from repro.fuzz.search import FuzzConfig, FuzzReport, ScenarioFuzzer, run_fuzz_campaign
from repro.fuzz.shrink import shrink

__all__ = [
    "FuzzConfig",
    "FuzzReport",
    "Oracle",
    "OracleFlag",
    "Reproducer",
    "Scenario",
    "ScenarioExecutor",
    "ScenarioFuzzer",
    "ScenarioRecord",
    "ScenarioStep",
    "SchemeSpec",
    "load_reproducer",
    "replay",
    "replay_in_workers",
    "run_fuzz_campaign",
    "shrink",
]
