"""Seeded scenario search with coverage-bucket feedback.

The generator is seeded random over the scenario grammar; the
"coverage-ish" heuristic (ISSUE 7) keeps a corpus of scenarios that
reached a previously-unseen *behavior bucket* — (outcome, detector
signature, recovered?, fault-count band) — and biases later iterations
toward mutating corpus members, the classic grey-box loop scaled down
to deterministic replayable campaigns.

Every flagged scenario is shrunk and persisted immediately; the
campaign report carries the reproducers, and two counters surface in
the ambient metrics registry:

* ``repro_fuzz_scenarios_total{outcome=...}``
* ``repro_fuzz_shrinks_total{result=...}``
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fuzz.artifact import Reproducer
from repro.fuzz.executor import ScenarioRecord, executor_for
from repro.fuzz.oracle import Oracle, OracleFlag
from repro.fuzz.scenario import RESOURCE_ANY, Scenario, ScenarioStep, SchemeSpec
from repro.fuzz.shrink import shrink
from repro.telemetry import current_registry
from repro.util.rng import derive_rng

__all__ = ["FuzzConfig", "FuzzReport", "ScenarioFuzzer", "run_fuzz_campaign"]

_MODELS = ("single", "double", "random", "zero")

#: Op weights for generation: faults dominate; the checkpoint-control
#: ops only matter under a checkpointing scheme and are drawn rarely.
_OP_WEIGHTS = {
    "inject": 0.55,
    "dose": 0.25,
    "strike_recovery": 0.1,
    "pause_checkpoint": 0.05,
    "resume_checkpoint": 0.05,
}


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign's plan — fully deterministic under ``seed``."""

    benchmark: str
    scheme: SchemeSpec = SchemeSpec()
    seed: int = 2017
    budget: int = 50
    max_steps: int = 3
    benchmark_params: dict[str, Any] = field(default_factory=dict)
    out_dir: str | None = None
    check_divergence: bool = True
    check_invariants: bool = True
    mutate_share: float = 0.5

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be positive")
        if self.max_steps < 1:
            raise ValueError("max_steps must be positive")
        if not 0.0 <= self.mutate_share <= 1.0:
            raise ValueError("mutate_share must be in [0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme.to_dict(),
            "seed": self.seed,
            "budget": self.budget,
            "max_steps": self.max_steps,
            "benchmark_params": dict(self.benchmark_params),
            "out_dir": self.out_dir,
            "check_divergence": self.check_divergence,
            "check_invariants": self.check_invariants,
            "mutate_share": self.mutate_share,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzConfig":
        return cls(
            benchmark=data["benchmark"],
            scheme=SchemeSpec.from_dict(data.get("scheme", {})),
            seed=int(data.get("seed", 2017)),
            budget=int(data.get("budget", 50)),
            max_steps=int(data.get("max_steps", 3)),
            benchmark_params=dict(data.get("benchmark_params", {})),
            out_dir=data.get("out_dir"),
            check_divergence=bool(data.get("check_divergence", True)),
            check_invariants=bool(data.get("check_invariants", True)),
            mutate_share=float(data.get("mutate_share", 0.5)),
        )


@dataclass
class FuzzReport:
    """What one fuzz campaign found."""

    config: FuzzConfig
    scenarios_run: int = 0
    outcome_counts: dict[str, int] = field(default_factory=dict)
    buckets: int = 0
    flags: list[OracleFlag] = field(default_factory=list)
    reproducers: list[Reproducer] = field(default_factory=list)
    artifact_paths: list[str] = field(default_factory=list)

    def merge(self, other: "FuzzReport") -> None:
        self.scenarios_run += other.scenarios_run
        for outcome, count in other.outcome_counts.items():
            self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + count
        self.buckets += other.buckets
        self.flags.extend(other.flags)
        seen = {r.scenario.key() for r in self.reproducers}
        for repro in other.reproducers:
            if repro.scenario.key() not in seen:
                seen.add(repro.scenario.key())
                self.reproducers.append(repro)
        self.artifact_paths.extend(
            p for p in other.artifact_paths if p not in self.artifact_paths
        )


class ScenarioFuzzer:
    """The search loop: generate/mutate → execute → oracle → shrink."""

    def __init__(
        self,
        config: FuzzConfig,
        failure_sink: Callable[[dict[str, Any]], None] | None = None,
    ):
        self.config = config
        self.executor = executor_for(config.benchmark, config.benchmark_params)
        self.oracle = Oracle(
            self.executor,
            check_divergence=config.check_divergence,
            check_invariants=config.check_invariants,
        )
        self.failure_sink = failure_sink
        self.resources: tuple[str, ...] = (
            RESOURCE_ANY,
            *self.executor.resource_classes(),
        )
        self.corpus: list[Scenario] = []
        self.seen_buckets: set[tuple[Any, ...]] = set()
        self.seen_reproducers: set[str] = set()

    # -- generation ---------------------------------------------------------

    def _random_step(self, rng: np.random.Generator) -> ScenarioStep:
        ops = list(_OP_WEIGHTS)
        weights = np.array([_OP_WEIGHTS[o] for o in ops])
        op = ops[int(rng.choice(len(ops), p=weights / weights.sum()))]
        total = self.executor.total_steps
        at = int(rng.integers(0, total))
        model = _MODELS[int(rng.integers(0, len(_MODELS)))]
        resource = self.resources[int(rng.integers(0, len(self.resources)))]
        count = int(rng.integers(1, 4)) if op == "dose" else 1
        span = int(rng.integers(0, max(total // 4, 1))) if op == "dose" else 0
        return ScenarioStep(
            op=op, at=at, model=model, resource=resource, count=count, span=span
        )

    def _generate(self, rng: np.random.Generator) -> Scenario:
        n_steps = int(rng.integers(1, self.config.max_steps + 1))
        steps = tuple(self._random_step(rng) for _ in range(n_steps))
        return Scenario(
            benchmark=self.config.benchmark,
            seed=int(rng.integers(0, 2**31)),
            steps=steps,
            scheme=self.config.scheme,
            benchmark_params=self.config.benchmark_params,
        )

    def _mutate(self, parent: Scenario, rng: np.random.Generator) -> Scenario:
        steps = list(parent.steps)
        choice = rng.random()
        if choice < 0.3 and len(steps) < self.config.max_steps:
            steps.insert(int(rng.integers(0, len(steps) + 1)), self._random_step(rng))
        elif choice < 0.5 and len(steps) > 1:
            steps.pop(int(rng.integers(0, len(steps))))
        else:
            i = int(rng.integers(0, len(steps)))
            steps[i] = self._random_step(rng)
        # A fresh seed per mutant keeps fault content exploring even
        # when the step structure repeats.
        return Scenario(
            benchmark=parent.benchmark,
            seed=int(rng.integers(0, 2**31)),
            steps=tuple(steps),
            scheme=parent.scheme,
            benchmark_params=parent.benchmark_params,
        )

    # -- feedback -----------------------------------------------------------

    def _bucket(self, record: ScenarioRecord) -> tuple[Any, ...]:
        signature = tuple(
            sorted({(e["kind"], e["action"]) for e in record.detector_events})
        )
        n_faults = len(record.faults)
        band = 0 if n_faults == 0 else 1 if n_faults == 1 else 2 if n_faults <= 3 else 3
        return (record.outcome, signature, record.recoveries > 0, band)

    def _emit(self, event: dict[str, Any]) -> None:
        if self.failure_sink is not None:
            self.failure_sink(event)

    # -- the loop -----------------------------------------------------------

    def run(self) -> FuzzReport:
        config = self.config
        registry = current_registry()
        scenario_counter = registry.counter(
            "repro_fuzz_scenarios_total",
            help="Fuzz scenarios executed, by outcome.",
        )
        shrink_counter = registry.counter(
            "repro_fuzz_shrinks_total",
            help="Fuzz shrink attempts, by result.",
        )
        report = FuzzReport(config=config)
        for iteration in range(config.budget):
            rng = derive_rng(config.seed, "fuzz", "gen", iteration)
            if self.corpus and rng.random() < config.mutate_share:
                parent = self.corpus[int(rng.integers(0, len(self.corpus)))]
                scenario = self._mutate(parent, rng)
            else:
                scenario = self._generate(rng)
            record, flag = self.oracle.evaluate(scenario)
            report.scenarios_run += 1
            report.outcome_counts[record.outcome] = (
                report.outcome_counts.get(record.outcome, 0) + 1
            )
            scenario_counter.inc(outcome=record.outcome)
            bucket = self._bucket(record)
            if bucket not in self.seen_buckets:
                self.seen_buckets.add(bucket)
                self.corpus.append(scenario)
            if flag is None:
                continue
            report.flags.append(flag)
            self._emit(
                {
                    "event": "fuzz_flag",
                    "kind": flag.kind,
                    "detail": flag.detail,
                    "scenario_key": scenario.key(),
                    "iteration": iteration,
                }
            )
            minimal, executions = shrink(
                scenario, lambda s: self.oracle.matches(s, flag.kind)
            )
            shrunk_record, shrunk_flag = self.oracle.evaluate(minimal)
            if shrunk_flag is None or shrunk_flag.kind != flag.kind:
                # The cap or nondeterminism left a non-reproducing
                # minimum; fall back to the original flagged scenario.
                shrink_counter.inc(result="rejected")
                minimal, shrunk_record = scenario, record
                shrunk_flag = flag
            else:
                shrink_counter.inc(result="accepted")
            if minimal.key() in self.seen_reproducers:
                continue
            self.seen_reproducers.add(minimal.key())
            reproducer = Reproducer(
                scenario=minimal,
                flag=shrunk_flag,
                expected=shrunk_record,
                original_len=len(scenario),
                shrunk_len=len(minimal),
                shrink_executions=executions,
            )
            report.reproducers.append(reproducer)
            if config.out_dir is not None:
                path = reproducer.save(config.out_dir)
                report.artifact_paths.append(str(path))
            self._emit(
                {
                    "event": "fuzz_reproducer",
                    "kind": shrunk_flag.kind,
                    "scenario_key": minimal.key(),
                    "original_len": len(scenario),
                    "shrunk_len": len(minimal),
                    "artifact": report.artifact_paths[-1]
                    if config.out_dir is not None
                    else None,
                }
            )
        report.buckets = len(self.seen_buckets)
        return report


def _run_chunk(payload: dict[str, Any]) -> dict[str, Any]:
    """Subprocess entry for one worker's share of the budget."""
    config = FuzzConfig.from_dict(payload)
    report = ScenarioFuzzer(config).run()
    return {
        "scenarios_run": report.scenarios_run,
        "outcome_counts": report.outcome_counts,
        "buckets": report.buckets,
        "flags": [f.to_dict() for f in report.flags],
        "reproducers": [r.to_dict() for r in report.reproducers],
        "artifact_paths": report.artifact_paths,
    }


def run_fuzz_campaign(
    config: FuzzConfig,
    workers: int = 1,
    failure_sink: Callable[[dict[str, Any]], None] | None = None,
) -> FuzzReport:
    """Run a fuzz campaign, optionally split across worker processes.

    ``workers`` > 1 partitions the budget into per-worker campaigns
    with derived seeds; each chunk is individually deterministic, and
    reproducers are deduplicated by scenario key at merge.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return ScenarioFuzzer(config, failure_sink=failure_sink).run()
    from repro.carolfi.isolation import mp_context

    share = config.budget // workers
    extra = config.budget % workers
    payloads = []
    for w in range(workers):
        budget = share + (1 if w < extra else 0)
        if budget == 0:
            continue
        chunk = dict(config.to_dict())
        chunk["budget"] = budget
        chunk["seed"] = int(
            derive_rng(config.seed, "fuzz", "worker", w).integers(0, 2**31)
        )
        payloads.append(chunk)
    ctx = mp_context()
    with ctx.Pool(processes=workers) as pool:
        results = pool.map(_run_chunk, payloads)
    report = FuzzReport(config=config)
    for result in results:
        part = FuzzReport(
            config=config,
            scenarios_run=int(result["scenarios_run"]),
            outcome_counts=dict(result["outcome_counts"]),
            buckets=int(result["buckets"]),
            flags=[OracleFlag.from_dict(f) for f in result["flags"]],
            reproducers=[Reproducer.from_dict(r) for r in result["reproducers"]],
            artifact_paths=list(result["artifact_paths"]),
        )
        report.merge(part)
        if failure_sink is not None:
            for flag in part.flags:
                failure_sink({"event": "fuzz_flag", **flag.to_dict()})
            for repro in part.reproducers:
                failure_sink(
                    {
                        "event": "fuzz_reproducer",
                        "kind": repro.flag.kind,
                        "scenario_key": repro.scenario.key(),
                        "original_len": repro.original_len,
                        "shrunk_len": repro.shrunk_len,
                    }
                )
    return report
