"""Interestingness oracle: which scenario outcomes are worth keeping.

Three flag kinds (DESIGN §12.2):

* ``escape`` — the hardening scheme has detectors, the outcome is an
  SDC, and **no** detector ever tripped: silent corruption sailed past
  the protection.  This is the resilience finding the fuzzer exists
  for.
* ``divergence`` — re-executing the same scenario produced a different
  record: the engine's determinism contract is broken (twin mismatch).
* ``invariant`` — a snapshot-restore probe changed the record: the
  benchmark's snapshot/restore protocol leaks state.

``divergence`` and ``invariant`` are correctness findings about the
*injector itself* — the fuzzer doubles as the engine's own test
harness.  Escapes are confirmed by one re-execution before being
flagged, so a non-deterministic fluke is reported as the (more severe)
divergence instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzz.executor import ScenarioExecutor, ScenarioRecord
from repro.fuzz.scenario import Scenario

__all__ = ["Oracle", "OracleFlag"]

FLAG_KINDS: tuple[str, ...] = ("escape", "divergence", "invariant")


@dataclass(frozen=True)
class OracleFlag:
    """One interesting finding about a scenario."""

    kind: str  # escape | divergence | invariant
    detail: str = ""

    def to_dict(self) -> dict[str, str]:
        return {"kind": self.kind, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "OracleFlag":
        return cls(kind=data["kind"], detail=data.get("detail", ""))


class Oracle:
    """Evaluates scenarios and flags the interesting ones.

    ``check_divergence`` and ``check_invariants`` each cost one extra
    execution per scenario; the fuzzer enables them by default, the
    shrinker's predicate re-checks only the flag kind it is preserving.
    """

    def __init__(
        self,
        executor: ScenarioExecutor,
        check_divergence: bool = True,
        check_invariants: bool = True,
    ):
        self.executor = executor
        self.check_divergence = check_divergence
        self.check_invariants = check_invariants

    def evaluate(self, scenario: Scenario) -> tuple[ScenarioRecord, OracleFlag | None]:
        """Execute ``scenario`` once (plus probe twins) and classify it."""
        record = self.executor.execute(scenario)
        flag = self.classify(scenario, record)
        return record, flag

    def classify(
        self, scenario: Scenario, record: ScenarioRecord
    ) -> OracleFlag | None:
        if self.check_divergence:
            twin = self.executor.execute(scenario)
            if twin.canonical_json() != record.canonical_json():
                return OracleFlag(
                    "divergence",
                    f"re-execution record differs (outcome {record.outcome} "
                    f"vs {twin.outcome})",
                )
        if self.check_invariants and record.executed_steps > 1:
            probe_at = max(1, record.total_steps // 2)
            probed = self.executor.execute(scenario, snapshot_roundtrip_at=probe_at)
            if probed.canonical_json() != record.canonical_json():
                return OracleFlag(
                    "invariant",
                    f"snapshot-restore roundtrip at step {probe_at} changed the "
                    f"record (outcome {record.outcome} vs {probed.outcome})",
                )
        if (
            record.outcome == "sdc"
            and scenario.scheme.has_detectors
            and not record.detector_tripped
        ):
            # Confirm: a flaky escape is a determinism bug, not an escape.
            confirm = self.executor.execute(scenario)
            if confirm.canonical_json() != record.canonical_json():
                return OracleFlag("divergence", "escape did not reproduce")
            return OracleFlag(
                "escape",
                f"SDC ({record.detail}) with zero detector events under "
                f"scheme {scenario.scheme.to_dict()}",
            )
        return None

    def matches(self, scenario: Scenario, kind: str) -> bool:
        """Shrinker predicate: does ``scenario`` still raise flag ``kind``?"""
        _record, flag = self.evaluate(scenario)
        return flag is not None and flag.kind == kind
