"""Scenario grammar: seed-keyed multi-fault sequences.

A :class:`Scenario` is a small program in a five-op language executed
by :mod:`repro.fuzz.executor` against a benchmark wrapped in a
hardening :class:`SchemeSpec`.  Everything is a frozen value with a
canonical JSON form, so a scenario can be hashed (:meth:`Scenario.key`),
persisted in a reproducer artifact, and replayed bit-identically on any
host or worker count.

The ops (DESIGN §12.1):

* ``inject`` — deliver ``count`` faults under ``model`` into variables
  of class ``resource`` just before step ``at`` executes;
* ``dose`` — accumulated dose: ``count`` single-element corruptions
  spread evenly over steps ``[at, at + span]``;
* ``strike_recovery`` — arm one fault that fires *during* the next
  checkpoint restore (on the freshly-restored state);
* ``pause_checkpoint`` / ``resume_checkpoint`` — stop / restart
  periodic snapshot capture from step ``at`` on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.faults.models import FaultModel

__all__ = ["RESOURCE_ANY", "STEP_OPS", "Scenario", "ScenarioStep", "SchemeSpec"]

STEP_OPS: tuple[str, ...] = (
    "inject",
    "dose",
    "strike_recovery",
    "pause_checkpoint",
    "resume_checkpoint",
)

#: Wildcard resource: the fault may land in any live variable class.
RESOURCE_ANY = "any"

_MODELS = tuple(m.value for m in FaultModel.all())


@dataclass(frozen=True)
class ScenarioStep:
    """One scenario op (see module docstring for semantics)."""

    op: str
    at: int = 0
    model: str = "single"
    resource: str = RESOURCE_ANY
    count: int = 1
    span: int = 0

    def __post_init__(self) -> None:
        if self.op not in STEP_OPS:
            raise ValueError(f"unknown scenario op {self.op!r}")
        if self.model not in _MODELS:
            raise ValueError(f"unknown fault model {self.model!r}")
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.span < 0:
            raise ValueError("span must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "at": self.at,
            "model": self.model,
            "resource": self.resource,
            "count": self.count,
            "span": self.span,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioStep":
        return cls(
            op=data["op"],
            at=int(data.get("at", 0)),
            model=data.get("model", "single"),
            resource=data.get("resource", RESOURCE_ANY),
            count=int(data.get("count", 1)),
            span=int(data.get("span", 0)),
        )


@dataclass(frozen=True)
class SchemeSpec:
    """Which hardening techniques wrap the benchmark under test.

    ``verify_interval`` widens the detectors' comparison window: guards
    are *verified* only at steps divisible by it but *re-synced* after
    every step, so a fault landing between verify points is absorbed
    into the trusted image — the executable model of DWC's comparison
    window, and the weakened-detector knob the fuzz CI job exploits to
    plant a known escape.
    """

    guards: bool = True
    abft: bool = False
    verify_interval: int = 1
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        if self.verify_interval < 1:
            raise ValueError("verify_interval must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")

    @property
    def has_detectors(self) -> bool:
        return self.guards or self.abft

    def to_dict(self) -> dict[str, Any]:
        return {
            "guards": self.guards,
            "abft": self.abft,
            "verify_interval": self.verify_interval,
            "checkpoint_interval": self.checkpoint_interval,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SchemeSpec":
        return cls(
            guards=bool(data.get("guards", True)),
            abft=bool(data.get("abft", False)),
            verify_interval=int(data.get("verify_interval", 1)),
            checkpoint_interval=int(data.get("checkpoint_interval", 0)),
        )


@dataclass(frozen=True)
class Scenario:
    """A deterministic multi-fault scenario against a hardened benchmark.

    ``seed`` keys every random draw the executor makes, and each step's
    fault content is keyed by the *step's own fields* (not its position),
    so dropping an unrelated step during shrinking leaves the remaining
    steps' faults bit-identical — the property the shrinker relies on.
    """

    benchmark: str
    seed: int
    steps: tuple[ScenarioStep, ...]
    scheme: SchemeSpec = SchemeSpec()
    benchmark_params: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.steps)

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "seed": self.seed,
            "steps": [s.to_dict() for s in self.steps],
            "scheme": self.scheme.to_dict(),
            "benchmark_params": dict(self.benchmark_params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        return cls(
            benchmark=data["benchmark"],
            seed=int(data["seed"]),
            steps=tuple(ScenarioStep.from_dict(s) for s in data["steps"]),
            scheme=SchemeSpec.from_dict(data.get("scheme", {})),
            benchmark_params=dict(data.get("benchmark_params", {})),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """Content hash — the scenario's identity for dedup and artifacts."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def replace_steps(self, steps: tuple[ScenarioStep, ...]) -> "Scenario":
        return Scenario(
            benchmark=self.benchmark,
            seed=self.seed,
            steps=steps,
            scheme=self.scheme,
            benchmark_params=self.benchmark_params,
        )
