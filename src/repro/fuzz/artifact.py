"""Replayable reproducer artifacts.

A :class:`Reproducer` packages a shrunk scenario, the oracle flag it
triggers, and the exact :class:`~repro.fuzz.executor.ScenarioRecord`
it produced, as one JSON file (``repro-<key12>.json``).  Replay is a
byte contract: re-executing the scenario must reproduce the stored
record's canonical JSON exactly — on this host, any other host, and
(via :func:`replay_in_workers`) inside any number of freshly-spawned
worker processes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.fuzz.executor import ScenarioRecord, executor_for
from repro.fuzz.oracle import OracleFlag
from repro.fuzz.scenario import Scenario

__all__ = [
    "Reproducer",
    "load_reproducer",
    "replay",
    "replay_in_workers",
]

ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class Reproducer:
    """One minimal reproducer: scenario + flag + expected record."""

    scenario: Scenario
    flag: OracleFlag
    expected: ScenarioRecord
    original_len: int
    shrunk_len: int
    shrink_executions: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": ARTIFACT_VERSION,
            "scenario": self.scenario.to_dict(),
            "flag": self.flag.to_dict(),
            "expected": self.expected.to_dict(),
            "original_len": self.original_len,
            "shrunk_len": self.shrunk_len,
            "shrink_executions": self.shrink_executions,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Reproducer":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            flag=OracleFlag.from_dict(data["flag"]),
            expected=ScenarioRecord.from_dict(data["expected"]),
            original_len=int(data["original_len"]),
            shrunk_len=int(data["shrunk_len"]),
            shrink_executions=int(data.get("shrink_executions", 0)),
        )

    def filename(self) -> str:
        return f"repro-{self.scenario.key()[:12]}.json"

    def save(self, out_dir: str | Path) -> Path:
        """Atomic write (tmp + rename) so readers never see a torn file."""
        target_dir = Path(out_dir)
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / self.filename()
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n")
        os.replace(tmp, target)
        return target


def load_reproducer(path: str | Path) -> Reproducer:
    with open(path, encoding="utf-8") as handle:
        return Reproducer.from_dict(json.load(handle))


def replay(reproducer: Reproducer) -> tuple[ScenarioRecord, bool]:
    """Re-execute the scenario; True iff the record bytes match."""
    executor = executor_for(
        reproducer.scenario.benchmark, reproducer.scenario.benchmark_params
    )
    record = executor.execute(reproducer.scenario)
    return record, record.canonical_json() == reproducer.expected.canonical_json()


def _replay_worker(payload: str) -> str:
    """Subprocess entry: returns the replayed record's canonical JSON."""
    reproducer = Reproducer.from_dict(json.loads(payload))
    record, _ok = replay(reproducer)
    return record.canonical_json()


def replay_in_workers(reproducer: Reproducer, workers: int) -> bool:
    """Replay in ``workers`` fresh processes; True iff every copy matches.

    Each worker rebuilds the executor (and its golden) from scratch, so
    a pass demonstrates the record is a pure function of the artifact —
    no hidden dependence on the parent's warm caches.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    expected = reproducer.expected.canonical_json()
    if workers == 1:
        record, ok = replay(reproducer)
        return ok
    from repro.carolfi.isolation import mp_context

    payload = json.dumps(reproducer.to_dict(), sort_keys=True)
    ctx = mp_context()
    with ctx.Pool(processes=workers) as pool:
        results = pool.map(_replay_worker, [payload] * workers)
    return all(result == expected for result in results)
