"""Greedy minimal-reproducer shrinking.

Hypothesis-style (SNIPPETS.md): repeatedly apply simplifying
transforms, keep any candidate the predicate still accepts, stop at a
fixpoint or the execution cap.  Every transform removes a step or
shrinks a field toward its minimum, so the result is never longer than
the original and termination is structural, not probabilistic.

Shrink stability rests on the executor's RNG keying: a step's fault
content depends only on the step's own fields, so dropping step A
cannot change what step B does — the predicate re-check is exact, not
best-effort.

Transforms, in pass order (DESIGN §12.3):

1. **drop** — delete each step, longest-suffix first;
2. **defuse** — per step: ``count`` → 1, ``span`` → 0, ``model`` →
   ``single``, ``resource`` → ``any``;
3. **retime** — bisect each step's ``at`` toward 0.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.fuzz.scenario import Scenario, ScenarioStep

__all__ = ["shrink"]

#: Default cap on predicate evaluations (each is >= 1 execution).
MAX_SHRINK_EXECUTIONS = 200


def _defused(step: ScenarioStep) -> list[ScenarioStep]:
    """Simpler variants of one step, most aggressive first."""
    out = []
    if step.count > 1 or step.span > 0 or step.model != "single" or step.resource != "any":
        out.append(
            ScenarioStep(op=step.op, at=step.at, model="single", resource="any")
        )
    if step.count > 1:
        out.append(
            ScenarioStep(
                op=step.op, at=step.at, model=step.model,
                resource=step.resource, count=1, span=step.span,
            )
        )
    if step.span > 0:
        out.append(
            ScenarioStep(
                op=step.op, at=step.at, model=step.model,
                resource=step.resource, count=step.count, span=0,
            )
        )
    if step.model != "single":
        out.append(
            ScenarioStep(
                op=step.op, at=step.at, model="single",
                resource=step.resource, count=step.count, span=step.span,
            )
        )
    if step.resource != "any":
        out.append(
            ScenarioStep(
                op=step.op, at=step.at, model=step.model,
                resource="any", count=step.count, span=step.span,
            )
        )
    return out


def _retimed(step: ScenarioStep, at: int) -> ScenarioStep:
    return ScenarioStep(
        op=step.op, at=at, model=step.model,
        resource=step.resource, count=step.count, span=step.span,
    )


def shrink(
    scenario: Scenario,
    predicate: Callable[[Scenario], bool],
    max_executions: int = MAX_SHRINK_EXECUTIONS,
) -> tuple[Scenario, int]:
    """Minimize ``scenario`` while ``predicate`` stays true.

    ``predicate`` must be true of ``scenario`` itself (the caller
    flags first, shrinks second).  Returns the minimal scenario found
    and the number of predicate evaluations spent.  The result is
    guaranteed no longer than the input even when the cap bites.
    """
    current = scenario
    spent = 0

    def accept(candidate: Scenario) -> bool:
        nonlocal spent
        if spent >= max_executions:
            return False
        spent += 1
        return predicate(candidate)

    improved = True
    while improved and spent < max_executions:
        improved = False

        # Pass 1: drop steps, longest suffix first, then singles.
        steps = current.steps
        cut = len(steps) - 1
        while cut >= 1 and spent < max_executions:
            candidate = current.replace_steps(steps[:cut])
            if accept(candidate):
                current, steps = candidate, candidate.steps
                improved = True
                cut = min(cut, len(steps)) - 1
            else:
                cut -= 1
        i = 0
        while i < len(current.steps) and spent < max_executions:
            steps = current.steps
            if len(steps) <= 1:
                break
            candidate = current.replace_steps(steps[:i] + steps[i + 1 :])
            if accept(candidate):
                current = candidate
                improved = True
            else:
                i += 1

        # Pass 2: defuse each surviving step.
        i = 0
        while i < len(current.steps) and spent < max_executions:
            for simpler in _defused(current.steps[i]):
                steps = current.steps
                candidate = current.replace_steps(
                    steps[:i] + (simpler,) + steps[i + 1 :]
                )
                if accept(candidate):
                    current = candidate
                    improved = True
                    break
            else:
                i += 1

        # Pass 3: bisect each step's time toward 0.
        i = 0
        while i < len(current.steps) and spent < max_executions:
            step = current.steps[i]
            lo, hi = 0, step.at
            moved = False
            while lo < hi and spent < max_executions:
                mid = (lo + hi) // 2
                steps = current.steps
                candidate = current.replace_steps(
                    steps[:i] + (_retimed(step, mid),) + steps[i + 1 :]
                )
                if accept(candidate):
                    current = candidate
                    step = current.steps[i]
                    hi = mid
                    moved = True
                else:
                    lo = mid + 1
            if moved:
                improved = True
            i += 1

    return current, spent
