"""Deterministic scenario execution against a hardened benchmark.

:class:`ScenarioExecutor` is the fuzzer's runtime: it plays a
:class:`~repro.fuzz.scenario.Scenario` against a benchmark wrapped in
the scheme's guards, ABFT and checkpoint/restart, and returns a
:class:`ScenarioRecord` whose canonical JSON is the unit of byte
comparison for the oracle, the shrinker and artifact replay.

Determinism contract (stricter than the supervisor's): there is **no
wall-clock watchdog** anywhere in this path.  Runaway re-execution is
converted to a DUE by a deterministic *step budget* (a fixed multiple
of the fault-free step count), and data-dependent loop hangs already
raise :class:`~repro.benchmarks.base.BenchmarkHang` deterministically.
Two executions of the same scenario therefore produce bit-identical
records on any host, process or worker count.

Every fault's random content is keyed by the *step's own fields* plus
its occurrence ordinal — never by its position in the scenario or by
execution history — so shrinking away one step cannot perturb the
faults another step delivers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, BenchmarkError, BenchmarkHang
from repro.benchmarks.registry import create
from repro.faults.models import FaultModel, apply_fault_model
from repro.hardening.abft import AbftOutcome, abft_check, abft_checksums
from repro.hardening.guards import (
    DetectorEvent,
    FaultDetected,
    VariableGuard,
    attach_observer,
    build_guards,
)
from repro.util.rng import derive_rng

__all__ = ["ScenarioExecutor", "ScenarioRecord", "executor_for"]

#: Exceptions classified as DUE-crash, mirroring the supervisor.
_CRASH_EXCEPTIONS = (
    BenchmarkError,
    IndexError,
    ValueError,
    KeyError,
    ArithmeticError,
    MemoryError,
)

#: Deterministic step budget multiplier: a scenario may re-execute (via
#: checkpoint rollback) at most this many times the fault-free quanta
#: before being classified DUE/timeout.
_BUDGET_FACTOR = 8

#: Rollback cascade cap, mirroring run_with_checkpoints' default.
_MAX_FAILURES = 8


@dataclass(frozen=True)
class ScenarioRecord:
    """Everything one scenario execution observed, in comparable form.

    ``canonical_json`` is the replay contract: two executions of the
    same scenario must produce identical bytes.  The output itself is
    folded in as a digest so records stay small.
    """

    benchmark: str
    scenario_key: str
    outcome: str  # masked | sdc | due | detected | corrected
    detail: str = ""
    detected_by: str = ""
    faults: tuple[dict[str, Any], ...] = ()
    detector_events: tuple[dict[str, str], ...] = ()
    recoveries: int = 0
    executed_steps: int = 0
    total_steps: int = 0
    output_digest: str = ""
    sdc_wrong_elements: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "scenario_key": self.scenario_key,
            "outcome": self.outcome,
            "detail": self.detail,
            "detected_by": self.detected_by,
            "faults": [dict(f) for f in self.faults],
            "detector_events": [dict(e) for e in self.detector_events],
            "recoveries": self.recoveries,
            "executed_steps": self.executed_steps,
            "total_steps": self.total_steps,
            "output_digest": self.output_digest,
            "sdc_wrong_elements": self.sdc_wrong_elements,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioRecord":
        return cls(
            benchmark=data["benchmark"],
            scenario_key=data["scenario_key"],
            outcome=data["outcome"],
            detail=data.get("detail", ""),
            detected_by=data.get("detected_by", ""),
            faults=tuple(dict(f) for f in data.get("faults", ())),
            detector_events=tuple(dict(e) for e in data.get("detector_events", ())),
            recoveries=int(data.get("recoveries", 0)),
            executed_steps=int(data.get("executed_steps", 0)),
            total_steps=int(data.get("total_steps", 0)),
            output_digest=data.get("output_digest", ""),
            sdc_wrong_elements=int(data.get("sdc_wrong_elements", 0)),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def detector_tripped(self) -> bool:
        return bool(self.detector_events)


@dataclass
class _Delivery:
    """One scheduled fault delivery, resolved from a scenario step."""

    step: int
    op: str
    model: FaultModel
    resource: str
    rng_key: tuple[Any, ...]
    delivered: bool = False


@dataclass
class _RunState:
    """Mutable bookkeeping for one execution."""

    faults: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, str]] = field(default_factory=list)
    recoveries: int = 0
    executed: int = 0


class ScenarioExecutor:
    """Replays scenarios against one (benchmark, params) pair.

    The golden output is computed once at construction and shared by
    every execution, like the supervisor's golden cache.  The executor
    is deliberately *stateless across executions* beyond that: each
    ``execute`` builds fresh state, guards and snapshots.
    """

    def __init__(self, benchmark: str, benchmark_params: dict[str, Any] | None = None):
        self.benchmark: Benchmark = create(benchmark, **(benchmark_params or {}))
        self.benchmark_params = dict(benchmark_params or {})
        state = self._fresh_state()
        self.total_steps = self.benchmark.num_steps(state)
        self.golden = self._quantize(self.benchmark.run(state))

    # -- plumbing -----------------------------------------------------------

    def _fresh_state(self) -> Any:
        return self.benchmark.make_state(
            derive_rng(2017, "fuzz", self.benchmark.name, "input")
        )

    def _quantize(self, output: np.ndarray) -> np.ndarray:
        decimals = self.benchmark.output_decimals
        if decimals is None:
            return output
        with np.errstate(invalid="ignore", over="ignore"):
            return np.round(output, decimals)

    def _digest(self, output: np.ndarray) -> str:
        payload = np.ascontiguousarray(output).tobytes()
        meta = f"{output.dtype}:{output.shape}".encode()
        return hashlib.sha256(meta + payload).hexdigest()

    def resource_classes(self) -> tuple[str, ...]:
        """Variable classes live at step 0 — the generator's resource pool."""
        state = self._fresh_state()
        classes: list[str] = []
        for var in self.benchmark.variables(state, 0):
            if var.var_class not in classes:
                classes.append(var.var_class)
        return tuple(classes)

    # -- fault delivery -----------------------------------------------------

    def _deliver(
        self,
        state: Any,
        step: int,
        delivery: _Delivery,
        run: _RunState,
        ordinal: int,
        during: str = "step",
    ) -> None:
        """Corrupt one live element; content keyed by the step's fields."""
        rng = derive_rng(*delivery.rng_key, ordinal)
        candidates = [
            v for v in self.benchmark.variables(state, min(step, self.total_steps - 1))
            if v.size > 0
        ]
        if not candidates:
            return
        if delivery.resource != "any":
            filtered = [v for v in candidates if v.var_class == delivery.resource]
            if filtered:
                candidates = filtered
        weights = np.array([v.nbytes for v in candidates], dtype=np.float64)
        var = candidates[int(rng.choice(len(candidates), p=weights / weights.sum()))]
        element = int(rng.integers(0, var.size))
        detail = apply_fault_model(var.array, element, delivery.model, rng)
        run.faults.append(
            {
                "op": delivery.op,
                "step": step,
                "during": during,
                "model": delivery.model.value,
                "variable": var.name,
                "var_class": var.var_class,
                "flat_index": element,
                "bits": list(detail["bits"]) if detail["bits"] is not None else None,
            }
        )

    # -- the scenario run ---------------------------------------------------

    def execute(self, scenario: Any, snapshot_roundtrip_at: int | None = None) -> ScenarioRecord:
        """Play one scenario to completion.

        ``snapshot_roundtrip_at`` is the invariant oracle's probe: at
        that step boundary the state is snapshot-and-restored and the
        run continues on the restored copy.  By the snapshot contract
        this must not change a single output bit; the oracle compares
        the probed record against the plain one.
        """
        bench = self.benchmark
        scheme = scenario.scheme
        total = self.total_steps
        run = _RunState()

        # Resolve scenario steps into concrete schedules.  Occurrence
        # ordinals disambiguate steps with identical fields so their
        # fault content differs (a repeated identical flip would cancel).
        occurrence: dict[tuple[Any, ...], int] = {}
        schedule: dict[int, list[_Delivery]] = {}
        strikes: list[_Delivery] = []
        toggles: dict[int, bool] = {}  # step -> checkpointing enabled
        for s in scenario.steps:
            content = (s.op, s.at, s.model, s.resource, s.count, s.span)
            occ = occurrence.get(content, 0)
            occurrence[content] = occ + 1
            key = (scenario.seed, "fuzz-step", s.op, s.at, s.model, s.resource, occ)
            if s.op == "inject":
                at = min(s.at, total - 1)
                for j in range(s.count):
                    schedule.setdefault(at, []).append(
                        _Delivery(at, s.op, FaultModel(s.model), s.resource, key + (j,))
                    )
            elif s.op == "dose":
                for j in range(s.count):
                    at = min(s.at + (s.span * j) // max(s.count - 1, 1), total - 1)
                    schedule.setdefault(at, []).append(
                        _Delivery(at, s.op, FaultModel(s.model), s.resource, key + (j,))
                    )
            elif s.op == "strike_recovery":
                strikes.append(
                    _Delivery(s.at, s.op, FaultModel(s.model), s.resource, key)
                )
            elif s.op == "pause_checkpoint":
                toggles[min(s.at, total - 1)] = False
            else:  # resume_checkpoint
                toggles[min(s.at, total - 1)] = True

        state = self._fresh_state()
        checksums = (
            abft_checksums(state.a_src, state.b_src)
            if scheme.abft and bench.name == "dgemm"
            else None
        )
        guards: dict[str, VariableGuard] = (
            build_guards(bench.name) if scheme.guards else {}
        )
        if guards:
            attach_observer(
                guards, lambda event: run.events.append(event.to_dict())
            )
            initial = {v.name: v.array for v in bench.variables(state, 0)}
            for name, guard in guards.items():
                if name in initial:
                    guard.resync(initial[name])

        checkpointing = scheme.checkpoint_interval > 0
        snapshots: list[tuple[int, Any]] = (
            [(0, bench.snapshot(state))] if checkpointing else []
        )
        capture_enabled = True
        strike_cursor = 0
        struck_restore = False
        failures = 0
        budget = max(64, _BUDGET_FACTOR * total)
        index = 0
        outcome = "masked"
        detail = ""
        detected_by = ""
        digest = ""
        wrong_elements = 0

        def resync_guards(at_step: int) -> None:
            arrays = {v.name: v.array for v in bench.variables(state, at_step)}
            for name, guard in guards.items():
                if name in arrays:
                    guard.resync(arrays[name])
                else:
                    guard.detach()

        while index < total:
            if run.executed >= budget:
                outcome, detail = "due", "timeout: deterministic step budget exhausted"
                break
            if index in toggles:
                capture_enabled = toggles[index]
            try:
                for delivery in schedule.get(index, ()):
                    if not delivery.delivered:
                        delivery.delivered = True
                        self._deliver(state, index, delivery, run, ordinal=0)
                if guards and index % scheme.verify_interval == 0:
                    arrays = {v.name: v.array for v in bench.variables(state, index)}
                    for name, guard in guards.items():
                        if name in arrays:
                            guard.verify(arrays[name])
                bench.step(state, index)
                run.executed += 1
                index += 1
                if index == snapshot_roundtrip_at:
                    state = bench.restore(bench.snapshot(state))
                if guards and index < total:
                    resync_guards(index)
                if (
                    checkpointing
                    and capture_enabled
                    and failures == 0
                    and index < total
                    and index % scheme.checkpoint_interval == 0
                ):
                    snapshots.append((index, bench.snapshot(state)))
            except (FaultDetected, BenchmarkHang, *_CRASH_EXCEPTIONS) as exc:
                if isinstance(exc, FaultDetected):
                    kind_detail = f"{exc.kind.value}:{exc.variable}"
                elif isinstance(exc, BenchmarkHang):
                    kind_detail = f"hang:{exc}"
                else:
                    kind_detail = f"crash:{type(exc).__name__}:{exc}"
                if not checkpointing:
                    if isinstance(exc, FaultDetected):
                        outcome, detected_by, detail = "detected", kind_detail, str(exc)
                    else:
                        outcome, detail = "due", kind_detail
                    break
                failures += 1
                if failures > _MAX_FAILURES:
                    outcome, detail = "due", f"recovery gave up: {kind_detail}"
                    break
                # Same poisoned-snapshot cascade as run_with_checkpoints,
                # including the restore-strike exemption.
                if failures > 1 and not struck_restore and len(snapshots) > 1:
                    snapshots.pop()
                index, base = snapshots[-1]
                state = bench.restore(base)
                run.recoveries += 1
                # The restored image is trusted; guards re-attach to it
                # *before* any restore strike lands, so a strike-induced
                # corruption is still detectable at the next verify point.
                if guards:
                    resync_guards(index)
                struck_restore = False
                if strike_cursor < len(strikes):
                    strike = strikes[strike_cursor]
                    strike_cursor += 1
                    self._deliver(state, index, strike, run, ordinal=0, during="restore")
                    struck_restore = True
        else:
            # Clean loop exit: classify the output.
            try:
                observed = bench.output(state)
                if checksums is not None:
                    verdict = abft_check(observed, checksums[0], checksums[1])
                    if verdict.outcome is not AbftOutcome.CLEAN:
                        run.events.append(
                            DetectorEvent("output", "abft", verdict.outcome.value).to_dict()
                        )
                    if verdict.outcome is AbftOutcome.CORRECTED:
                        observed = verdict.matrix
                        quantized = self._quantize(observed)
                        if np.array_equal(quantized, self.golden):
                            outcome, detected_by = "corrected", "abft"
                            detail = f"{verdict.corrections} element(s) repaired"
                        else:
                            outcome = "sdc"
                            detail = "abft corrected but output still differs"
                    elif verdict.outcome is AbftOutcome.DETECTED:
                        outcome, detected_by = "detected", "abft"
                        detail = "output checksums mismatch (uncorrectable)"
                if outcome in ("masked", "sdc", "corrected"):
                    quantized = self._quantize(observed)
                    digest = self._digest(quantized)
                    if outcome == "masked":
                        wrong_elements = int(np.sum(~self._equal_mask(quantized)))
                        if wrong_elements:
                            outcome = "sdc"
                            detail = f"{wrong_elements} wrong element(s)"
                    elif outcome == "sdc":
                        wrong_elements = int(np.sum(~self._equal_mask(quantized)))
            except (BenchmarkHang, *_CRASH_EXCEPTIONS) as exc:
                outcome, detail = "due", f"crash:{type(exc).__name__}:{exc}"
                digest, wrong_elements = "", 0

        return ScenarioRecord(
            benchmark=bench.name,
            scenario_key=scenario.key(),
            outcome=outcome,
            detail=detail,
            detected_by=detected_by,
            faults=tuple(run.faults),
            detector_events=tuple(run.events),
            recoveries=run.recoveries,
            executed_steps=run.executed,
            total_steps=total,
            output_digest=digest,
            sdc_wrong_elements=wrong_elements,
        )

    def _equal_mask(self, quantized: np.ndarray) -> np.ndarray:
        golden = self.golden
        with np.errstate(invalid="ignore"):
            equal = quantized == golden
        both_nan = np.zeros_like(equal, dtype=bool)
        if quantized.dtype.kind == "f":
            both_nan = np.isnan(quantized) & np.isnan(golden)
        return equal | both_nan


#: Per-process executor cache: goldens are the expensive part, and a
#: fuzz campaign replays thousands of scenarios against the same pair.
_EXECUTORS: dict[str, ScenarioExecutor] = {}


def executor_for(
    benchmark: str, benchmark_params: dict[str, Any] | None = None
) -> ScenarioExecutor:
    key = json.dumps(
        {"benchmark": benchmark, "params": benchmark_params or {}}, sort_keys=True
    )
    cached = _EXECUTORS.get(key)
    if cached is None:
        cached = _EXECUTORS[key] = ScenarioExecutor(benchmark, benchmark_params)
    return cached
