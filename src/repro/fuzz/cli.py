"""``repro-fuzz``: run fuzz campaigns, replay and inspect reproducers.

Subcommands::

    repro-fuzz run --benchmark lud --verify-interval 3 --budget 40 \\
        --seed 7 --out reproducers/ [--expect 1] [--workers 2]
    repro-fuzz replay reproducers/repro-ab12cd34ef56.json [--workers 4]
    repro-fuzz show reproducers/repro-ab12cd34ef56.json

``run`` exits non-zero when ``--expect N`` reproducers were not found
(the CI fuzz-smoke contract); ``replay`` exits non-zero on any byte
mismatch against the stored record.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, TextIO

from repro.fuzz.artifact import load_reproducer, replay, replay_in_workers
from repro.fuzz.scenario import SchemeSpec
from repro.fuzz.search import FuzzConfig, run_fuzz_campaign

__all__ = ["main"]


def _parse_params(pairs: list[str]) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _cmd_run(args: argparse.Namespace, stream: TextIO) -> int:
    scheme = SchemeSpec(
        guards=not args.no_guards,
        abft=args.abft,
        verify_interval=args.verify_interval,
        checkpoint_interval=args.checkpoint_interval,
    )
    config = FuzzConfig(
        benchmark=args.benchmark,
        scheme=scheme,
        seed=args.seed,
        budget=args.budget,
        max_steps=args.max_steps,
        benchmark_params=_parse_params(args.param),
        out_dir=args.out,
        check_divergence=not args.no_divergence_check,
        check_invariants=not args.no_invariant_check,
    )
    failure_sink = None
    sink_obj = None
    if args.failure_log is not None:
        from repro.carolfi.engine import FailureSink

        sink_obj = FailureSink(args.failure_log)
        failure_sink = sink_obj
    try:
        report = run_fuzz_campaign(config, workers=args.workers, failure_sink=failure_sink)
    finally:
        if sink_obj is not None:
            sink_obj.close()
    print(f"scenarios run: {report.scenarios_run}", file=stream)
    for outcome in sorted(report.outcome_counts):
        print(f"  {outcome}: {report.outcome_counts[outcome]}", file=stream)
    print(f"behavior buckets: {report.buckets}", file=stream)
    print(f"flags: {len(report.flags)}", file=stream)
    print(f"reproducers: {len(report.reproducers)}", file=stream)
    for repro in report.reproducers:
        print(
            f"  [{repro.flag.kind}] {repro.filename()} "
            f"steps {repro.original_len} -> {repro.shrunk_len} "
            f"outcome={repro.expected.outcome}",
            file=stream,
        )
    if args.expect is not None and len(report.reproducers) < args.expect:
        print(
            f"FAIL: expected >= {args.expect} reproducer(s), "
            f"found {len(report.reproducers)}",
            file=stream,
        )
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace, stream: TextIO) -> int:
    reproducer = load_reproducer(args.artifact)
    if args.workers > 1:
        ok = replay_in_workers(reproducer, args.workers)
        where = f"{args.workers} worker processes"
    else:
        _record, ok = replay(reproducer)
        where = "serial"
    status = "reproduced byte-identically" if ok else "MISMATCH"
    print(
        f"[{reproducer.flag.kind}] {reproducer.scenario.benchmark} "
        f"({len(reproducer.scenario)} step(s), {where}): {status}",
        file=stream,
    )
    return 0 if ok else 1


def _cmd_show(args: argparse.Namespace, stream: TextIO) -> int:
    reproducer = load_reproducer(args.artifact)
    print(json.dumps(reproducer.to_dict(), sort_keys=True, indent=2), file=stream)
    return 0


def main(argv: list[str] | None = None, stream: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Multi-fault scenario fuzzing for the hardening stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a seeded fuzz campaign")
    run_p.add_argument("--benchmark", required=True)
    run_p.add_argument("--param", action="append", default=[], metavar="KEY=VALUE")
    run_p.add_argument("--seed", type=int, default=2017)
    run_p.add_argument("--budget", type=int, default=50)
    run_p.add_argument("--max-steps", type=int, default=3)
    run_p.add_argument("--workers", type=int, default=1)
    run_p.add_argument("--out", default=None, help="reproducer artifact directory")
    run_p.add_argument("--expect", type=int, default=None,
                       help="fail unless at least N reproducers are found")
    run_p.add_argument("--failure-log", default=None,
                       help="append fuzz events to this failures.jsonl")
    run_p.add_argument("--no-guards", action="store_true")
    run_p.add_argument("--abft", action="store_true")
    run_p.add_argument("--verify-interval", type=int, default=1)
    run_p.add_argument("--checkpoint-interval", type=int, default=0)
    run_p.add_argument("--no-divergence-check", action="store_true")
    run_p.add_argument("--no-invariant-check", action="store_true")
    run_p.set_defaults(func=_cmd_run)

    replay_p = sub.add_parser("replay", help="replay a reproducer artifact")
    replay_p.add_argument("artifact")
    replay_p.add_argument("--workers", type=int, default=1)
    replay_p.set_defaults(func=_cmd_replay)

    show_p = sub.add_parser("show", help="pretty-print a reproducer artifact")
    show_p.add_argument("artifact")
    show_p.set_defaults(func=_cmd_show)

    args = parser.parse_args(argv)
    result: int = args.func(args, stream)
    return result


if __name__ == "__main__":
    raise SystemExit(main())
