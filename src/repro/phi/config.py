"""Xeon Phi 3120A (Knights Corner) device parameters.

Numbers from the paper's Section 3.1 and Intel's KNC system software
developer's guide: 57 in-order cores, 4 hardware threads each, 32
512-bit vector registers per thread, 6 GB GDDR5, 64 KB L1 and 512 KB L2
per core, 22 nm Tri-gate process, MCA with SECDED ECC on the major
memory structures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhiConfig", "KNC_3120A"]


@dataclass(frozen=True)
class PhiConfig:
    """Static description of one coprocessor board."""

    name: str = "Xeon Phi 3120A (Knights Corner)"
    cores: int = 57
    threads_per_core: int = 4
    vector_registers_per_thread: int = 32
    vector_register_bits: int = 512
    scalar_registers_per_thread: int = 16
    scalar_register_bits: int = 64
    l1_kb_per_core: int = 64
    l2_kb_per_core: int = 512
    gddr_gb: int = 6
    process_nm: int = 22
    clock_ghz: float = 1.1
    ecc_enabled: bool = True

    @property
    def hardware_threads(self) -> int:
        """Total concurrent hardware threads (57 x 4 = 228)."""
        return self.cores * self.threads_per_core

    @property
    def vector_register_bits_total(self) -> int:
        return (
            self.hardware_threads
            * self.vector_registers_per_thread
            * self.vector_register_bits
        )

    @property
    def l2_bits_total(self) -> int:
        return self.cores * self.l2_kb_per_core * 1024 * 8

    @property
    def l1_bits_total(self) -> int:
        return self.cores * self.l1_kb_per_core * 1024 * 8


#: The board irradiated in the paper.
KNC_3120A = PhiConfig()
