"""The machine: translates neutron strikes into architectural effects.

A strike lands in one :class:`~repro.phi.resources.ResourceClass` at a
random point of the execution.  The machine translates it into a
corruption of the live benchmark state scoped the way the hardware
scopes it — one vector lane's worth of contiguous elements for a
register strike, a 64-byte line for a cache/interconnect strike, a
whole thread slab for a dispatch strike, a control/pointer word for a
scalar-register strike — or into an immediate machine-check abort
(SECDED double-bit detection).  Everything downstream of the corruption
is *computed* by letting the benchmark run to completion on the
corrupted state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, BenchmarkError, Variable
from repro.phi.config import KNC_3120A, PhiConfig
from repro.phi.ecc import EccOutcome, classify_upset, sample_upset_size
from repro.phi.resources import ResourceClass
from repro.phi.scheduler import ThreadScheduler
from repro.util.bits import bit_width, flip_bit_inplace, randomize_element_inplace

__all__ = ["MachineCheckError", "SchedulerWedge", "StrikeResult", "XeonPhiMachine"]

#: Variable classes treated as stack-side state (indices, bounds,
#: pointers) for scalar-register and pipeline strikes.
_STACK_CLASSES = frozenset({"control", "constant", "pointer"})

#: Bytes per cache line / interconnect flit.
_LINE_BYTES = 64


class MachineCheckError(BenchmarkError):
    """MCA abort: SECDED detected an uncorrectable error (DUE)."""


class SchedulerWedge(BenchmarkError):
    """Dispatch logic corrupted into a non-progressing state (hang DUE)."""


@dataclass(frozen=True)
class StrikeResult:
    """What a strike did to the architectural state."""

    resource: ResourceClass
    effect: str
    detail: dict[str, Any] = field(default_factory=dict)


class XeonPhiMachine:
    """Applies resource-scoped strike effects to live benchmark state."""

    def __init__(self, config: PhiConfig = KNC_3120A):
        self.config = config
        self.scheduler = ThreadScheduler(config)

    # -- variable selection ---------------------------------------------------

    @staticmethod
    def _heap_vars(variables: list[Variable]) -> list[Variable]:
        return [v for v in variables if v.var_class not in _STACK_CLASSES and v.size > 0]

    @staticmethod
    def _stack_vars(variables: list[Variable]) -> list[Variable]:
        return [v for v in variables if v.var_class in _STACK_CLASSES and v.size > 0]

    @staticmethod
    def _pick_by_footprint(
        candidates: list[Variable], rng: np.random.Generator
    ) -> Variable:
        if not candidates:
            raise ValueError("no candidate variables")
        weights = np.array([v.nbytes for v in candidates], dtype=np.float64)
        return candidates[int(rng.choice(len(candidates), p=weights / weights.sum()))]

    # -- strike application -----------------------------------------------------

    def apply_strike(
        self,
        benchmark: Benchmark,
        state: Any,
        step: int,
        resource: ResourceClass,
        rng: np.random.Generator,
    ) -> StrikeResult:
        """Corrupt live state according to ``resource``'s semantics.

        Raises :class:`MachineCheckError` (detected uncorrectable) or
        :class:`SchedulerWedge` (hang) for immediately-fatal strikes.
        """
        resource = ResourceClass(resource)
        variables = benchmark.variables(state, step)
        heap = self._heap_vars(variables)
        stack = self._stack_vars(variables)
        if not heap:
            raise ValueError("benchmark exposes no heap variables")

        if resource is ResourceClass.VECTOR_REGISTER:
            return self._vector_register(heap, rng)
        if resource is ResourceClass.SCALAR_REGISTER:
            return self._scalar_register(stack, heap, rng)
        if resource in (ResourceClass.L1_CACHE, ResourceClass.L2_CACHE):
            return self._cache(resource, heap, rng)
        if resource is ResourceClass.FPU_LOGIC:
            return self._fpu(heap, rng)
        if resource is ResourceClass.PIPELINE_QUEUE:
            return self._pipeline(stack, heap, rng)
        if resource is ResourceClass.DISPATCH_SCHEDULER:
            return self._dispatch(heap, rng)
        if resource is ResourceClass.INTERCONNECT:
            return self._interconnect(heap, rng)
        raise ValueError(f"unknown resource {resource!r}")  # pragma: no cover

    # -- per-resource effects -----------------------------------------------------

    def _vector_register(
        self, heap: list[Variable], rng: np.random.Generator
    ) -> StrikeResult:
        """A VPU register held a tile of some array: flip lanes of it."""
        var = self._pick_by_footprint(heap, rng)
        lanes = max(1, self.config.vector_register_bits // bit_width(var.array.dtype))
        count = int(rng.integers(1, lanes + 1))
        thread = self.scheduler.random_thread(rng)
        slab = self.scheduler.slab_of_thread(var.size, thread)
        if slab.size == 0:
            return StrikeResult(ResourceClass.VECTOR_REGISTER, "idle_thread")
        start = slab.start + int(rng.integers(0, slab.size))
        hit = list(range(start, min(start + count, slab.stop)))
        for idx in hit:
            flip_bit_inplace(var.array, idx, int(rng.integers(0, bit_width(var.array.dtype))))
        return StrikeResult(
            ResourceClass.VECTOR_REGISTER,
            "lane_flips",
            {"variable": var.name, "elements": hit, "thread": thread},
        )

    def _scalar_register(
        self,
        stack: list[Variable],
        heap: list[Variable],
        rng: np.random.Generator,
    ) -> StrikeResult:
        """Scalar registers hold bounds, indices and pointers."""
        if stack:
            var = stack[int(rng.integers(0, len(stack)))]
        else:
            var = self._pick_by_footprint(heap, rng)
        idx = int(rng.integers(0, var.size))
        flip_bit_inplace(var.array, idx, int(rng.integers(0, bit_width(var.array.dtype))))
        return StrikeResult(
            ResourceClass.SCALAR_REGISTER,
            "register_flip",
            {"variable": var.name, "element": idx},
        )

    def _cache(
        self,
        resource: ResourceClass,
        heap: list[Variable],
        rng: np.random.Generator,
    ) -> StrikeResult:
        """SECDED-protected SRAM, with unprotected tag/status arrays."""
        # A minority of the cache area is tag/LRU/status logic outside
        # the SECDED footprint; an upset there yields a wrong-line
        # access (stale or aliased data for a whole line).
        if rng.random() < 0.15:
            return self._wrong_line(resource, heap, rng)
        upset = sample_upset_size(rng)
        outcome = classify_upset(upset, self.config.ecc_enabled)
        if outcome is EccOutcome.CORRECTED:
            return StrikeResult(resource, "ecc_corrected", {"bits": upset})
        if outcome is EccOutcome.DETECTED:
            raise MachineCheckError(
                f"{resource.value}: SECDED detected a {upset}-bit upset"
            )
        var = self._pick_by_footprint(heap, rng)
        idx = int(rng.integers(0, var.size))
        width = bit_width(var.array.dtype)
        for bit in rng.choice(width, size=min(upset, width), replace=False):
            flip_bit_inplace(var.array, idx, int(bit))
        return StrikeResult(
            resource,
            "ecc_escape",
            {"variable": var.name, "element": idx, "bits": upset},
        )

    def _wrong_line(
        self,
        resource: ResourceClass,
        heap: list[Variable],
        rng: np.random.Generator,
    ) -> StrikeResult:
        """Tag upset: a whole line is served from the wrong address."""
        var = self._pick_by_footprint(heap, rng)
        elems = max(1, _LINE_BYTES // var.array.dtype.itemsize)
        if var.size <= elems:
            start, src = 0, 0
            elems = var.size
        else:
            start = int(rng.integers(0, var.size - elems))
            src = int(rng.integers(0, var.size - elems))
        flat = var.array.reshape(-1)
        flat[start : start + elems] = flat[src : src + elems]
        return StrikeResult(
            resource,
            "wrong_line",
            {"variable": var.name, "start": start, "source": src, "elements": elems},
        )

    def _fpu(self, heap: list[Variable], rng: np.random.Generator) -> StrikeResult:
        """Combinational datapath upset: one latched result is garbage."""
        var = self._pick_by_footprint(heap, rng)
        idx = int(rng.integers(0, var.size))
        randomize_element_inplace(var.array, idx, rng)
        return StrikeResult(
            ResourceClass.FPU_LOGIC, "garbage_result", {"variable": var.name, "element": idx}
        )

    def _pipeline(
        self,
        stack: list[Variable],
        heap: list[Variable],
        rng: np.random.Generator,
    ) -> StrikeResult:
        """Latch/queue upset: in-flight data or in-flight control."""
        if stack and rng.random() < 0.4:
            var = stack[int(rng.integers(0, len(stack)))]
            idx = int(rng.integers(0, var.size))
            flip_bit_inplace(
                var.array, idx, int(rng.integers(0, bit_width(var.array.dtype)))
            )
            return StrikeResult(
                ResourceClass.PIPELINE_QUEUE,
                "control_flip",
                {"variable": var.name, "element": idx},
            )
        var = self._pick_by_footprint(heap, rng)
        idx = int(rng.integers(0, var.size))
        randomize_element_inplace(var.array, idx, rng)
        return StrikeResult(
            ResourceClass.PIPELINE_QUEUE,
            "data_garble",
            {"variable": var.name, "element": idx},
        )

    def _dispatch(self, heap: list[Variable], rng: np.random.Generator) -> StrikeResult:
        """Shared dispatch upset: a core's worth of work goes wrong."""
        if rng.random() < 0.3:
            raise SchedulerWedge("thread picker corrupted: core stops dispatching")
        var = self._pick_by_footprint(heap, rng)
        thread = self.scheduler.random_thread(rng)
        lo, hi = self.scheduler.core_slab(var.size, thread)
        if hi <= lo:
            return StrikeResult(ResourceClass.DISPATCH_SCHEDULER, "idle_core")
        flat = var.array.reshape(-1)
        # The core re-executes with a skewed tile base: its slab is
        # overwritten by a misaligned copy of itself (work done on the
        # wrong tile), producing the multi-row square signature.
        span = hi - lo
        shift = int(rng.integers(1, max(2, span)))
        flat[lo:hi] = np.roll(flat[lo:hi], shift)
        return StrikeResult(
            ResourceClass.DISPATCH_SCHEDULER,
            "tile_skew",
            {"variable": var.name, "lo": lo, "hi": hi, "shift": shift, "thread": thread},
        )

    def _interconnect(
        self, heap: list[Variable], rng: np.random.Generator
    ) -> StrikeResult:
        """Ring flit upset: a line in flight is corrupted or dropped."""
        if rng.random() < 0.2:
            raise MachineCheckError("interconnect: protocol error detected")
        return self._wrong_line(ResourceClass.INTERCONNECT, heap, rng)
