"""Strike-able resource classes of the Knights Corner die.

The paper's discussion (Sections 2.1 and 6.1) divides the die into
ECC-protected storage (caches, memory) and unprotected resources
(flip-flops in pipeline queues, logic gates, instruction dispatch,
interconnect).  Each :class:`ResourceClass` entry records whether MCA's
SECDED covers it and what kind of architectural effect an upset there
has; the per-class cross sections live in the beam package
(:mod:`repro.beam.sensitivity`) because they are calibration, not
architecture.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["RESOURCE_INVENTORY", "ResourceClass", "ResourceSpec"]


class ResourceClass(str, enum.Enum):
    """Physical resource a neutron strike can upset."""

    VECTOR_REGISTER = "vector_register"
    SCALAR_REGISTER = "scalar_register"
    L1_CACHE = "l1_cache"
    L2_CACHE = "l2_cache"
    FPU_LOGIC = "fpu_logic"
    PIPELINE_QUEUE = "pipeline_queue"
    DISPATCH_SCHEDULER = "dispatch_scheduler"
    INTERCONNECT = "interconnect"

    @classmethod
    def all(cls) -> tuple["ResourceClass", ...]:
        return tuple(cls)


@dataclass(frozen=True)
class ResourceSpec:
    """Architectural properties of one resource class."""

    resource: ResourceClass
    ecc_protected: bool
    """Covered by MCA SECDED (caches); unprotected resources propagate."""

    description: str


RESOURCE_INVENTORY: dict[ResourceClass, ResourceSpec] = {
    spec.resource: spec
    for spec in (
        ResourceSpec(
            ResourceClass.VECTOR_REGISTER,
            ecc_protected=False,
            description="512-bit VPU registers streaming operand tiles",
        ),
        ResourceSpec(
            ResourceClass.SCALAR_REGISTER,
            ecc_protected=False,
            description="x86 scalar registers holding indices, bounds, pointers",
        ),
        ResourceSpec(
            ResourceClass.L1_CACHE,
            ecc_protected=True,
            description="per-core 64 KB L1 data/instruction SRAM (SECDED)",
        ),
        ResourceSpec(
            ResourceClass.L2_CACHE,
            ecc_protected=True,
            description="per-core 512 KB unified L2 SRAM (SECDED)",
        ),
        ResourceSpec(
            ResourceClass.FPU_LOGIC,
            ecc_protected=False,
            description="combinational FPU/VPU datapath logic",
        ),
        ResourceSpec(
            ResourceClass.PIPELINE_QUEUE,
            ecc_protected=False,
            description="pipeline latches and internal queues",
        ),
        ResourceSpec(
            ResourceClass.DISPATCH_SCHEDULER,
            ecc_protected=False,
            description="instruction dispatch / thread picker shared per core",
        ),
        ResourceSpec(
            ResourceClass.INTERCONNECT,
            ecc_protected=False,
            description="ring interconnect moving cache lines between cores",
        ),
    )
}
