"""Static work scheduler: benchmark tiles onto hardware threads.

The Xeon Phi runs 228 hardware threads; OpenMP's static schedule gives
each thread a contiguous slab of the output space.  When a strike hits
a thread-private resource (its registers) the corruption is confined to
the slab that thread was streaming; when it hits a core-shared resource
(dispatch, L1) it spans the slabs of the core's four threads.  This
module computes those slabs for any array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phi.config import KNC_3120A, PhiConfig

__all__ = ["Slab", "ThreadScheduler"]


@dataclass(frozen=True)
class Slab:
    """A contiguous flat-index range of an array owned by one thread."""

    thread: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


class ThreadScheduler:
    """OpenMP-static assignment of array elements to hardware threads."""

    def __init__(self, config: PhiConfig = KNC_3120A):
        self.config = config

    def slab_of_thread(self, total: int, thread: int) -> Slab:
        """The flat range thread ``thread`` owns in an array of ``total``."""
        nthreads = self.config.hardware_threads
        if not 0 <= thread < nthreads:
            raise ValueError(f"thread {thread} out of range")
        if total <= 0:
            raise ValueError("total must be positive")
        base = total // nthreads
        extra = total % nthreads
        start = thread * base + min(thread, extra)
        stop = start + base + (1 if thread < extra else 0)
        return Slab(thread=thread, start=start, stop=stop)

    def thread_of_element(self, total: int, flat_index: int) -> int:
        """Which thread owns flat element ``flat_index``."""
        if not 0 <= flat_index < total:
            raise IndexError(f"element {flat_index} out of range")
        nthreads = self.config.hardware_threads
        base = total // nthreads
        extra = total % nthreads
        # First `extra` threads own (base + 1) elements each.
        boundary = extra * (base + 1)
        if base == 0:
            return min(flat_index, nthreads - 1)
        if flat_index < boundary:
            return flat_index // (base + 1)
        return extra + (flat_index - boundary) // base

    def core_slab(self, total: int, thread: int) -> tuple[int, int]:
        """Flat range covered by all four threads of ``thread``'s core."""
        tpc = self.config.threads_per_core
        core = thread // tpc
        first = self.slab_of_thread(total, core * tpc)
        last = self.slab_of_thread(total, core * tpc + tpc - 1)
        return first.start, last.stop

    def random_thread(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.config.hardware_threads))
