"""Machine model of the Intel Xeon Phi 3120A (Knights Corner).

The beam experiments of the paper irradiate the *device*, not the
program: a neutron strike lands in a physical resource (a vector
register, a cache line, the dispatch logic...) and its effect on the
program depends on what that resource held.  This package models the
3120A's resource inventory (:mod:`repro.phi.resources`), its MCA/ECC
protection (:mod:`repro.phi.ecc`), the static work scheduler that maps
benchmark tiles onto the 228 hardware threads
(:mod:`repro.phi.scheduler`), and the machine itself
(:mod:`repro.phi.machine`), which executes a stepped benchmark while
translating strikes into state corruption whose propagation is then
*computed* by really running the benchmark to completion.
"""

from repro.phi.config import PhiConfig
from repro.phi.ecc import EccOutcome, classify_upset
from repro.phi.machine import StrikeResult, XeonPhiMachine
from repro.phi.resources import RESOURCE_INVENTORY, ResourceClass
from repro.phi.scheduler import ThreadScheduler

__all__ = [
    "EccOutcome",
    "PhiConfig",
    "RESOURCE_INVENTORY",
    "ResourceClass",
    "StrikeResult",
    "ThreadScheduler",
    "XeonPhiMachine",
    "classify_upset",
]
