"""SECDED ECC model (MCA reliability solution of the 3120A).

Single Error Correction, Double Error Detection over 64-bit words: a
single-bit upset is corrected transparently, a double-bit upset in the
same word raises a machine-check abort (the paper notes "SECDED ECC
normally triggers application crash when a double bit error is
detected"), and a rare multi-bit upset that evades the code's detection
guarantees escapes as silent data corruption.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["EccOutcome", "classify_upset", "sample_upset_size"]


class EccOutcome(str, enum.Enum):
    """What SECDED does with an upset."""

    CORRECTED = "corrected"
    DETECTED = "detected"  # machine-check abort (DUE)
    ESCAPED = "escaped"  # silent corruption reaches the program


#: Multi-cell upset size distribution for a 22 nm SRAM under neutrons
#: (single-bit events dominate; adjacent double-cell events are a few
#: percent; larger clusters are rare).  Interleaving maps most
#: multi-cell events to distinct ECC words, so the *same-word*
#: multiplicities below are already post-interleaving.
UPSET_SIZE_PROBS: tuple[tuple[int, float], ...] = (
    (1, 0.92),
    (2, 0.06),
    (3, 0.015),
    (4, 0.005),
)


def sample_upset_size(rng: np.random.Generator) -> int:
    """Draw the number of upset bits landing in one ECC word."""
    sizes = np.array([s for s, _ in UPSET_SIZE_PROBS])
    probs = np.array([p for _, p in UPSET_SIZE_PROBS])
    return int(rng.choice(sizes, p=probs / probs.sum()))


def classify_upset(bits_in_word: int, ecc_enabled: bool = True) -> EccOutcome:
    """SECDED's response to ``bits_in_word`` flipped bits in one word."""
    if bits_in_word < 1:
        raise ValueError("an upset flips at least one bit")
    if not ecc_enabled:
        return EccOutcome.ESCAPED
    if bits_in_word == 1:
        return EccOutcome.CORRECTED
    if bits_in_word == 2:
        return EccOutcome.DETECTED
    # Three or more flipped bits alias SECDED's syndrome space: the code
    # may miscorrect (silent) or detect, roughly evenly; we model the
    # pessimistic silent escape, which is what produces the paper's
    # "errors in these parts will propagate to memory" observation.
    return EccOutcome.ESCAPED
