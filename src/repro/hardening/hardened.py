"""Hardened execution: the paper's future work, executed.

"In the future, we plan to implement the mitigation techniques based on
the radiation and fault injection analysis.  Then, we will validate
them with fault injection campaigns."  This module does exactly that:
it re-runs CAROL-FI campaigns against benchmarks protected by the
Section 6.1 recommendations —

* variable guards (:mod:`repro.hardening.guards`) checked between
  scheduling quanta and re-synced after every clean step, so a fault
  injected into protected state is *detected* before the program
  consumes it;
* for DGEMM, Huang-Abraham ABFT on the output: checksums derived from
  the operands at load time verify (and where the pattern allows,
  *correct*) the product before it is accepted.

Outcomes gain two new categories relative to Figure 4: ``detected``
(a guard or the ABFT verification flagged the corruption — the system
can abort/retry instead of silently corrupting) and ``corrected``
(ABFT repaired the output in place).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.spatial import wrong_mask
from repro.benchmarks.base import Benchmark, BenchmarkHang
from repro.benchmarks.registry import create
from repro.carolfi.flipscript import FlipScript, SitePolicy
from repro.carolfi.supervisor import _CRASH_EXCEPTIONS
from repro.faults.models import FaultModel
from repro.faults.site import FaultSite
from repro.hardening.abft import AbftOutcome, abft_check, abft_checksums
from repro.hardening.guards import (
    DetectorEvent,
    FaultDetected,
    attach_observer,
    build_guards,
)
from repro.util.rng import derive_rng

__all__ = [
    "HardenedCampaignResult",
    "HardenedOutcome",
    "HardenedRecord",
    "HardenedSupervisor",
    "run_hardened_campaign",
]

HardenedOutcome = str  # "masked" | "sdc" | "due" | "detected" | "corrected"

HARDENED_OUTCOMES: tuple[str, ...] = ("masked", "sdc", "due", "detected", "corrected")


@dataclass(frozen=True)
class HardenedRecord:
    """One injection against the hardened benchmark."""

    benchmark: str
    run_index: int
    site: FaultSite
    fault_model: str
    interrupt_step: int
    outcome: HardenedOutcome
    detected_by: str = ""
    detail: str = ""


@dataclass
class HardenedCampaignResult:
    """Campaign outcomes plus the measured protection overhead."""

    benchmark: str
    records: list[HardenedRecord]
    time_overhead_factor: float
    guard_bytes: int

    def shares(self) -> dict[str, float]:
        if not self.records:
            raise ValueError("empty campaign")
        total = len(self.records)
        return {
            outcome: sum(1 for r in self.records if r.outcome == outcome) / total
            for outcome in HARDENED_OUTCOMES
        }

    def residual_harmful(self) -> float:
        """SDC+DUE fraction that survives the hardening."""
        shares = self.shares()
        return shares["sdc"] + shares["due"]


class HardenedSupervisor:
    """Runs injections against a benchmark wrapped in its guards."""

    def __init__(
        self,
        benchmark: Benchmark,
        seed: int,
        policy: SitePolicy = SitePolicy.WEIGHTED,
        watchdog_factor: float = 10.0,
        abft: bool | None = None,
        detector_observer: Any | None = None,
    ):
        self.benchmark = benchmark
        self.seed = int(seed)
        self.flip = FlipScript(policy)
        self.watchdog_factor = float(watchdog_factor)
        #: ABFT output verification applies to the matrix-product code.
        self.abft = benchmark.name == "dgemm" if abft is None else bool(abft)
        #: Optional ``Callable[[DetectorEvent], None]`` wired into every
        #: guard of every run (the fuzz oracle's detector-state tap).
        self.detector_observer = detector_observer

        plain_start = time.perf_counter()
        state = self._fresh_state()
        self.total_steps = benchmark.num_steps(state)
        self.golden = self._quantize(benchmark.run(state))
        self.plain_runtime = max(time.perf_counter() - plain_start, 1e-4)
        # Re-measure once warm and keep the faster run: the first
        # execution pays allocator/cache warm-up, which otherwise
        # understates the hardening overhead on noisy hosts.
        rerun_start = time.perf_counter()
        state = self._fresh_state()
        benchmark.num_steps(state)
        benchmark.run(state)
        rerun_runtime = max(time.perf_counter() - rerun_start, 1e-4)
        self.plain_runtime = min(self.plain_runtime, rerun_runtime)
        self.golden_runtime = self.plain_runtime

        # Measure the hardened fault-free run: overhead = guards +
        # (for DGEMM) the ABFT verification.
        hardened_start = time.perf_counter()
        record = self._execute(run_index=-1, model=None, interrupt_step=None)
        self.hardened_runtime = max(time.perf_counter() - hardened_start, 1e-4)
        if record.outcome != "masked":  # pragma: no cover - sanity
            raise RuntimeError(f"hardened fault-free run misbehaved: {record}")
        self.guard_bytes = self._measure_guard_bytes()

    # -- plumbing ---------------------------------------------------------------

    def _fresh_state(self) -> Any:
        return self.benchmark.make_state(
            derive_rng(self.seed, "carolfi", self.benchmark.name, "input")
        )

    def _quantize(self, output: np.ndarray) -> np.ndarray:
        decimals = self.benchmark.output_decimals
        if decimals is None:
            return output
        with np.errstate(invalid="ignore", over="ignore"):
            return np.round(output, decimals)

    def _measure_guard_bytes(self) -> int:
        state = self._fresh_state()
        guards = build_guards(self.benchmark.name)
        arrays = {v.name: v.array for v in self.benchmark.variables(state, 0)}
        total = 0
        for name, guard in guards.items():
            if name in arrays:
                guard.resync(arrays[name])
                total += guard.overhead_bytes
        return total

    def _abft_checksums(self, state: Any) -> tuple[np.ndarray, np.ndarray] | None:
        if not self.abft:
            return None
        return abft_checksums(state.a_src, state.b_src)

    # -- the hardened run -----------------------------------------------------------

    def _execute(
        self,
        run_index: int,
        model: FaultModel | None,
        interrupt_step: int | None,
    ) -> HardenedRecord:
        bench = self.benchmark
        rng = derive_rng(self.seed, "hardened", bench.name, "run", str(run_index))
        if model is not None and interrupt_step is None:
            interrupt_step = int(rng.integers(0, self.total_steps))

        state = self._fresh_state()
        checksums = self._abft_checksums(state)
        guards = build_guards(bench.name)
        if self.detector_observer is not None:
            attach_observer(guards, self.detector_observer)
        site = FaultSite("none", "none", 0, "none")
        outcome: HardenedOutcome = "masked"
        detected_by = ""
        detail = ""
        deadline = time.perf_counter() + self.watchdog_factor * self.plain_runtime + 1.0

        try:
            # Attach the guards to the pristine state so corruption at
            # the very first quantum is already covered.
            initial = {v.name: v.array for v in bench.variables(state, 0)}
            for name, guard in guards.items():
                if name in initial:
                    guard.resync(initial[name])
            for index in range(self.total_steps):
                if model is not None and index == interrupt_step:
                    fault_site, _bits = self.flip.inject(bench, state, index, model, rng)
                    site = fault_site
                arrays = {v.name: v.array for v in bench.variables(state, index)}
                # Scheduled scrub point: verify every guarded store
                # before this quantum consumes it.
                for name, guard in guards.items():
                    if name in arrays:
                        guard.verify(arrays[name])
                bench.step(state, index)
                if time.perf_counter() > deadline:
                    raise BenchmarkHang("hardened watchdog expired")
                arrays = {v.name: v.array for v in bench.variables(state, index + 1)}
                for name, guard in guards.items():
                    if name in arrays:
                        guard.resync(arrays[name])
                    else:
                        # The artifact was consumed/freed this quantum:
                        # a later allocation under the same name is a
                        # different store and must re-attach fresh.
                        guard.detach()
            observed = bench.output(state)
            if checksums is not None:
                verdict = abft_check(observed, checksums[0], checksums[1])
                if (
                    self.detector_observer is not None
                    and verdict.outcome is not AbftOutcome.CLEAN
                ):
                    self.detector_observer(
                        DetectorEvent("output", "abft", verdict.outcome.value)
                    )
                if verdict.outcome is AbftOutcome.CORRECTED:
                    observed = verdict.matrix
                    if wrong_mask(self.golden, self._quantize(observed)).any():
                        outcome = "sdc"  # correction missed residual damage
                        detail = "abft corrected but output still differs"
                    else:
                        outcome = "corrected"
                        detected_by = "abft"
                        detail = f"{verdict.corrections} element(s) repaired"
                    return HardenedRecord(
                        bench.name,
                        run_index,
                        site,
                        model.value if model else "none",
                        interrupt_step if interrupt_step is not None else -1,
                        outcome,
                        detected_by,
                        detail,
                    )
                if verdict.outcome is AbftOutcome.DETECTED:
                    return HardenedRecord(
                        bench.name,
                        run_index,
                        site,
                        model.value if model else "none",
                        interrupt_step if interrupt_step is not None else -1,
                        "detected",
                        "abft",
                        "output checksums mismatch (uncorrectable pattern)",
                    )
            observed = self._quantize(observed)
            if wrong_mask(self.golden, observed).any():
                outcome = "sdc"
        except FaultDetected as exc:
            outcome = "detected"
            detected_by = f"{exc.kind.value}:{exc.variable}"
            detail = str(exc)
        except BenchmarkHang as exc:
            outcome = "due"
            detail = f"timeout: {exc}"
        except _CRASH_EXCEPTIONS as exc:
            outcome = "due"
            detail = f"crash: {type(exc).__name__}: {exc}"

        return HardenedRecord(
            bench.name,
            run_index,
            site,
            model.value if model else "none",
            interrupt_step if interrupt_step is not None else -1,
            outcome,
            detected_by,
            detail,
        )

    def run_one(
        self,
        run_index: int,
        model: FaultModel,
        interrupt_step: int | None = None,
    ) -> HardenedRecord:
        """One injection against the hardened benchmark."""
        return self._execute(run_index, FaultModel(model), interrupt_step)

    @property
    def time_overhead_factor(self) -> float:
        """Hardened / plain fault-free runtime."""
        return self.hardened_runtime / self.plain_runtime


def run_hardened_campaign(
    benchmark: str,
    injections: int,
    seed: int = 2017,
    fault_models: tuple[FaultModel, ...] = FaultModel.all(),
    benchmark_params: dict[str, Any] | None = None,
) -> HardenedCampaignResult:
    """A full injection campaign against the hardened benchmark."""
    if injections < 1:
        raise ValueError("injections must be positive")
    if not fault_models:
        raise ValueError("at least one fault model is required")
    supervisor = HardenedSupervisor(
        create(benchmark, **(benchmark_params or {})), seed=seed
    )
    records = [
        supervisor.run_one(index, fault_models[index % len(fault_models)])
        for index in range(injections)
    ]
    return HardenedCampaignResult(
        benchmark=benchmark,
        records=records,
        time_overhead_factor=supervisor.time_overhead_factor,
        guard_bytes=supervisor.guard_bytes,
    )
