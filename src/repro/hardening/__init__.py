"""Mitigation techniques and selective-hardening evaluation.

Implements the techniques the paper's Section 6.1 discussion (and its
"future work" plan) names, plus the machinery to evaluate them against
recorded campaigns:

* :mod:`repro.hardening.abft` — Huang-Abraham checksum matmul
  (corrects single/line/random output patterns);
* :mod:`repro.hardening.residue` — mod-3 / mod-15 residue codes
  (catch Random/Zero and logic faults ECC cannot);
* :mod:`repro.hardening.dwc` — selective duplication with comparison;
* :mod:`repro.hardening.parity` — per-word parity (NW's single-fault
  profile);
* :mod:`repro.hardening.rmt` — redundant execution;
* :mod:`repro.hardening.selective` — per-benchmark plans and the
  criticality-driven recommender;
* :mod:`repro.hardening.evaluate` — analytical coverage replay over
  injection and beam campaigns.
"""

from repro.hardening.checkpoint import CheckpointRun, run_with_checkpoints
from repro.hardening.guards import FaultDetected, GuardKind, VariableGuard, build_guards
from repro.hardening.hardened import (
    HardenedCampaignResult,
    HardenedRecord,
    HardenedSupervisor,
    run_hardened_campaign,
)
from repro.hardening.abft import (
    AbftOutcome,
    AbftResult,
    abft_check,
    abft_checksums,
    abft_matmul,
)
from repro.hardening.dwc import DuplicatedVariable, DwcMismatch
from repro.hardening.evaluate import (
    ABFT_CORRECTABLE_PATTERNS,
    CoverageReport,
    abft_beam_coverage,
    evaluate_plan,
)
from repro.hardening.parity import ParityMismatch, ParityProtected, word_parity
from repro.hardening.residue import ResidueChecker, ResidueMismatch
from repro.hardening.rmt import RedundantRunResult, redundant_run
from repro.hardening.selective import (
    RECOMMENDED_PLANS,
    HardeningPlan,
    Technique,
    detection_probability,
    recommend_plan,
)

__all__ = [
    "ABFT_CORRECTABLE_PATTERNS",
    "CheckpointRun",
    "FaultDetected",
    "GuardKind",
    "HardenedCampaignResult",
    "HardenedRecord",
    "HardenedSupervisor",
    "VariableGuard",
    "build_guards",
    "run_hardened_campaign",
    "run_with_checkpoints",
    "AbftOutcome",
    "AbftResult",
    "CoverageReport",
    "DuplicatedVariable",
    "DwcMismatch",
    "HardeningPlan",
    "ParityMismatch",
    "ParityProtected",
    "RECOMMENDED_PLANS",
    "RedundantRunResult",
    "ResidueChecker",
    "ResidueMismatch",
    "Technique",
    "abft_beam_coverage",
    "abft_check",
    "abft_checksums",
    "abft_matmul",
    "detection_probability",
    "evaluate_plan",
    "recommend_plan",
    "redundant_run",
    "word_parity",
]
