"""Checkpoint/restart for DUE recovery.

The paper's system-level mitigation for DUEs is checkpointing: "by
reducing the DUE rate caused by fault in Sort and Tree, HPC systems can
allow lowering the frequency of checkpointing techniques."  This module
provides the substrate to quantify that trade-off: run a (possibly
fault-injected) benchmark under periodic state snapshots; on a crash or
hang, roll back to the most recent snapshot and re-execute.  A snapshot
taken *after* the corruption may itself be poisoned — a retry that
fails again falls back to the previous snapshot, ultimately to a clean
restart — so recovery cost depends on both checkpoint interval and
fault timing, exactly the trade the paper gestures at.
"""

from __future__ import annotations

import copy
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, BenchmarkError

__all__ = ["CheckpointRun", "run_with_checkpoints"]

_CRASH_EXCEPTIONS = (BenchmarkError, IndexError, ValueError, KeyError, OverflowError)


@dataclass(frozen=True)
class CheckpointRun:
    """Outcome of one checkpointed (and possibly injected) execution."""

    completed: bool
    output: np.ndarray | None
    failures: int
    """How many times execution crashed before completing."""

    executed_steps: int
    """Total scheduling quanta executed, including re-execution."""

    useful_steps: int
    """Quanta a failure-free run needs."""

    checkpoints_taken: int
    checkpoint_bytes: int

    @property
    def recovered(self) -> bool:
        return self.completed and self.failures > 0

    @property
    def wasted_fraction(self) -> float:
        """Re-executed work as a fraction of the useful work."""
        if self.useful_steps == 0:
            return 0.0
        return (self.executed_steps - self.useful_steps) / self.useful_steps


def _snapshot_size(state: Any) -> int:
    total = 0
    for value in vars(state).values():
        if isinstance(value, np.ndarray):
            total += int(value.nbytes)
    return total


def run_with_checkpoints(
    benchmark: Benchmark,
    state: Any,
    interval: int,
    inject: Callable[[Any], None] | None = None,
    inject_step: int = 0,
    max_failures: int = 8,
    recovery_inject: Callable[[Any], None] | None = None,
    recovery_inject_attempt: int = 1,
) -> CheckpointRun:
    """Execute with periodic snapshots and crash rollback.

    ``inject(state)`` is called once, before ``inject_step``, on the
    *first* attempt only (a transient fault does not recur on
    re-execution — the defining property checkpointing exploits).

    ``recovery_inject(state)`` models a second transient strike landing
    *during* restore: it is applied to the freshly-restored state of the
    ``recovery_inject_attempt``-th rollback (1-based), once.  A crash on
    a struck attempt is charged to the strike, not the snapshot — the
    snapshot is *not* discarded, so a clean image survives a
    double-strike instead of being thrown away as "poisoned".
    """
    if interval < 1:
        raise ValueError("checkpoint interval must be positive")
    if max_failures < 0:
        raise ValueError("max_failures must be non-negative")
    if inject_step < 0:
        raise ValueError("inject_step must be non-negative")
    if recovery_inject_attempt < 1:
        raise ValueError("recovery_inject_attempt must be >= 1")

    total = benchmark.num_steps(state)
    snapshots: list[tuple[int, Any]] = [(0, copy.deepcopy(state))]
    checkpoints_taken = 1
    checkpoint_bytes = _snapshot_size(state)
    injected = False
    failures = 0
    executed = 0
    index = 0
    restore_attempts = 0
    struck_restore = False

    while index < total:
        try:
            if inject is not None and not injected and index == inject_step:
                inject(state)
                injected = True
            benchmark.step(state, index)
            executed += 1
            index += 1
            # No new snapshots while recovering: a post-rollback state
            # may still carry the corruption, and re-snapshotting it
            # would let a poisoned image re-enter the stack.
            if failures == 0 and index < total and index % interval == 0:
                snapshots.append((index, copy.deepcopy(state)))
                checkpoints_taken += 1
        except _CRASH_EXCEPTIONS:
            failures += 1
            if failures > max_failures:
                return CheckpointRun(
                    completed=False,
                    output=None,
                    failures=failures,
                    executed_steps=executed,
                    useful_steps=total,
                    checkpoints_taken=checkpoints_taken,
                    checkpoint_bytes=checkpoint_bytes,
                )
            # First failure: the live state is corrupt but the newest
            # snapshot may be clean — retry from it.  A repeated
            # failure means that snapshot is poisoned too: discard it
            # and fall back one level.  Snapshot 0 holds the pristine
            # inputs, and the transient fault is not re-injected, so
            # the cascade always terminates.  Exception: if the failed
            # attempt was itself struck during restore, the crash says
            # nothing about the snapshot — keep it.
            if failures > 1 and not struck_restore and len(snapshots) > 1:
                snapshots.pop()
            index, base = snapshots[-1]
            state = copy.deepcopy(base)
            restore_attempts += 1
            struck_restore = False
            if recovery_inject is not None and restore_attempts == recovery_inject_attempt:
                recovery_inject(state)
                struck_restore = True

    return CheckpointRun(
        completed=True,
        output=benchmark.output(state),
        failures=failures,
        executed_steps=executed,
        useful_steps=total,
        checkpoints_taken=checkpoints_taken,
        checkpoint_bytes=checkpoint_bytes,
    )
