"""Coverage evaluation: replay a campaign under a hardening plan.

For every harmful record of an injection campaign, work out whether
the plan's technique for the struck portion would have detected (or,
for ABFT, corrected) the fault.  The replay is analytical — detection
probabilities per technique and fault model are exact properties of
the codes (see :mod:`repro.hardening.selective`) — so coverage numbers
are deterministic expectations, not another stochastic layer.

Also provides the beam-side ABFT analysis of Section 4.3: the fraction
of observed DGEMM SDCs whose spatial pattern (single / line / random)
ABFT corrects in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.criticality import portion_of_record
from repro.analysis.spatial import ErrorPattern
from repro.beam.experiment import BeamCampaignResult
from repro.faults.outcome import InjectionRecord, Outcome
from repro.hardening.selective import HardeningPlan, Technique, detection_probability

__all__ = [
    "ABFT_CORRECTABLE_PATTERNS",
    "CoverageReport",
    "abft_beam_coverage",
    "evaluate_plan",
]

#: Spatial patterns ABFT corrects in O(1) (Section 4.3; Huang-Abraham
#: checksums localise errors unless they form an ambiguous square).
ABFT_CORRECTABLE_PATTERNS = frozenset(
    {ErrorPattern.SINGLE.value, ErrorPattern.LINE.value, ErrorPattern.RANDOM.value}
)


@dataclass(frozen=True)
class CoverageReport:
    """Expected effect of a hardening plan on a campaign's outcomes."""

    benchmark: str
    plan: HardeningPlan
    harmful_faults: int
    covered_faults: int
    expected_detections: float
    expected_corrections: float

    @property
    def coverage_fraction(self) -> float:
        """Share of harmful faults landing in protected portions."""
        if self.harmful_faults == 0:
            return 0.0
        return self.covered_faults / self.harmful_faults

    @property
    def expected_detection_fraction(self) -> float:
        """Share of harmful faults the plan converts to detections."""
        if self.harmful_faults == 0:
            return 0.0
        return self.expected_detections / self.harmful_faults


def evaluate_plan(
    records: list[InjectionRecord], plan: HardeningPlan
) -> CoverageReport:
    """Expected detection/correction coverage of ``plan`` on a campaign."""
    harmful = [r for r in records if r.outcome is not Outcome.MASKED]
    covered = 0
    detections = 0.0
    corrections = 0.0
    for record in harmful:
        technique = plan.technique_for(portion_of_record(record))
        if technique is None:
            continue
        covered += 1
        p_detect = detection_probability(technique, record.fault_model)
        detections += p_detect
        if technique is Technique.ABFT and record.outcome is Outcome.SDC:
            pattern = record.sdc_metrics.get("pattern")
            if pattern in ABFT_CORRECTABLE_PATTERNS:
                corrections += p_detect
    return CoverageReport(
        benchmark=plan.benchmark,
        plan=plan,
        harmful_faults=len(harmful),
        covered_faults=covered,
        expected_detections=detections,
        expected_corrections=corrections,
    )


@dataclass(frozen=True)
class AbftBeamCoverage:
    """ABFT correctability census of a beam campaign's SDCs."""

    benchmark: str
    sdc_count: int
    correctable: int
    detectable: int

    @property
    def correctable_fraction(self) -> float:
        return self.correctable / self.sdc_count if self.sdc_count else 0.0


def abft_beam_coverage(result: BeamCampaignResult) -> AbftBeamCoverage:
    """How many observed beam SDCs ABFT would correct (Section 4.3)."""
    sdcs = result.sdc_records()
    correctable = sum(
        1 for r in sdcs if r.sdc_metrics.get("pattern") in ABFT_CORRECTABLE_PATTERNS
    )
    return AbftBeamCoverage(
        benchmark=result.benchmark,
        sdc_count=len(sdcs),
        correctable=correctable,
        detectable=len(sdcs),
    )
