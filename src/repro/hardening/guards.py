"""Runtime variable guards for hardened execution.

The evaluation in :mod:`repro.hardening.evaluate` is analytical; this
module provides the *executable* counterparts used by the hardened
campaigns (:mod:`repro.hardening.hardened`): small check objects
attached to live benchmark variables, verified between scheduling
quanta and re-synced after every legitimate step.

Three guard kinds cover the paper's software techniques:

* ``DWC`` — a bitwise shadow copy (duplication with comparison):
  detects every corruption of the protected store;
* ``PARITY`` — one parity bit per word: detects odd-multiplicity
  corruption, misses even (the Double model);
* ``CHECKSUM`` — float row/column sums, the software analogue of the
  residue check for floating-point data (a residue code proper needs
  integer arithmetic): detects any value change outside float
  cancellation corner cases.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.hardening.parity import word_parity

__all__ = [
    "DetectorEvent",
    "FaultDetected",
    "GuardKind",
    "VariableGuard",
    "attach_observer",
    "build_guards",
]


class FaultDetected(RuntimeError):
    """A guard found its protected variable corrupted."""

    def __init__(self, variable: str, kind: "GuardKind"):
        super().__init__(f"{kind.value} guard tripped on {variable!r}")
        self.variable = variable
        self.kind = kind


class GuardKind(str, enum.Enum):
    """Which detector protects a variable."""

    DWC = "dwc"
    PARITY = "parity"
    CHECKSUM = "checksum"


@dataclass(frozen=True)
class DetectorEvent:
    """One detector-state transition, reported to an observer.

    The fuzzer's interestingness oracle consumes these: an SDC outcome
    with *zero* trip events is a hardening escape.  ``action`` is
    ``"trip"`` when a guard found its store corrupted (a
    :class:`FaultDetected` follows immediately).
    """

    variable: str
    kind: str
    action: str

    def to_dict(self) -> dict[str, str]:
        return {"variable": self.variable, "kind": self.kind, "action": self.action}


@dataclass
class VariableGuard:
    """One protected variable's runtime check state."""

    name: str
    kind: GuardKind
    observer: Callable[[DetectorEvent], None] | None = None
    """Optional hook fired on every detector trip, just before the
    :class:`FaultDetected` raise.  Pure observation: attaching one never
    changes control flow or the guarded execution's records."""

    _shadow: np.ndarray | None = None
    _parity: np.ndarray | None = None
    _checksum: float | None = None

    def detach(self) -> None:
        """Forget the protected store (it was freed / re-allocated)."""
        self._shadow = None
        self._parity = None
        self._checksum = None

    def resync(self, array: np.ndarray) -> None:
        """Capture the store's current (trusted) state after a step."""
        if self.kind is GuardKind.DWC:
            self._shadow = np.array(array, copy=True)
        elif self.kind is GuardKind.PARITY:
            self._parity = word_parity(array)
        else:
            with np.errstate(invalid="ignore", over="ignore"):
                self._checksum = float(np.asarray(array, dtype=np.float64).sum())

    def clean(self, array: np.ndarray) -> bool:
        """Whether the store still matches the captured state."""
        if self.kind is GuardKind.DWC:
            if self._shadow is None:
                return True
            return bool(
                np.array_equal(
                    array.reshape(-1).view(np.uint8),
                    self._shadow.reshape(-1).view(np.uint8),
                )
            )
        if self.kind is GuardKind.PARITY:
            if self._parity is None:
                return True
            return bool(np.array_equal(word_parity(array), self._parity))
        if self._checksum is None:
            return True
        with np.errstate(invalid="ignore", over="ignore"):
            now = float(np.asarray(array, dtype=np.float64).sum())
        if np.isnan(now) or np.isnan(self._checksum):
            return np.isnan(now) and np.isnan(self._checksum)
        return now == self._checksum

    def verify(self, array: np.ndarray) -> None:
        if not self.clean(array):
            if self.observer is not None:
                self.observer(DetectorEvent(self.name, self.kind.value, "trip"))
            raise FaultDetected(self.name, self.kind)

    @property
    def overhead_bytes(self) -> int:
        """Extra state this guard keeps resident."""
        if self.kind is GuardKind.DWC and self._shadow is not None:
            return int(self._shadow.nbytes)
        if self.kind is GuardKind.PARITY and self._parity is not None:
            return int(self._parity.nbytes) // 8 or 1
        return 8


#: Per-benchmark guard assignment, following the paper's Section 6.1
#: recommendations at variable granularity.
GUARD_SPECS: dict[str, dict[str, GuardKind]] = {
    "dgemm": {
        "thread_ctl": GuardKind.DWC,
        "dims": GuardKind.DWC,
        "operand_ptrs": GuardKind.DWC,
        "a": GuardKind.CHECKSUM,
        "b": GuardKind.CHECKSUM,
    },
    "lud": {
        "block_ctl": GuardKind.DWC,
        "matrix_ptr": GuardKind.DWC,
        "matrix": GuardKind.CHECKSUM,
    },
    "hotspot": {
        "consts": GuardKind.DWC,
        "grid_ctl": GuardKind.DWC,
        "grid_ptrs": GuardKind.DWC,
    },
    "nw": {
        "score": GuardKind.PARITY,
        "blosum": GuardKind.PARITY,
        "dp_ctl": GuardKind.DWC,
        "dp_ptrs": GuardKind.DWC,
    },
    "lavamd": {
        "box_nei": GuardKind.DWC,
        "box_ctl": GuardKind.DWC,
        "particle_ptrs": GuardKind.DWC,
        "alpha": GuardKind.DWC,
    },
    "clamr": {
        # The paper's CLAMR recommendation: protect the Sort and Tree
        # operations.  Guarding their pipeline artifacts between
        # production and consumption is the detection-equivalent of
        # recomputing those functions redundantly.
        "ncells": GuardKind.DWC,
        "consts": GuardKind.DWC,
        "sort_perm": GuardKind.DWC,
        "nbr_table": GuardKind.DWC,
        "tree_split_dim": GuardKind.DWC,
        "tree_split_val": GuardKind.DWC,
        "tree_left": GuardKind.DWC,
        "tree_right": GuardKind.DWC,
        "tree_leaf_lo": GuardKind.DWC,
        "tree_leaf_hi": GuardKind.DWC,
        "tree_perm": GuardKind.DWC,
        "tree_n_nodes": GuardKind.DWC,
        **{f"reorder_{f}": GuardKind.DWC
           for f in ("x", "y", "h", "hu", "hv", "lev", "parent", "slot")},
    },
}


def build_guards(benchmark_name: str) -> dict[str, VariableGuard]:
    """Instantiate the recommended guard set for one benchmark."""
    spec = GUARD_SPECS.get(benchmark_name, {})
    return {name: VariableGuard(name, kind) for name, kind in spec.items()}


def attach_observer(
    guards: dict[str, VariableGuard],
    observer: Callable[[DetectorEvent], None],
) -> None:
    """Wire one observer into every guard of a :func:`build_guards` set."""
    for guard in guards.values():
        guard.observer = observer
