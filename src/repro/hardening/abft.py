"""Algorithm-Based Fault Tolerance for matrix multiplication.

Huang & Abraham's checksum scheme: extend A with a column-sum row and B
with a row-sum column; after C = A @ B the row and column sums of C
must match the checksums.  A mismatch localises errors: the paper notes
ABFT "can correct single, line, and random errors in the output in
O(1) time" but not square patterns — which is exactly why Figure 2's
spatial partition matters for choosing mitigations.

Correction strategy on the residual deltas:

* one bad row and one bad column — the classic single-error fix;
* one bad row (column) with several bad columns (rows) — a line error,
  corrected element-wise from the orthogonal checksum;
* several bad rows *and* columns — correctable only when the row and
  column deltas pair up uniquely by value (scattered "random" errors
  in distinct rows/columns); ambiguous square patterns are detected
  but not corrected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["AbftOutcome", "AbftResult", "abft_check", "abft_checksums", "abft_matmul"]


class AbftOutcome(str, enum.Enum):
    """Result of an ABFT verification pass."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected"  # found but not correctable


@dataclass
class AbftResult:
    """Verification outcome plus the (possibly corrected) matrix."""

    outcome: AbftOutcome
    matrix: np.ndarray
    corrections: int = 0


def abft_checksums(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row and column checksums of C = A @ B computed from the inputs.

    row_check[i] = sum_j C[i, j] = A[i, :] @ (B @ 1)
    col_check[j] = sum_i C[i, j] = (1 @ A) @ B[:, j]
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("incompatible operand shapes")
    row_check = a @ b.sum(axis=1)
    col_check = a.sum(axis=0) @ b
    return row_check, col_check


def abft_matmul(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """C = A @ B plus its protection checksums."""
    row_check, col_check = abft_checksums(a, b)
    return a @ b, row_check, col_check


def _relative_tol(reference: np.ndarray, rtol: float) -> float:
    scale = float(np.max(np.abs(reference))) if reference.size else 1.0
    return rtol * max(scale, 1.0)


def abft_check(
    c: np.ndarray,
    row_check: np.ndarray,
    col_check: np.ndarray,
    rtol: float = 1e-8,
) -> AbftResult:
    """Verify (and correct where possible) a result matrix in place.

    Returns a result holding a *copy* of ``c`` with corrections applied.
    """
    if c.ndim != 2:
        raise ValueError("ABFT check needs a 2-D matrix")
    work = np.array(c, dtype=np.float64, copy=True)
    tol = _relative_tol(row_check, rtol)

    with np.errstate(invalid="ignore", over="ignore"):
        row_delta = np.nan_to_num(work.sum(axis=1) - row_check, nan=np.inf)
        col_delta = np.nan_to_num(work.sum(axis=0) - col_check, nan=np.inf)
    bad_rows = np.flatnonzero(np.abs(row_delta) > tol)
    bad_cols = np.flatnonzero(np.abs(col_delta) > tol)

    if bad_rows.size == 0 and bad_cols.size == 0:
        return AbftResult(AbftOutcome.CLEAN, work)
    if bad_rows.size == 0 or bad_cols.size == 0:
        # Compensating errors along one dimension: detectable, not
        # localisable.
        return AbftResult(AbftOutcome.DETECTED, work)

    corrections = 0
    if bad_rows.size == 1:
        r = int(bad_rows[0])
        for col in bad_cols:
            work[r, col] -= col_delta[col]
            corrections += 1
    elif bad_cols.size == 1:
        col = int(bad_cols[0])
        for r in bad_rows:
            work[r, col] -= row_delta[r]
            corrections += 1
    else:
        # Scattered errors: pair rows and columns by matching delta
        # values; ambiguity (unmatched or multiply-matched deltas)
        # means the pattern is square-like and only detectable.
        remaining_cols = list(bad_cols)
        pairs: list[tuple[int, int]] = []
        for r in bad_rows:
            matches = [
                col
                for col in remaining_cols
                if abs(row_delta[r] - col_delta[col]) <= tol
                or (np.isinf(row_delta[r]) and np.isinf(col_delta[col]))
            ]
            if len(matches) != 1:
                return AbftResult(AbftOutcome.DETECTED, work)
            pairs.append((int(r), int(matches[0])))
            remaining_cols.remove(matches[0])
        if remaining_cols:
            return AbftResult(AbftOutcome.DETECTED, work)
        for r, col in pairs:
            work[r, col] -= row_delta[r]
            corrections += 1

    # Re-verify: residual mismatch (e.g. inf/NaN arithmetic) means the
    # correction failed and the error is only detected.
    with np.errstate(invalid="ignore", over="ignore"):
        row_delta2 = np.nan_to_num(work.sum(axis=1) - row_check, nan=np.inf)
        col_delta2 = np.nan_to_num(work.sum(axis=0) - col_check, nan=np.inf)
    if np.any(np.abs(row_delta2) > tol) or np.any(np.abs(col_delta2) > tol):
        return AbftResult(AbftOutcome.DETECTED, np.array(c, dtype=np.float64, copy=True))
    return AbftResult(AbftOutcome.CORRECTED, work, corrections=corrections)
