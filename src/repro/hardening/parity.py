"""Per-word parity protection (paper Section 6.1).

"For NW, a simple parity would detect most SDCs since single faults are
more critical than the other types of faults."  One parity bit per word
detects every odd-multiplicity corruption — all Single-model faults —
while Double-model faults (even multiplicity) escape, and Random
corruption is caught half the time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ParityMismatch", "ParityProtected", "word_parity"]


class ParityMismatch(RuntimeError):
    """A word's parity bit no longer matches its contents."""


#: Parity (0/1) of each possible byte, for XOR-fold parity computation.
_BYTE_PARITY = np.array([bin(i).count("1") & 1 for i in range(256)], dtype=np.uint8)


def word_parity(arr: np.ndarray) -> np.ndarray:
    """Parity bit (0/1) of each element's byte representation.

    XOR-folds the element's bytes (parity is XOR-linear) and looks the
    folded byte's parity up, so the scan is two vectorised passes.
    """
    if not isinstance(arr, np.ndarray):
        raise TypeError("expected ndarray")
    if arr.dtype.hasobject:
        raise TypeError("cannot compute parity of object arrays")
    flat = np.ascontiguousarray(arr).reshape(-1)
    bytes_ = flat.view(np.uint8).reshape(flat.size, arr.dtype.itemsize)
    folded = np.bitwise_xor.reduce(bytes_, axis=1)
    return _BYTE_PARITY[folded]


class ParityProtected:
    """An array with a stored parity bit per element."""

    def __init__(self, initial: np.ndarray):
        self.data = np.array(initial, copy=True)
        self.parity = word_parity(self.data)

    @property
    def overhead_bits(self) -> int:
        """One check bit per protected word."""
        return int(self.parity.size)

    def refresh(self) -> None:
        """Recompute parity after a legitimate write."""
        self.parity = word_parity(self.data)

    def mismatches(self) -> np.ndarray:
        """Flat indices whose parity no longer matches."""
        return np.flatnonzero(word_parity(self.data) != self.parity)

    def check(self) -> bool:
        return self.mismatches().size == 0

    def verify(self) -> None:
        bad = self.mismatches()
        if bad.size:
            raise ParityMismatch(f"parity mismatch at {bad.size} element(s)")


def detection_probability(flipped_bits: int) -> float:
    """Chance a ``flipped_bits``-bit corruption trips the parity bit."""
    if flipped_bits < 1:
        raise ValueError("at least one bit must flip")
    return 1.0 if flipped_bits % 2 == 1 else 0.0
