"""Residue error detection (paper Section 6.1).

A residue code stores ``x mod m`` alongside each protected word and
re-derives it after every arithmetic operation: addition and
multiplication commute with the modulus, so a corrupted operand or a
corrupted logic result is caught when the residues disagree.  The
paper: "Algebraic applications can be better protected with residue
error detection than ECC ... We need only 8 bits to use mod15 for the
residue error protection, or only 2 bits for mod3", and residue checks
also catch the Random/Zero corruptions and logic-circuit errors that
ECC cannot.

Notably, *every* single-bit flip is detected by mod-3 and mod-15
residues: a flip of bit b changes the value by ±2^b, and powers of two
are never divisible by 3 or 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ResidueChecker", "ResidueMismatch", "detection_probability"]


class ResidueMismatch(RuntimeError):
    """A protected value no longer matches its stored residue."""


@dataclass(frozen=True)
class ResidueChecker:
    """Residue protection at a fixed modulus (3 or 15 in the paper)."""

    modulus: int = 3

    def __post_init__(self) -> None:
        if self.modulus < 2:
            raise ValueError("modulus must be at least 2")

    @property
    def check_bits(self) -> int:
        """Bits needed to store one residue."""
        return int(self.modulus - 1).bit_length()

    def residue(self, values: np.ndarray | int) -> np.ndarray:
        """Stored check part: value mod m (element-wise)."""
        return np.mod(np.asarray(values, dtype=np.int64), self.modulus)

    def check(self, values: np.ndarray | int, stored: np.ndarray | int) -> bool:
        """True when every value still matches its stored residue."""
        return bool(np.all(self.residue(values) == np.asarray(stored)))

    def verify(self, values: np.ndarray | int, stored: np.ndarray | int) -> None:
        if not self.check(values, stored):
            raise ResidueMismatch(f"residue mod {self.modulus} mismatch")

    # -- checked arithmetic (the hardware residue unit) ----------------------

    def checked_add(self, x: int, rx: int, y: int, ry: int) -> tuple[int, int]:
        """Add two protected ints, verifying the residue relation."""
        self.verify(x, rx)
        self.verify(y, ry)
        total = x + y
        residue = (rx + ry) % self.modulus
        if total % self.modulus != residue:
            raise ResidueMismatch("adder output disagrees with residue unit")
        return total, residue

    def checked_mul(self, x: int, rx: int, y: int, ry: int) -> tuple[int, int]:
        """Multiply two protected ints, verifying the residue relation."""
        self.verify(x, rx)
        self.verify(y, ry)
        product = x * y
        residue = (rx * ry) % self.modulus
        if product % self.modulus != residue:
            raise ResidueMismatch("multiplier output disagrees with residue unit")
        return product, residue

    def detects_delta(self, delta: int) -> bool:
        """Whether a value change of ``delta`` is caught."""
        return int(delta) % self.modulus != 0

    def detects_single_flip(self, bit: int) -> bool:
        """Single-bit flips change a value by ±2^bit."""
        return self.detects_delta(1 << int(bit))


def detection_probability(modulus: int, flipped_bits: int, word_bits: int = 64) -> float:
    """Probability a ``flipped_bits``-bit corruption escapes the residue.

    Exhaustive over bit-position choices for small multiplicities,
    uniform-delta approximation (1 - 1/m) beyond.
    """
    if flipped_bits < 1:
        raise ValueError("at least one bit must flip")
    checker = ResidueChecker(modulus)
    if flipped_bits == 1:
        detected = sum(checker.detects_delta(1 << b) for b in range(word_bits))
        return detected / word_bits
    if flipped_bits == 2:
        detected = total = 0
        for hi in range(word_bits):
            for lo in range(hi):
                total += 2  # both bits up (+) or one up one down (-)
                detected += checker.detects_delta((1 << hi) + (1 << lo))
                detected += checker.detects_delta((1 << hi) - (1 << lo))
        return detected / total
    return 1.0 - 1.0 / modulus
