"""Redundant execution (redundant multithreading, paper Section 6.1).

"General techniques like redundant multithreading applied only to those
critical functions and operations may also yield an improved resilience
with a fair overhead."  The software analogue here runs a benchmark (or
a step range of it) twice on independent state and compares outputs:
any divergence is a detection.  Time overhead is the duplicated span.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchmarks.base import Benchmark

__all__ = ["RedundantRunResult", "redundant_run"]


@dataclass(frozen=True)
class RedundantRunResult:
    """Outcome of a dual-modular-redundant execution."""

    agree: bool
    output: np.ndarray
    time_overhead_factor: float = 2.0


def redundant_run(benchmark: Benchmark, make_state) -> RedundantRunResult:
    """Run the benchmark twice from identical inputs and compare.

    ``make_state`` is a zero-argument callable producing a fresh state
    with identical inputs each call (e.g. a Supervisor's replay).  Any
    divergence — from a fault injected into *one* of the copies —
    is detected; with fault-free copies the result is bitwise equal
    because every benchmark is deterministic.
    """
    first = benchmark.run(make_state())
    second = benchmark.run(make_state())
    agree = first.shape == second.shape and bool(
        np.array_equal(first, second, equal_nan=True)
    )
    return RedundantRunResult(agree=agree, output=first)
