"""Selective duplication with comparison (paper Section 6.1).

"Selective duplication with comparison can be applied to protect the
internal memory structures that contain such control variables": keep a
shadow copy of a critical variable, compare on every read, and turn a
silent corruption into a detected one.  Cheap when applied selectively
(control variables are bytes, the matrices are megabytes), which is the
paper's core hardening recommendation for DGEMM/LUD control state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DuplicatedVariable", "DwcMismatch"]


class DwcMismatch(RuntimeError):
    """Primary and shadow copies disagree: corruption detected."""


class DuplicatedVariable:
    """A variable kept in two copies and compared on access."""

    def __init__(self, initial: np.ndarray):
        arr = np.asarray(initial)
        if arr.dtype.hasobject:
            raise TypeError("cannot duplicate object arrays")
        self.primary = np.array(arr, copy=True)
        self.shadow = np.array(arr, copy=True)

    @property
    def overhead_bytes(self) -> int:
        """Extra memory the shadow copy costs."""
        return int(self.shadow.nbytes)

    def check(self) -> bool:
        """True when both copies still agree bit-for-bit."""
        return bool(
            np.array_equal(
                self.primary.reshape(-1).view(np.uint8),
                self.shadow.reshape(-1).view(np.uint8),
            )
        )

    def read(self) -> np.ndarray:
        """Compared read: raises :class:`DwcMismatch` on divergence."""
        if not self.check():
            raise DwcMismatch("duplicated variable copies diverged")
        return self.primary

    def write(self, value: np.ndarray | int | float) -> None:
        """Write-through to both copies."""
        self.primary[...] = value
        self.shadow[...] = value

    def scrub(self) -> None:
        """Majority-free repair: re-sync shadow from primary.

        Only safe right after a successful :meth:`check`; exposed for
        periodic-scrubbing policies.
        """
        self.shadow[...] = self.primary
