"""Selective hardening policies (paper Section 6.1).

The whole point of CAROL-FI's criticality grading is to protect *only*
what matters: "we can evaluate the most critical code portions, fault
models, and time windows for each class of application and apply the
most appropriate level of protection to provide the desired level of
resilience."  This module encodes the paper's per-benchmark
recommendations and a generic recommender that derives a plan from a
criticality report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.criticality import PortionReport
from repro.faults.models import FaultModel
from repro.hardening.parity import detection_probability as parity_detection
from repro.hardening.residue import detection_probability as residue_detection

__all__ = [
    "HardeningPlan",
    "RECOMMENDED_PLANS",
    "Technique",
    "detection_probability",
    "recommend_plan",
]


class Technique(str, enum.Enum):
    """Software/hardware mitigation techniques discussed by the paper."""

    ABFT = "abft"
    RESIDUE_MOD3 = "residue_mod3"
    RESIDUE_MOD15 = "residue_mod15"
    DWC = "duplication_with_comparison"
    PARITY = "parity"
    RMT = "redundant_multithreading"


#: Rough cost models used for plan comparison: (memory overhead as a
#: fraction of protected bytes, time overhead factor on protected code).
TECHNIQUE_COSTS: dict[Technique, tuple[float, float]] = {
    Technique.ABFT: (2.0 / 64.0, 1.10),  # one checksum row+col on an n x n tile
    Technique.RESIDUE_MOD3: (2.0 / 64.0, 1.08),
    Technique.RESIDUE_MOD15: (4.0 / 64.0, 1.08),
    Technique.DWC: (1.0, 1.05),
    Technique.PARITY: (1.0 / 64.0, 1.03),
    Technique.RMT: (1.0, 2.00),
}


def detection_probability(technique: Technique, model: FaultModel | str) -> float:
    """P(detect | fault of ``model`` lands in state protected by ``technique``).

    Single-bit flips are always caught by residues mod 3/15 (powers of
    two are never multiples of 3 or 15) and by parity; Double escapes
    parity entirely; Random/Zero are what residue catches and ECC
    cannot — the paper's argument for residue over ECC on algebraic
    codes.
    """
    model = FaultModel(model)
    if technique in (Technique.DWC, Technique.RMT):
        return 1.0
    if technique is Technique.PARITY:
        if model is FaultModel.SINGLE:
            return parity_detection(1)
        if model is FaultModel.DOUBLE:
            return parity_detection(2)
        return 0.5  # random/zero: final parity matches half the time
    if technique in (Technique.RESIDUE_MOD3, Technique.RESIDUE_MOD15):
        modulus = 3 if technique is Technique.RESIDUE_MOD3 else 15
        if model is FaultModel.SINGLE:
            return residue_detection(modulus, 1)
        if model is FaultModel.DOUBLE:
            return residue_detection(modulus, 2)
        return 1.0 - 1.0 / modulus
    if technique is Technique.ABFT:
        # Output-checksum verification catches any value change; the
        # correction capability depends on the spatial pattern and is
        # handled by the evaluator.
        return 1.0
    raise ValueError(f"unknown technique {technique!r}")  # pragma: no cover


@dataclass
class HardeningPlan:
    """Technique assignment per code portion of one benchmark."""

    benchmark: str
    assignments: dict[str, Technique] = field(default_factory=dict)
    rationale: str = ""

    def technique_for(self, portion: str) -> Technique | None:
        return self.assignments.get(portion)

    def memory_overhead_fraction(self, portion_bytes: dict[str, float]) -> float:
        """Weighted extra-memory fraction over the whole image."""
        total = sum(portion_bytes.values())
        if total <= 0:
            raise ValueError("portion byte map is empty")
        extra = 0.0
        for portion, technique in self.assignments.items():
            mem, _time = TECHNIQUE_COSTS[technique]
            extra += portion_bytes.get(portion, 0.0) * mem
        return extra / total


#: The paper's Section 6 / 6.1 recommendations, verbatim in structure.
RECOMMENDED_PLANS: dict[str, HardeningPlan] = {
    "dgemm": HardeningPlan(
        "dgemm",
        {
            "matrices": Technique.RESIDUE_MOD15,
            "control": Technique.DWC,
        },
        rationale=(
            "Residue module check catches logic errors that update the "
            "matrices; selective duplication protects the replicated "
            "loop-control integers."
        ),
    ),
    "lud": HardeningPlan(
        "lud",
        {
            "matrices": Technique.RESIDUE_MOD15,
            "control": Technique.DWC,
        },
        rationale=(
            "Residue check for matrix operations plus redundant "
            "multithreading or duplication-with-comparison on control "
            "variables; a heavier technique mid-run where the time-window "
            "PVF peaks."
        ),
    ),
    "hotspot": HardeningPlan(
        "hotspot",
        {
            "constant+control": Technique.DWC,
        },
        rationale=(
            "The algorithm attenuates data errors intrinsically, so simple "
            "replication of the sensitive constants/control variables gives "
            "the best performance/reliability ratio."
        ),
    ),
    "clamr": HardeningPlan(
        "clamr",
        {
            "sort": Technique.RMT,
            "tree": Technique.RMT,
        },
        rationale=(
            "Sort and Tree operations cause the majority of harmful "
            "outcomes; redundant multithreading on just those functions "
            "improves resilience at fair overhead and lets checkpoint "
            "frequency drop."
        ),
    ),
    "nw": HardeningPlan(
        "nw",
        {
            "matrices": Technique.PARITY,
        },
        rationale=(
            "Single faults are the critical ones for NW's integer "
            "matrices, so one parity bit per word detects most SDCs."
        ),
    ),
    "lavamd": HardeningPlan(
        "lavamd",
        {
            "charge+distance": Technique.RMT,
            "force": Technique.RMT,
        },
        rationale=(
            "Most of the exposed memory is likely to generate an SDC or "
            "DUE; without an algorithm-specific technique, generic modular "
            "replication (approximately 2x time/energy) is required."
        ),
    ),
}


def recommend_plan(
    benchmark: str,
    reports: list[PortionReport],
    harmful_threshold: float = 0.3,
    default_technique: Technique = Technique.DWC,
) -> HardeningPlan:
    """Derive a plan from measured criticality: protect hot portions."""
    if not 0.0 <= harmful_threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    assignments: dict[str, Technique] = {}
    for report in reports:
        if report.harmful_fraction >= harmful_threshold:
            assignments[report.portion] = default_technique
    return HardeningPlan(
        benchmark,
        assignments,
        rationale=(
            f"portions with >= {harmful_threshold:.0%} harmful faults, "
            f"protected with {default_technique.value}"
        ),
    )
