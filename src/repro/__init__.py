"""repro — reproduction of "Experimental and Analytical Study of Xeon
Phi Reliability" (Oliveira et al., SC'17).

The library rebuilds the paper's entire experimental apparatus in pure
Python/NumPy:

* six injectable HPC benchmarks (:mod:`repro.benchmarks`): CLAMR with
  its AMR mesh / cell sort / K-D tree, DGEMM, HotSpot, LavaMD, LUD and
  Needleman-Wunsch;
* the CAROL-FI high-level fault injector (:mod:`repro.carolfi`) with
  the Single / Double / Random / Zero fault models
  (:mod:`repro.faults`);
* a Knights Corner machine model (:mod:`repro.phi`) and a neutron-beam
  campaign simulator with FIT estimation (:mod:`repro.beam`);
* SDC qualification and vulnerability analysis (:mod:`repro.analysis`):
  spatial error patterns, relative-error tolerance sweeps, PVF by fault
  model and time window, criticality grading, machine-scale MTBF;
* the mitigation techniques of the paper's discussion
  (:mod:`repro.hardening`): ABFT, residue codes, duplication with
  comparison, parity, redundant execution, selective plans;
* a harness regenerating every figure and table
  (:mod:`repro.experiments`, CLI ``repro-experiments``).

Quickstart::

    from repro.carolfi import CampaignConfig, run_campaign

    result = run_campaign(CampaignConfig(benchmark="dgemm", injections=500))
    print(result.outcome_fractions())
"""

from repro.beam import BeamExperiment, estimate_fit
from repro.benchmarks import Benchmark, create, names
from repro.carolfi import CampaignConfig, Supervisor, run_campaign
from repro.faults import FaultModel, Outcome

__version__ = "1.0.0"

__all__ = [
    "Benchmark",
    "BeamExperiment",
    "CampaignConfig",
    "FaultModel",
    "Outcome",
    "Supervisor",
    "__version__",
    "create",
    "estimate_fit",
    "names",
    "run_campaign",
]
