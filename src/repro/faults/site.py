"""Fault site addressing.

A :class:`FaultSite` names the exact memory element an injection
corrupted: the frame (scope) and variable name CAROL-FI resolved, the
flat element index within the variable's backing array, and the dtype.
This is the source-level counterpart of GDB's "variable name, file name
and line number" log fields from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultSite"]


@dataclass(frozen=True)
class FaultSite:
    """The location of one injected fault."""

    frame: str
    """Scope the variable lives in (e.g. ``global``, ``main``, ``kernel``)."""

    variable: str
    """Source-level variable name."""

    flat_index: int
    """Flat element index inside the variable's backing array."""

    dtype: str
    """NumPy dtype string of the victim element."""

    var_class: str = "data"
    """Criticality class of the variable (``data``, ``control``, ``constant``...)."""

    shape: tuple[int, ...] = field(default=())
    """Shape of the variable at injection time."""

    def to_dict(self) -> dict:
        return {
            "frame": self.frame,
            "variable": self.variable,
            "flat_index": self.flat_index,
            "dtype": self.dtype,
            "var_class": self.var_class,
            "shape": list(self.shape),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSite":
        return cls(
            frame=data["frame"],
            variable=data["variable"],
            flat_index=int(data["flat_index"]),
            dtype=data["dtype"],
            var_class=data.get("var_class", "data"),
            shape=tuple(data.get("shape", ())),
        )
