"""The four CAROL-FI fault models (paper Section 5.2).

* ``SINGLE`` — flip one random bit of the victim element.
* ``DOUBLE`` — flip two random bits *within the same byte* of the victim
  element (the paper restricts the distance between the flipped bits to
  one byte offset, modelling multi-cell upsets).
* ``RANDOM`` — overwrite every bit of the element with random bits.
* ``ZERO`` — set every bit of the element to zero.

The models are applied to the raw little-endian byte representation of
the element, so a Single flip of bit 62 of a float64 perturbs the
exponent while bit 3 perturbs the low mantissa — exactly the spread of
severities the paper's analysis relies on.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.util.bits import (
    bit_width,
    flip_bit_inplace,
    flip_bits_inplace,
    randomize_element_inplace,
    zero_element_inplace,
)

__all__ = ["FaultModel", "apply_fault_model"]


class FaultModel(str, enum.Enum):
    """High-level fault model applied to one memory element."""

    SINGLE = "single"
    DOUBLE = "double"
    RANDOM = "random"
    ZERO = "zero"

    @classmethod
    def all(cls) -> tuple["FaultModel", ...]:
        return (cls.SINGLE, cls.DOUBLE, cls.RANDOM, cls.ZERO)


def apply_fault_model(
    arr: np.ndarray,
    flat_index: int,
    model: FaultModel,
    rng: np.random.Generator,
) -> dict:
    """Corrupt one element of ``arr`` in place under ``model``.

    Returns a description of what was done (bit positions for the flip
    models) for the injection log.
    """
    model = FaultModel(model)
    nbits = bit_width(arr.dtype)
    if model is FaultModel.SINGLE:
        bit = int(rng.integers(0, nbits))
        flip_bit_inplace(arr, flat_index, bit)
        return {"model": model.value, "bits": [bit]}
    if model is FaultModel.DOUBLE:
        byte = int(rng.integers(0, nbits // 8))
        lo, hi = rng.choice(8, size=2, replace=False)
        bits = sorted(int(b) + 8 * byte for b in (lo, hi))
        flip_bits_inplace(arr, flat_index, bits)
        return {"model": model.value, "bits": bits}
    if model is FaultModel.RANDOM:
        randomize_element_inplace(arr, flat_index, rng)
        return {"model": model.value, "bits": None}
    if model is FaultModel.ZERO:
        zero_element_inplace(arr, flat_index)
        return {"model": model.value, "bits": None}
    raise ValueError(f"unknown fault model: {model!r}")  # pragma: no cover
