"""Fault models, fault sites, and outcome taxonomy.

This package defines the vocabulary shared by both injection paths of
the reproduction: the CAROL-FI style source-level injector
(:mod:`repro.carolfi`) and the beam-strike simulator (:mod:`repro.beam`).
"""

from repro.faults.models import FaultModel, apply_fault_model
from repro.faults.outcome import DueKind, InjectionRecord, Outcome
from repro.faults.site import FaultSite

__all__ = [
    "DueKind",
    "FaultModel",
    "FaultSite",
    "InjectionRecord",
    "Outcome",
    "apply_fault_model",
]
