"""Outcome taxonomy for fault injection and beam experiments.

A transient fault leads to one of three outcomes (paper Section 2.1):

* **Masked** — no effect on the program output.
* **SDC** — Silent Data Corruption: the program completes but its
  output mismatches the golden copy.
* **DUE** — Detected Unrecoverable Error: crash, hang (watchdog
  timeout), or machine-check abort.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.faults.site import FaultSite

__all__ = ["DueKind", "InjectionRecord", "Outcome"]


class Outcome(str, enum.Enum):
    """Final classification of one corrupted execution."""

    MASKED = "masked"
    SDC = "sdc"
    DUE = "due"

    @classmethod
    def all(cls) -> tuple["Outcome", ...]:
        return (cls.MASKED, cls.SDC, cls.DUE)


class DueKind(str, enum.Enum):
    """How a DUE manifested."""

    CRASH = "crash"
    """Unhandled exception in the benchmark, or an observed worker
    process death (non-zero exit code / fatal signal) under subprocess
    isolation (segfault analogue)."""

    TIMEOUT = "timeout"
    """Supervisor watchdog expired (cooperative hang detection)."""

    HANG = "hang"
    """The isolation sandbox killed the worker at its hard wall-clock
    deadline — a true observed hang, not a cooperative guard."""

    OOM = "oom"
    """The isolation sandbox killed the worker for exceeding its RSS
    memory ceiling (unbounded-allocation analogue)."""

    MCA = "mca"
    """Machine-check abort raised by the ECC model (double-bit error)."""


@dataclass(frozen=True)
class InjectionRecord:
    """One line of the campaign log: a fault and its observed outcome."""

    benchmark: str
    run_index: int
    site: FaultSite
    fault_model: str
    bits: tuple[int, ...] | None
    interrupt_step: int
    total_steps: int
    time_window: int
    num_windows: int
    outcome: Outcome
    due_kind: DueKind | None = None
    due_detail: str = ""
    sdc_metrics: dict[str, Any] = field(default_factory=dict)

    extra_faults: tuple[dict[str, Any], ...] = ()
    """Faults delivered *after* the primary one in a multi-fault run
    (each a dict with ``step``, ``fault_model``, ``site``, ``bits``).
    Empty for ordinary single-fault campaigns — and serialized only when
    non-empty, so single-fault records stay byte-identical to the
    pre-multi-fault log format."""

    def to_dict(self) -> dict:
        extra = (
            {"extra_faults": [dict(f) for f in self.extra_faults]}
            if self.extra_faults
            else {}
        )
        return {
            "benchmark": self.benchmark,
            "run_index": self.run_index,
            "site": self.site.to_dict(),
            "fault_model": self.fault_model,
            "bits": list(self.bits) if self.bits is not None else None,
            "interrupt_step": self.interrupt_step,
            "total_steps": self.total_steps,
            "time_window": self.time_window,
            "num_windows": self.num_windows,
            "outcome": self.outcome.value,
            "due_kind": self.due_kind.value if self.due_kind else None,
            "due_detail": self.due_detail,
            "sdc_metrics": dict(self.sdc_metrics),
            **extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionRecord":
        return cls(
            benchmark=data["benchmark"],
            run_index=int(data["run_index"]),
            site=FaultSite.from_dict(data["site"]),
            fault_model=data["fault_model"],
            bits=tuple(data["bits"]) if data.get("bits") is not None else None,
            interrupt_step=int(data["interrupt_step"]),
            total_steps=int(data["total_steps"]),
            time_window=int(data["time_window"]),
            num_windows=int(data["num_windows"]),
            outcome=Outcome(data["outcome"]),
            due_kind=DueKind(data["due_kind"]) if data.get("due_kind") else None,
            due_detail=data.get("due_detail", ""),
            sdc_metrics=dict(data.get("sdc_metrics", {})),
            extra_faults=tuple(dict(f) for f in data.get("extra_faults", ())),
        )
