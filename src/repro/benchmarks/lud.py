"""LUD — blocked in-place LU decomposition (Rodinia).

A right-looking blocked LU factorisation without pivoting: at block
step k the diagonal block is factorised, the row and column panels are
triangular-solved, and the trailing submatrix receives a rank-``bs``
update.  Dense linear algebra like DGEMM but with far more row/column
interdependencies and an in-place working set, which is what gives LUD
its mid-execution criticality peak in the paper (Figure 6).

Reproduction-relevant structure:

* the matrix is both input and output, so an early fault propagates
  into *everything* the trailing updates touch (square patterns, large
  relative errors), while a late fault stays local;
* block cursors and panel bounds live in control memory; corrupting
  them mis-factorises a wrong window (SDC) or indexes out of bounds
  (DUE);
* no pivoting means a corrupted zero pivot divides to inf/NaN — an SDC
  with huge magnitude, exactly the paper's "errors tend to compound"
  observation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, PointerTable, Variable, bounded_range

__all__ = ["Lud", "LudState"]


@dataclass
class LudState:
    """Live state of one LUD execution."""

    matrix: np.ndarray  # (n, n) float32 — factorised in place
    input_copy: np.ndarray  # (n, n) float32 — kept for -v verification
    panel: np.ndarray  # (bs, n) float32 — row-panel scratch
    block_ctl: np.ndarray  # (nblocks, 3) int64 — [b0, b1, n] per block step
    ptrs: PointerTable  # pointer to the working matrix


class Lud(Benchmark):
    """Blocked in-place LU decomposition (single precision)."""

    name = "lud"
    output_dims = 2
    num_windows = 4
    float_output = True
    output_decimals = 4
    supports_batching = True
    stack_share = 0.35

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"n": 48, "block": 4}

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        return {"n": 2048, "block": 16}

    def __init__(self, **params: Any):
        super().__init__(**params)
        n, bs = self.params["n"], self.params["block"]
        if bs < 1:
            raise ValueError("block must be positive")
        if n % bs != 0:
            raise ValueError("n must be divisible by block")

    def make_state(self, rng: np.random.Generator) -> LudState:
        n, bs = self.params["n"], self.params["block"]
        # Diagonally dominant input so the pivot-free factorisation is
        # well conditioned (Rodinia generates inputs the same way).
        matrix = rng.standard_normal((n, n)).astype(np.float32)
        matrix += n * np.eye(n, dtype=np.float32)
        nblocks = n // bs
        ctl = np.zeros((nblocks, 3), dtype=np.int64)
        for k in range(nblocks):
            ctl[k] = (k * bs, (k + 1) * bs, n)
        return LudState(
            matrix=matrix,
            input_copy=matrix.copy(),
            panel=np.zeros((bs, n), dtype=np.float32),
            block_ctl=ctl,
            ptrs=PointerTable({"matrix": matrix}),
        )

    def num_steps(self, state: LudState) -> int:
        return state.block_ctl.shape[0]

    def step(self, state: LudState, index: int) -> None:
        nblocks = state.block_ctl.shape[0]
        if not 0 <= index < nblocks:
            raise IndexError(f"block step {index} out of range")
        b0, b1, n = (int(v) for v in state.block_ctl[index])
        # A shifted (corrupted but in-allocation) pointer reads garbage
        # and factorises a detached copy: the real matrix goes stale.
        a = state.ptrs.resolve("matrix", state.matrix)
        if not (0 <= b0 < b1 <= n <= a.shape[0]):
            raise IndexError(f"corrupted block bounds ({b0}, {b1}, {n})")
        bs = b1 - b0
        if bs > state.panel.shape[0]:
            raise IndexError(f"block height {bs} overflows panel scratch")

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            # 1. Unblocked LU of the diagonal block.
            for j in bounded_range(b0, b1):
                pivot = a[j, j]
                a[j + 1 : b1, j] /= pivot
                a[j + 1 : b1, j + 1 : b1] -= np.outer(a[j + 1 : b1, j], a[j, j + 1 : b1])
            if b1 < n:
                # 2. Row panel: U_kj = L_kk^-1 A_kj (forward substitution).
                panel = state.panel[:bs, : n - b1]
                panel[...] = a[b0:b1, b1:n]
                for i in bounded_range(1, bs):
                    panel[i] -= a[b0 + i, b0 : b0 + i] @ panel[:i]
                a[b0:b1, b1:n] = panel
                # 3. Column panel: L_ik = A_ik U_kk^-1 (back substitution).
                col = a[b1:n, b0:b1]
                for j in bounded_range(0, bs):
                    col[:, j] = (
                        col[:, j] - col[:, :j] @ a[b0 : b0 + j, b0 + j]
                    ) / a[b0 + j, b0 + j]
                # 4. Trailing update.
                a[b1:n, b1:n] -= col @ a[b0:b1, b1:n]

    # -- vectorized batch path ----------------------------------------------

    def batch_coherent(self, state: LudState, golden: LudState, index: int) -> bool:
        """Block cursors and the matrix pointer drive all control flow;
        matrix *values* only feed elementwise arithmetic and stay free.
        Block step ``k`` reads only ``block_ctl[k]``, so rows before the
        injection step are already consumed and dead — the scalar path
        never looks at them again — and only the remaining rows gate the
        batch."""
        return np.array_equal(state.ptrs.addresses, golden.ptrs.addresses) and np.array_equal(
            state.block_ctl[index:], golden.block_ctl[index:]
        )

    def step_batch(
        self, states: Sequence[LudState], index: int, carry: Any = None
    ) -> Any:
        b0, b1, n = (int(v) for v in states[0].block_ctl[index])
        bs = b1 - b0
        if carry is None:
            carry = {"a": np.stack([st.matrix for st in states])}  # (B, n, n) f32
        a = carry["a"]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for j in range(b0, b1):
                piv = a[:, j, j]
                a[:, j + 1 : b1, j] /= piv[:, None]
                a[:, j + 1 : b1, j + 1 : b1] -= (
                    a[:, j + 1 : b1, j][:, :, None] * a[:, j, j + 1 : b1][:, None, :]
                )
            if b1 < n:
                panel = a[:, b0:b1, b1:n].copy()
                for i in range(1, bs):
                    panel[:, i] -= (a[:, b0 + i, b0 : b0 + i][:, None, :] @ panel[:, :i])[:, 0]
                a[:, b0:b1, b1:n] = panel
                col = a[:, b1:n, b0:b1]
                for j in range(bs):
                    col[:, :, j] = (
                        col[:, :, j]
                        - (col[:, :, :j] @ a[:, b0 : b0 + j, b0 + j][:, :, None])[:, :, 0]
                    ) / a[:, b0 + j, b0 + j][:, None]
                a[:, b1:n, b1:n] -= col @ a[:, b0:b1, b1:n]
        return carry

    def batch_flush(self, states: Sequence[LudState], carry: Any) -> None:
        if carry is None:
            return
        a = carry["a"]
        for i, st in enumerate(states):
            st.matrix[...] = a[i]

    def output(self, state: LudState) -> np.ndarray:
        with np.errstate(invalid="ignore", over="ignore"):
            return state.matrix.astype(np.float64)

    def variables(self, state: LudState, step: int) -> list[Variable]:
        return [
            Variable("matrix", state.matrix, frame="global", var_class="matrix"),
            Variable("input_copy", state.input_copy, frame="main", var_class="matrix"),
            Variable("panel", state.panel, frame="kernel", var_class="matrix"),
            Variable("block_ctl", state.block_ctl, frame="kernel", var_class="control"),
            Variable("matrix_ptr", state.ptrs.addresses, frame="kernel", var_class="pointer"),
        ]
