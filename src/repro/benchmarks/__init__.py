"""The six HPC benchmarks of the paper (Section 3.2), as injectable
stepped state machines.

* :class:`~repro.benchmarks.clamr.Clamr` — DOE AMR hydrodynamics mini-app
* :class:`~repro.benchmarks.dgemm.Dgemm` — blocked matrix multiplication
* :class:`~repro.benchmarks.hotspot.HotSpot` — thermal stencil
* :class:`~repro.benchmarks.lavamd.LavaMD` — cutoff N-body in 3-D boxes
* :class:`~repro.benchmarks.lud.Lud` — blocked LU decomposition
* :class:`~repro.benchmarks.nw.NeedlemanWunsch` — integer sequence alignment
"""

from repro.benchmarks.base import (
    Benchmark,
    BenchmarkError,
    BenchmarkHang,
    SimulationAborted,
    Variable,
)
from repro.benchmarks.clamr import Clamr
from repro.benchmarks.dgemm import Dgemm
from repro.benchmarks.hotspot import HotSpot
from repro.benchmarks.lavamd import LavaMD
from repro.benchmarks.lud import Lud
from repro.benchmarks.nw import NeedlemanWunsch
from repro.benchmarks.registry import (
    BEAM_BENCHMARKS,
    BENCHMARKS,
    INJECTION_BENCHMARKS,
    TIME_WINDOW_BENCHMARKS,
    create,
    names,
)

__all__ = [
    "BEAM_BENCHMARKS",
    "BENCHMARKS",
    "Benchmark",
    "BenchmarkError",
    "BenchmarkHang",
    "Clamr",
    "Dgemm",
    "HotSpot",
    "INJECTION_BENCHMARKS",
    "LavaMD",
    "Lud",
    "NeedlemanWunsch",
    "SimulationAborted",
    "TIME_WINDOW_BENCHMARKS",
    "Variable",
    "create",
    "names",
]
