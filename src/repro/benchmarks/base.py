"""Benchmark protocol for injectable stepped execution.

Every benchmark in the suite (paper Section 3.2) is implemented as a
*stepped state machine*:

* :meth:`Benchmark.make_state` allocates all inputs and working arrays
  for a given RNG (inputs are dynamically generated once per campaign,
  like the paper's datasets);
* :meth:`Benchmark.num_steps` / :meth:`Benchmark.step` advance the
  computation one scheduling quantum at a time, so an injector can
  interrupt *between* steps exactly like CAROL-FI interrupts a process
  with a signal;
* :meth:`Benchmark.variables` exposes the live source-level variables
  (as :class:`Variable` records wrapping the actual NumPy backing
  stores) so the Flip-script can corrupt real state and execution then
  resumes on the corrupted store — propagation is computed, never
  simulated from a table;
* :meth:`Benchmark.output` extracts the final output for golden
  comparison.

Scalars that matter (loop bounds, sizes, counters) are stored in small
integer arrays that the step functions genuinely read, so corrupting
them produces wrong regions, crashes, or hangs organically.
"""

from __future__ import annotations

import abc
import time
from collections.abc import Sequence
from dataclasses import dataclass, fields, is_dataclass
from typing import Any

import numpy as np

from repro.telemetry import current_registry

__all__ = [
    "Benchmark",
    "BenchmarkError",
    "BenchmarkHang",
    "PointerTable",
    "SegmentationFault",
    "SimulationAborted",
    "Variable",
    "arm_deadline",
    "bounded_range",
    "checked_index",
    "clone_state",
    "deadline_checkpoint",
    "state_nbytes",
    "window_of_step",
]

#: Hard iteration cap used by every internal data-dependent loop.  Real
#: code would spin forever on a corrupted loop variable; we convert that
#: into a deterministic :class:`BenchmarkHang` the Supervisor's watchdog
#: classifies as a DUE (timeout).
MAX_LOOP_ITERATIONS = 100_000


#: Wall-clock deadline (``time.perf_counter`` value) armed by the
#: Supervisor for the duration of one injected execution, or ``None``
#: outside a supervised run.  Workers are single-threaded processes, so
#: a module global is sufficient (and cheap to consult from hot loops).
_DEADLINE: float | None = None


def arm_deadline(at: float | None) -> None:
    """Arm (or, with ``None``, disarm) the cooperative run deadline.

    While armed, :func:`deadline_checkpoint` — called by
    :func:`bounded_range` and available to any long-running step body —
    raises :class:`BenchmarkHang` once ``time.perf_counter()`` passes
    ``at``.  This lets the watchdog fire *inside* a slow step instead of
    only between steps, narrowing the set of hangs that require the
    isolation sandbox's hard kill.
    """
    global _DEADLINE
    _DEADLINE = None if at is None else float(at)


def _count_guard_trip(guard: str) -> None:
    """Count one hang-guard trip (no-op when telemetry is disabled)."""
    current_registry().counter(
        "repro_guard_trips_total",
        help="Hang-guard trips converted into BenchmarkHang, by guard.",
    ).inc(guard=guard)


def deadline_checkpoint() -> None:
    """Raise :class:`BenchmarkHang` if the armed run deadline has passed."""
    if _DEADLINE is not None and time.perf_counter() > _DEADLINE:
        _count_guard_trip("deadline")
        raise BenchmarkHang("cooperative deadline expired mid-step")


def window_of_step(step: int, total_steps: int, num_windows: int) -> int:
    """Execution-time window (0-based) a step falls into.

    Module-level so code that only knows a benchmark's metadata (e.g.
    the isolation sandbox synthesising a DUE record for a run whose
    worker process died) windows steps identically to the live
    :meth:`Benchmark.window_of_step`.
    """
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    step = min(max(step, 0), total_steps - 1)
    return min(num_windows - 1, step * num_windows // total_steps)


def clone_state(obj: Any) -> Any:
    """Bit-exact deep copy of a benchmark state tree.

    The snapshot/restore protocol (:meth:`Benchmark.snapshot` /
    :meth:`Benchmark.restore`) rests on this being *exact*: the fault
    models flip bits of existing values, so a restored prefix must be
    indistinguishable — down to the last mantissa bit — from one that
    was recomputed from step 0.  NumPy arrays are copied, immutable
    scalars shared, containers and state dataclasses rebuilt
    recursively, and any object exposing a ``clone()`` method (e.g.
    :class:`PointerTable`, CLAMR's ``AmrMesh``) delegates to it.  An
    unrecognised type is a hard error: silently sharing mutable state
    between runs would corrupt every later injection.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return obj
    clone = getattr(obj, "clone", None)
    if callable(clone):
        return clone()
    if is_dataclass(obj) and not isinstance(obj, type):
        return type(obj)(**{f.name: clone_state(getattr(obj, f.name)) for f in fields(obj)})
    if isinstance(obj, dict):
        return {key: clone_state(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(clone_state(value) for value in obj)
    raise TypeError(
        f"cannot snapshot state component of type {type(obj).__name__}; "
        "give it a clone() method or use arrays/dataclasses/containers"
    )


def state_nbytes(obj: Any) -> int:
    """Approximate heap footprint of a state tree (array bytes only).

    Used by the prefix-snapshot store to enforce its byte budget; the
    traversal mirrors :func:`clone_state`, falling back to an object's
    ``__dict__`` where no cheaper structure is known.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return 0
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(state_nbytes(getattr(obj, f.name)) for f in fields(obj))
    if isinstance(obj, dict):
        return sum(state_nbytes(value) for value in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(state_nbytes(value) for value in obj)
    if hasattr(obj, "__dict__"):
        return sum(state_nbytes(value) for value in vars(obj).values())
    return 0


class BenchmarkError(RuntimeError):
    """Base class for in-benchmark failures (classified as DUE-crash)."""


class BenchmarkHang(BenchmarkError):
    """A data-dependent loop exceeded its iteration budget (hang)."""


class SimulationAborted(BenchmarkError):
    """The benchmark's own sanity checks aborted the run (e.g. CFL)."""


class SegmentationFault(BenchmarkError):
    """A corrupted pointer was dereferenced outside its allocation."""


class PointerTable:
    """Pointer variables for a benchmark's major heap allocations.

    In the paper's C benchmarks, the arrays are reached through pointer
    variables that live on the stack and are fully visible to GDB's
    frame walk — and a corrupted pointer is one of the main ways a
    high-level fault becomes a DUE.  This table models them: each named
    array gets a fake 64-bit base address in :attr:`addresses` (the
    injectable backing store).  :meth:`resolve` re-derives the array
    through its pointer every step:

    * untouched pointer — the array itself, zero cost;
    * corrupted to an address outside the allocation (high-bit flips,
      Random, the Zero/null pointer) — :class:`SegmentationFault`;
    * corrupted but still inside the allocation (low-bit flips) — a
      misaligned read: the byte stream shifted by the offset, i.e.
      garbage values, which propagate as SDCs.
    """

    _PAGE = 1 << 12
    _HEAP_BASE = 0x7F32_0000_0000

    def __init__(self, arrays: dict[str, np.ndarray]):
        if not arrays:
            raise ValueError("pointer table needs at least one array")
        self.names = list(arrays)
        self._sizes = {name: int(arr.nbytes) for name, arr in arrays.items()}
        addresses = []
        cursor = self._HEAP_BASE
        for name in self.names:
            addresses.append(cursor)
            span = self._sizes[name] + self._PAGE
            cursor += span + (-span) % self._PAGE
        self.addresses = np.array(addresses, dtype=np.int64)
        self._orig = self.addresses.copy()

    def clone(self) -> "PointerTable":
        """Independent copy (same fake addresses, separate backing stores).

        ``__init__`` re-derives addresses from sizes, which would be
        correct here but wasteful; more importantly a clone must also
        preserve *corrupted* ``addresses`` values bit-for-bit, which
        re-derivation would silently repair.
        """
        dup = object.__new__(PointerTable)
        dup.names = list(self.names)
        dup._sizes = dict(self._sizes)
        dup.addresses = self.addresses.copy()
        dup._orig = self._orig.copy()
        return dup

    def resolve(self, name: str, arr: np.ndarray) -> np.ndarray:
        """Dereference ``name``'s pointer against its backing array."""
        slot = self.names.index(name)
        addr = int(self.addresses[slot])
        orig = int(self._orig[slot])
        if addr == orig:
            return arr
        offset = addr - orig
        if not 0 <= offset < self._sizes[name]:
            raise SegmentationFault(
                f"dereference of {name} at {addr:#x} outside its allocation"
            )
        flat = arr.reshape(-1).view(np.uint8)
        shifted = np.roll(flat, -offset)
        return shifted.view(arr.dtype).reshape(arr.shape)


def bounded_range(start: int, stop: int, step: int = 1) -> range:
    """A ``range`` with a hang guard.

    Mirrors a ``for`` loop whose bounds live in (corruptible) memory: a
    corrupted ``step`` of zero or an absurd trip count raises
    :class:`BenchmarkHang` instead of spinning.
    """
    deadline_checkpoint()
    start, stop, step = int(start), int(stop), int(step)
    if step == 0:
        _count_guard_trip("loop_step_zero")
        raise BenchmarkHang("loop step corrupted to zero")
    trip = max(0, (stop - start + (step - (1 if step > 0 else -1))) // step)
    if trip > MAX_LOOP_ITERATIONS:
        _count_guard_trip("trip_budget")
        raise BenchmarkHang(f"loop trip count {trip} exceeds budget")
    return range(start, stop, step)


def checked_index(index: int, size: int, what: str = "index") -> int:
    """Validate an index exactly like hardware bounds checking would.

    Negative wrap-around is *not* allowed: corrupted indices must fail
    the way a segfaulting C program fails rather than silently aliasing
    Python's negative indexing.
    """
    index = int(index)
    if not 0 <= index < size:
        raise IndexError(f"{what} {index} out of bounds for size {size}")
    return index


@dataclass(frozen=True)
class Variable:
    """One live, injectable source-level variable.

    ``array`` is the *actual backing store* of the benchmark state; any
    in-place mutation is visible to subsequent steps.
    """

    name: str
    array: np.ndarray
    frame: str
    var_class: str

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def size(self) -> int:
        return int(self.array.size)


class Benchmark(abc.ABC):
    """Abstract stepped benchmark."""

    #: Registry key and display name ("dgemm", "hotspot", ...).
    name: str = ""

    #: Dimensionality of the output for spatial-pattern classification
    #: (1, 2 or 3); LavaMD is the only 3-D benchmark in the paper.
    output_dims: int = 2

    #: Number of execution-time windows the paper divides this
    #: benchmark into for Figure 6 (CLAMR 9, DGEMM/HotSpot 5, LUD/NW 4).
    num_windows: int = 5

    #: Whether the output is floating point (enables relative-error
    #: tolerance sweeps; NW is integer-valued).
    float_output: bool = True

    #: Decimal places kept when the output file is written (Rodinia's
    #: printf-style output) — golden comparison happens at this
    #: precision, so perturbations below it are masked.  ``None``
    #: compares exactly (integer outputs).
    output_decimals: int | None = 4

    #: Fraction of the injectable memory image occupied by stack-side
    #: state (control variables, constants, pointers) once per-thread
    #: replication is accounted for — the paper's "each of the 228
    #: threads allocates those nine integers" argument.  Used by the
    #: Flip-script's WEIGHTED site policy.
    stack_share: float = 0.25

    #: Whether this benchmark implements the vectorized batch protocol
    #: (:meth:`step_batch` / :meth:`batch_coherent`).  ``False`` keeps
    #: every run on the scalar :meth:`step` path; the batch runner then
    #: falls back run by run, so correctness never depends on this flag.
    supports_batching: bool = False

    def __init__(self, **params: Any):
        defaults = dict(self.default_params())
        unknown = set(params) - set(defaults)
        if unknown:
            raise TypeError(f"{type(self).__name__} got unknown params: {sorted(unknown)}")
        defaults.update(params)
        self.params: dict[str, Any] = defaults

    # -- required interface -------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def default_params(cls) -> dict[str, Any]:
        """Default (scaled-down) problem parameters."""

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        """Parameters in the size class of the irradiated runs.

        For reference and scaling studies only: a single golden run at
        this size takes seconds to minutes in Python, so campaigns use
        :meth:`default_params`.  FIT bookkeeping is size-independent
        (cross-section x exposure), which is why the scaled-down
        campaigns remain meaningful.
        """
        return cls.default_params()

    @abc.abstractmethod
    def make_state(self, rng: np.random.Generator) -> Any:
        """Allocate inputs and working state for one execution."""

    @abc.abstractmethod
    def num_steps(self, state: Any) -> int:
        """Number of scheduling quanta in one execution of ``state``."""

    @abc.abstractmethod
    def step(self, state: Any, index: int) -> None:
        """Advance the computation by one quantum (may raise on corrupt state)."""

    @abc.abstractmethod
    def output(self, state: Any) -> np.ndarray:
        """Final output array (a copy, shaped with ``output_dims`` axes)."""

    @abc.abstractmethod
    def variables(self, state: Any, step: int) -> list[Variable]:
        """Live injectable variables just before ``step`` executes."""

    # -- shared behaviour ---------------------------------------------------

    def run(self, state: Any) -> np.ndarray:
        """Run ``state`` to completion and return the output."""
        for index in range(self.num_steps(state)):
            self.step(state, index)
        return self.output(state)

    # -- vectorized batch protocol ------------------------------------------

    def batch_coherent(self, state: Any, golden: Any, index: int) -> bool:
        """May ``state`` take step ``index`` on the vectorized batch path?

        ``golden`` is an uncorrupted state at the entry of the same step.
        An implementation returns True only when every value *any
        remaining step's control flow* consumes (loop bounds, cursors,
        dimensions, pointers, indices) matches the golden execution —
        data values are free to differ, that is what the batch computes.
        The contract is one-sided: a False merely routes the run to the
        bit-identical scalar fallback, so implementations must be
        strict, never clever.  The default refuses everything.

        The check runs **once**, at the member's injection step, never
        again: :meth:`step_batch` must not derive control state from
        member data, so a state coherent at injection stays on the
        golden control trajectory for the rest of the run.
        """
        return False

    def step_batch(self, states: Sequence[Any], index: int, carry: Any = None) -> Any:
        """Advance every state in ``states`` by step ``index`` at once.

        All states must have passed :meth:`batch_coherent` against the
        same golden state at this step, so their control flow is the
        shared golden trajectory and only data differs; implementations
        stack the data arrays along a leading batch axis and execute the
        step's arithmetic once.  The post-step *outputs and control
        state* of each member must be bit-identical to what a scalar
        :meth:`step` would have produced; pure scratch buffers that no
        later step reads before overwriting are exempt.  Only called
        when :attr:`supports_batching` is True.

        Returns an opaque *carry*.  A caller stepping the same batch
        repeatedly may pass the previous call's carry back — legal only
        when it came from the same ``states`` (same objects, same
        order) at step ``index - 1`` — and the implementation may then
        keep member data *and evolving control state* inside the carry
        instead of writing every state back each step.  Member states
        may therefore be arbitrarily stale while a carry is live; the
        one obligation is that :meth:`batch_flush` restores full
        bit-exact member states.  Callers must flush before reading
        anything from a member state and must never reuse a carry
        across a membership change.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support batching")

    def batch_flush(self, states: Sequence[Any], carry: Any) -> None:
        """Write state held in ``carry`` back into ``states``.

        After this, every state — data and control alike — is
        bit-identical to what the scalar path would hold (scratch
        exemption aside).  The default is a no-op for implementations
        whose ``step_batch`` writes members back eagerly (returns no
        carry).
        """

    def snapshot(self, state: Any) -> Any:
        """Frozen, bit-exact copy of ``state`` for later :meth:`restore`.

        The default deep-copies via :func:`clone_state`, which covers
        every benchmark in the suite (states are dataclasses of NumPy
        arrays plus ``clone()``-able helpers).  A benchmark whose state
        holds resources that cannot be cloned generically overrides
        this pair.
        """
        return clone_state(state)

    def restore(self, snapshot: Any) -> Any:
        """Fresh mutable state from a :meth:`snapshot`.

        Returns a *new* deep copy every call — the snapshot itself stays
        pristine, so one captured prefix can seed any number of injected
        executions.
        """
        return clone_state(snapshot)

    def golden(self, rng: np.random.Generator) -> np.ndarray:
        """Fault-free reference output for the inputs drawn from ``rng``."""
        return self.run(self.make_state(rng))

    def frames(self, state: Any, step: int) -> list[str]:
        """Distinct frame names alive at ``step`` (the GDB call stack)."""
        seen: list[str] = []
        for var in self.variables(state, step):
            if var.frame not in seen:
                seen.append(var.frame)
        return seen

    def window_of_step(self, step: int, total_steps: int) -> int:
        """Execution-time window (0-based) a step falls into."""
        return window_of_step(step, total_steps, self.num_windows)

    def describe(self) -> dict[str, Any]:
        """Static metadata used by campaign logs and reports."""
        return {
            "name": self.name,
            "output_dims": self.output_dims,
            "num_windows": self.num_windows,
            "float_output": self.float_output,
            "params": dict(self.params),
        }
