"""Benchmark registry.

Maps the paper's benchmark names to their implementations and records
which subsets each experiment uses: the beam campaign covers five
benchmarks (NW "was only tested with our fault injection"), the
injection campaign covers all six, and Figure 6's time-window analysis
omits LavaMD.
"""

from __future__ import annotations

from typing import Any

from repro.benchmarks.base import Benchmark
from repro.benchmarks.clamr import Clamr
from repro.benchmarks.dgemm import Dgemm
from repro.benchmarks.hotspot import HotSpot
from repro.benchmarks.lavamd import LavaMD
from repro.benchmarks.lud import Lud
from repro.benchmarks.nw import NeedlemanWunsch

__all__ = [
    "BEAM_BENCHMARKS",
    "BENCHMARKS",
    "INJECTION_BENCHMARKS",
    "TIME_WINDOW_BENCHMARKS",
    "create",
    "names",
]

BENCHMARKS: dict[str, type[Benchmark]] = {
    cls.name: cls
    for cls in (Clamr, Dgemm, HotSpot, LavaMD, Lud, NeedlemanWunsch)
}

#: Benchmarks irradiated at LANSCE (Figure 2 / Figure 3).
BEAM_BENCHMARKS: tuple[str, ...] = ("clamr", "dgemm", "hotspot", "lavamd", "lud")

#: Benchmarks in the CAROL-FI campaign (Figures 4-6).
INJECTION_BENCHMARKS: tuple[str, ...] = (
    "clamr",
    "dgemm",
    "hotspot",
    "lavamd",
    "lud",
    "nw",
)

#: Benchmarks shown in the time-window PVF plots (Figure 6).
TIME_WINDOW_BENCHMARKS: tuple[str, ...] = ("clamr", "dgemm", "hotspot", "lud", "nw")


def names() -> tuple[str, ...]:
    """All registered benchmark names, sorted."""
    return tuple(sorted(BENCHMARKS))


def create(name: str, **params: Any) -> Benchmark:
    """Instantiate a benchmark by its paper name."""
    try:
        cls = BENCHMARKS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}") from None
    return cls(**params)
