"""Benchmark registry.

Maps the paper's benchmark names to their implementations and records
which subsets each experiment uses: the beam campaign covers five
benchmarks (NW "was only tested with our fault injection"), the
injection campaign covers all six, and Figure 6's time-window analysis
omits LavaMD.
"""

from __future__ import annotations

from typing import Any

from repro.benchmarks.base import Benchmark
from repro.benchmarks.chaos import Chaos
from repro.benchmarks.clamr import Clamr
from repro.benchmarks.dgemm import Dgemm
from repro.benchmarks.hotspot import HotSpot
from repro.benchmarks.lavamd import LavaMD
from repro.benchmarks.lud import Lud
from repro.benchmarks.nw import NeedlemanWunsch

__all__ = [
    "AUX_BENCHMARKS",
    "BEAM_BENCHMARKS",
    "BENCHMARKS",
    "INJECTION_BENCHMARKS",
    "TIME_WINDOW_BENCHMARKS",
    "create",
    "names",
]

BENCHMARKS: dict[str, type[Benchmark]] = {
    cls.name: cls
    for cls in (Clamr, Dgemm, HotSpot, LavaMD, Lud, NeedlemanWunsch)
}

#: Auxiliary benchmarks that are instantiable by name (campaign worker
#: subprocesses create benchmarks by name, so they must be registered)
#: but are *not* part of the paper's study: ``chaos`` exists to validate
#: the isolation sandbox with failure modes that escape the in-process
#: Supervisor (hard exits, guard-free spins, unbounded allocation).
AUX_BENCHMARKS: dict[str, type[Benchmark]] = {Chaos.name: Chaos}

#: Benchmarks irradiated at LANSCE (Figure 2 / Figure 3).
BEAM_BENCHMARKS: tuple[str, ...] = ("clamr", "dgemm", "hotspot", "lavamd", "lud")

#: Benchmarks in the CAROL-FI campaign (Figures 4-6).
INJECTION_BENCHMARKS: tuple[str, ...] = (
    "clamr",
    "dgemm",
    "hotspot",
    "lavamd",
    "lud",
    "nw",
)

#: Benchmarks shown in the time-window PVF plots (Figure 6).
TIME_WINDOW_BENCHMARKS: tuple[str, ...] = ("clamr", "dgemm", "hotspot", "lud", "nw")


def names() -> tuple[str, ...]:
    """All paper benchmark names, sorted (auxiliary benchmarks excluded)."""
    return tuple(sorted(BENCHMARKS))


def create(name: str, **params: Any) -> Benchmark:
    """Instantiate a benchmark (paper or auxiliary) by name."""
    cls = BENCHMARKS.get(name) or AUX_BENCHMARKS.get(name)
    if cls is None:
        known = sorted(BENCHMARKS) + sorted(AUX_BENCHMARKS)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return cls(**params)
