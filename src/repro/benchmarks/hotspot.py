"""HotSpot — iterative thermal simulation of a chip floorplan.

The Rodinia HotSpot kernel: given a power map, iterate the temperature
grid with a five-point stencil coupling to the ambient through the
package resistance.  Memory-bound, low arithmetic intensity, heavy on
control-flow — the paper's highest-DUE benchmark under beam.

Reproduction-relevant structure:

* the stencil plus ambient coupling *attenuates* perturbations, so
  injected errors reach the output strongly damped — this is what makes
  HotSpot's SDC FIT collapse under a small relative-error tolerance
  (Figure 3) and gives the Single model the lowest SDC PVF (Figure 5a);
* physical constants (capacitance, thermal resistances, time step) live
  in a shared constant block; corrupting them scales the whole update;
* grid bounds are read from control memory each iteration, so a
  corrupted dimension walks off the grid (DUE) or shrinks the computed
  region (line/square SDC).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, PointerTable, Variable

_CHUNK_BUDGET = 1 << 19  # scratch bytes per member-chunk (L2-resident)

__all__ = ["HotSpot", "HotSpotState"]

# Physical parameters from the Rodinia hotspot data set (scaled chip).
_T_AMBIENT = 80.0
_T_CHIP = 0.0005  # m
_CHIP_HEIGHT = 0.016  # m
_CHIP_WIDTH = 0.016  # m
_K_SI = 100.0  # W/(m K)
_CAP_FACTOR = 0.5
_MAX_PD = 3.0e6  # W/m^2
_PRECISION = 0.001


@dataclass
class HotSpotState:
    """Live state of one HotSpot execution."""

    temp_init: np.ndarray  # (rows, cols) float32 — file image of temp_64
    power_init: np.ndarray  # (rows, cols) float32 — file image of power_64
    temp: np.ndarray  # (rows, cols) float32 — current temperature
    power: np.ndarray  # (rows, cols) float32 — dissipated power
    temp_next: np.ndarray  # (rows, cols) float32 — scratch buffer
    consts: np.ndarray  # float64 [cap, rx, ry, rz, dt, amb]
    grid_ctl: np.ndarray  # int64 [rows, cols, iter_cursor]
    ptrs: PointerTable  # pointers to the grids


class HotSpot(Benchmark):
    """Iterative five-point thermal stencil (single precision)."""

    name = "hotspot"
    output_dims = 2
    num_windows = 5
    float_output = True
    output_decimals = 4
    supports_batching = True
    # Control-flow heavy stencil driver: constants + per-thread row
    # bounds + grid pointers dominate the paper's harmful faults.
    stack_share = 0.30

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"rows": 64, "cols": 64, "iterations": 120}

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        # The Rodinia 1024x1024 floorplan class.
        return {"rows": 1024, "cols": 1024, "iterations": 1000}

    def __init__(self, **params: Any):
        super().__init__(**params)
        if self.params["rows"] < 3 or self.params["cols"] < 3:
            raise ValueError("grid must be at least 3x3")
        if self.params["iterations"] < 1:
            raise ValueError("iterations must be positive")

    def make_state(self, rng: np.random.Generator) -> HotSpotState:
        rows, cols = self.params["rows"], self.params["cols"]
        # Block-structured power map: a few hot functional units on a
        # cool substrate, like the Rodinia floorplans.
        power = np.zeros((rows, cols), dtype=np.float32)
        for _ in range(6):
            r0 = int(rng.integers(0, rows - rows // 4))
            c0 = int(rng.integers(0, cols - cols // 4))
            density = float(rng.uniform(0.2, 1.0))
            power[r0 : r0 + rows // 4, c0 : c0 + cols // 4] += density
        power *= _MAX_PD / max(float(power.max()), 1e-9)
        temp = np.full((rows, cols), _T_AMBIENT, dtype=np.float32)
        temp += rng.uniform(0.0, 1.0, size=(rows, cols)).astype(np.float32)

        grid_height = _CHIP_HEIGHT / rows
        grid_width = _CHIP_WIDTH / cols
        cap = _CAP_FACTOR * 1.75e6 * _T_CHIP * grid_width * grid_height
        rx = grid_width / (2.0 * _K_SI * _T_CHIP * grid_height)
        ry = grid_height / (2.0 * _K_SI * _T_CHIP * grid_width)
        rz = _T_CHIP / (_K_SI * grid_height * grid_width)
        # Time step at 40% of the explicit-scheme stability limit: the
        # solver advances in far fewer, larger steps than Rodinia's
        # PRECISION-derived dt, which is what gives the grid its strong
        # perturbation damping (the paper's "errors ... are also
        # significantly attenuated").
        dt = 0.4 * cap / (2.0 / rx + 2.0 / ry + 1.0 / rz)
        consts = np.array([cap, rx, ry, rz, dt, _T_AMBIENT], dtype=np.float64)
        # Power is in W/m^2 in the floorplan; convert to W per cell once.
        power *= np.float32(grid_width * grid_height)
        return HotSpotState(
            temp_init=temp,
            power_init=power,
            temp=np.zeros_like(temp),
            power=np.zeros_like(power),
            temp_next=np.zeros_like(temp),
            consts=consts,
            grid_ctl=np.array([rows, cols, 0], dtype=np.int64),
            ptrs=PointerTable({"temp": temp, "power": power}),
        )

    def num_steps(self, state: HotSpotState) -> int:
        return self.params["iterations"]

    def step(self, state: HotSpotState, index: int) -> None:
        if index == 0:
            # Load the predefined data set (HotSpot is the one benchmark
            # with file inputs): the file images stay allocated for the
            # rest of the run, as in the real process, so later faults
            # landing in them are harmless.
            state.temp[...] = state.temp_init
            state.power[...] = state.power_init
        rows, cols = int(state.grid_ctl[0]), int(state.grid_ctl[1])
        if not (3 <= rows <= state.temp.shape[0] and 3 <= cols <= state.temp.shape[1]):
            raise IndexError(f"corrupted grid dimensions ({rows}, {cols})")
        cap, rx, ry, rz, dt, amb = (np.float64(v) for v in state.consts)

        t = state.ptrs.resolve("temp", state.temp)[:rows, :cols]
        p = state.ptrs.resolve("power", state.power)[:rows, :cols]
        out = state.temp_next[:rows, :cols]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            # Interior five-point stencil.
            out[...] = t
            inner = (
                p[1:-1, 1:-1]
                + (t[2:, 1:-1] + t[:-2, 1:-1] - 2.0 * t[1:-1, 1:-1]) / ry
                + (t[1:-1, 2:] + t[1:-1, :-2] - 2.0 * t[1:-1, 1:-1]) / rx
                + (amb - t[1:-1, 1:-1]) / rz
            )
            out[1:-1, 1:-1] = t[1:-1, 1:-1] + (dt / cap) * inner
            # Edges: one-sided conduction (Rodinia's boundary handling).
            for sl_out, sl_in in (
                ((0, slice(1, -1)), (1, slice(1, -1))),
                ((-1, slice(1, -1)), (-2, slice(1, -1))),
                ((slice(1, -1), 0), (slice(1, -1), 1)),
                ((slice(1, -1), -1), (slice(1, -1), -2)),
            ):
                out[sl_out] = t[sl_out] + (dt / cap) * (
                    p[sl_out]
                    + (t[sl_in] - t[sl_out]) / (rx + ry)
                    + (amb - t[sl_out]) / rz
                )
        state.temp[:rows, :cols] = out
        state.grid_ctl[2] = index + 1

    # -- vectorized batch path ----------------------------------------------

    def batch_coherent(self, state: HotSpotState, golden: HotSpotState, index: int) -> bool:
        """Grid geometry and pointers drive control flow; the physical
        constants only scale elementwise arithmetic, so corrupted consts
        stay on the batch path (broadcast per member).  ``grid_ctl[2]``
        is a progress cursor that ``step`` writes but never reads: the
        scalar path overwrites a corruption there on the very next step,
        exactly like :meth:`batch_flush` does, so it stays free too."""
        return np.array_equal(state.ptrs.addresses, golden.ptrs.addresses) and np.array_equal(
            state.grid_ctl[:2], golden.grid_ctl[:2]
        )

    def step_batch(
        self, states: Sequence[HotSpotState], index: int, carry: Any = None
    ) -> Any:
        if index == 0:
            for st in states:
                st.temp[...] = st.temp_init
                st.power[...] = st.power_init
        rows, cols = int(states[0].grid_ctl[0]), int(states[0].grid_ctl[1])
        if carry is None:
            # Stack once per batch lifetime; the temperature window then
            # lives in the carry (``power``/``consts`` are never written
            # by ``step``, so a single stack stays valid).  The scratch
            # buffers below let the interior stencil run entirely
            # through ``out=`` ufuncs — the op-for-op sequence matches
            # the scalar expression tree exactly, so results stay
            # bit-identical while per-step allocations disappear.
            consts = np.stack([st.consts for st in states])  # (B, 6) float64
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                dtcap0 = consts[:, 4][:, None] / consts[:, 0][:, None]
                rxy0 = consts[:, 1][:, None] + consts[:, 2][:, None]
            t0 = np.stack([st.temp[:rows, :cols] for st in states])
            chunk = max(1, _CHUNK_BUDGET // max(1, (rows - 2) * (cols - 2) * 8))
            inner_shape = (min(chunk, t0.shape[0]), rows - 2, cols - 2)
            carry = {
                "cs": tuple(consts[:, i][:, None, None] for i in range(6)),
                "t": t0,
                "p": np.stack([st.power[:rows, :cols] for st in states]),
                "out": np.empty_like(t0),
                "s32": np.empty(inner_shape, dtype=np.float32),
                "t2": np.empty(inner_shape, dtype=np.float32),
                "d64": np.empty(inner_shape, dtype=np.float64),
                "e64": np.empty(inner_shape, dtype=np.float64),
                "chunk": inner_shape[0],
                "step": 0,
                # Edge-pass constants and scratch: the per-step scalar
                # expression recomputes dt/cap and rx+ry from the same
                # constant inputs every iteration, so hoisting them is
                # bit-neutral.
                "dtcap": dtcap0,
                "rxy": rxy0,
                "ef32": np.empty((t0.shape[0], max(rows, cols) - 2), dtype=np.float32),
                "e1": np.empty((t0.shape[0], max(rows, cols) - 2)),
                "e2": np.empty((t0.shape[0], max(rows, cols) - 2)),
            }
            # The window corners are never recomputed (the interior and
            # the four one-sided edges cover everything else), so the
            # scalar per-step ``out[...] = t`` reduces to copying the
            # corners once into both ping-pong buffers.
            for r in (0, rows - 1):
                for c in (0, cols - 1):
                    carry["out"][:, r, c] = t0[:, r, c]
        cap, rx, ry, rz, dt, amb = carry["cs"]
        t = carry["t"]
        p = carry["p"]
        out = carry["out"]
        chunk = carry["chunk"]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            # Scalar tree: tc + (dt / cap) * (p_c + (t_up + t_dn - 2 tc)
            # / ry + (t_rt + t_lf - 2 tc) / rx + (amb - tc) / rz), one
            # ufunc per node, walked in member chunks sized so the
            # scratch set stays cache-resident (same ops on slices, so
            # still bit-identical).
            dtcap = carry["dtcap"][:, :, None]
            for lo in range(0, t.shape[0], chunk):
                sl = slice(lo, lo + chunk)
                size = min(chunk, t.shape[0] - lo)
                s32 = carry["s32"][:size]
                t2 = carry["t2"][:size]
                d64 = carry["d64"][:size]
                e64 = carry["e64"][:size]
                tc = t[sl, 1:-1, 1:-1]
                np.add(t[sl, 2:, 1:-1], t[sl, :-2, 1:-1], out=s32)
                np.multiply(tc, 2.0, out=t2)
                np.subtract(s32, t2, out=s32)
                np.divide(s32, ry[sl], out=d64)
                np.add(p[sl, 1:-1, 1:-1], d64, out=d64)
                np.add(t[sl, 1:-1, 2:], t[sl, 1:-1, :-2], out=s32)
                np.subtract(s32, t2, out=s32)
                np.divide(s32, rx[sl], out=e64)
                np.add(d64, e64, out=d64)
                np.subtract(amb[sl], tc, out=e64)
                np.divide(e64, rz[sl], out=e64)
                np.add(d64, e64, out=d64)
                np.multiply(dtcap[sl], d64, out=d64)
                np.add(tc, d64, out=d64)
                out[sl, 1:-1, 1:-1] = d64
            # One-sided edges, same ``out=`` treatment: the (B, 1)
            # constants broadcast against 2-D edge slices, keeping the
            # member axis leading, and the op order mirrors the scalar
            # expression node for node.
            dtcap2 = carry["dtcap"]
            rxy = carry["rxy"]
            for sl_out, sl_in in (
                ((0, slice(1, -1)), (1, slice(1, -1))),
                ((-1, slice(1, -1)), (-2, slice(1, -1))),
                ((slice(1, -1), 0), (slice(1, -1), 1)),
                ((slice(1, -1), -1), (slice(1, -1), -2)),
            ):
                bo = (slice(None), *sl_out)
                bi = (slice(None), *sl_in)
                edge = t.shape[1 if isinstance(sl_out[0], slice) else 2] - 2
                f32 = carry["ef32"][:, :edge]
                e1 = carry["e1"][:, :edge]
                e2 = carry["e2"][:, :edge]
                np.subtract(t[bi], t[bo], out=f32)
                np.divide(f32, rxy, out=e1)
                np.add(p[bo], e1, out=e1)
                np.subtract(amb[:, :, 0], t[bo], out=e2)
                np.divide(e2, rz[:, :, 0], out=e2)
                np.add(e1, e2, out=e1)
                np.multiply(dtcap2, e1, out=e1)
                np.add(t[bo], e1, out=e1)
                out[bo] = e1
        carry["t"], carry["out"] = out, t  # ping-pong the grid buffers
        carry["step"] = index + 1
        return carry

    def batch_flush(self, states: Sequence[HotSpotState], carry: Any) -> None:
        if carry is None:
            return
        t = carry["t"]
        rows, cols = t.shape[1], t.shape[2]
        for i, st in enumerate(states):
            st.temp_next[:rows, :cols] = t[i]
            st.temp[:rows, :cols] = t[i]
            st.grid_ctl[2] = carry["step"]

    def output(self, state: HotSpotState) -> np.ndarray:
        with np.errstate(invalid="ignore", over="ignore"):
            return state.temp.astype(np.float64)

    def variables(self, state: HotSpotState, step: int) -> list[Variable]:
        return [
            Variable("temp_init", state.temp_init, frame="main", var_class="grid"),
            Variable("power_init", state.power_init, frame="main", var_class="grid"),
            Variable("temp", state.temp, frame="global", var_class="grid"),
            Variable("power", state.power, frame="global", var_class="grid"),
            Variable("temp_next", state.temp_next, frame="kernel", var_class="grid"),
            Variable("consts", state.consts, frame="main", var_class="constant"),
            Variable("grid_ctl", state.grid_ctl, frame="main", var_class="control"),
            Variable("grid_ptrs", state.ptrs.addresses, frame="kernel", var_class="pointer"),
        ]
