"""HotSpot — iterative thermal simulation of a chip floorplan.

The Rodinia HotSpot kernel: given a power map, iterate the temperature
grid with a five-point stencil coupling to the ambient through the
package resistance.  Memory-bound, low arithmetic intensity, heavy on
control-flow — the paper's highest-DUE benchmark under beam.

Reproduction-relevant structure:

* the stencil plus ambient coupling *attenuates* perturbations, so
  injected errors reach the output strongly damped — this is what makes
  HotSpot's SDC FIT collapse under a small relative-error tolerance
  (Figure 3) and gives the Single model the lowest SDC PVF (Figure 5a);
* physical constants (capacitance, thermal resistances, time step) live
  in a shared constant block; corrupting them scales the whole update;
* grid bounds are read from control memory each iteration, so a
  corrupted dimension walks off the grid (DUE) or shrinks the computed
  region (line/square SDC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, PointerTable, Variable

__all__ = ["HotSpot", "HotSpotState"]

# Physical parameters from the Rodinia hotspot data set (scaled chip).
_T_AMBIENT = 80.0
_T_CHIP = 0.0005  # m
_CHIP_HEIGHT = 0.016  # m
_CHIP_WIDTH = 0.016  # m
_K_SI = 100.0  # W/(m K)
_CAP_FACTOR = 0.5
_MAX_PD = 3.0e6  # W/m^2
_PRECISION = 0.001


@dataclass
class HotSpotState:
    """Live state of one HotSpot execution."""

    temp_init: np.ndarray  # (rows, cols) float32 — file image of temp_64
    power_init: np.ndarray  # (rows, cols) float32 — file image of power_64
    temp: np.ndarray  # (rows, cols) float32 — current temperature
    power: np.ndarray  # (rows, cols) float32 — dissipated power
    temp_next: np.ndarray  # (rows, cols) float32 — scratch buffer
    consts: np.ndarray  # float64 [cap, rx, ry, rz, dt, amb]
    grid_ctl: np.ndarray  # int64 [rows, cols, iter_cursor]
    ptrs: PointerTable  # pointers to the grids


class HotSpot(Benchmark):
    """Iterative five-point thermal stencil (single precision)."""

    name = "hotspot"
    output_dims = 2
    num_windows = 5
    float_output = True
    output_decimals = 4
    # Control-flow heavy stencil driver: constants + per-thread row
    # bounds + grid pointers dominate the paper's harmful faults.
    stack_share = 0.30

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"rows": 64, "cols": 64, "iterations": 120}

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        # The Rodinia 1024x1024 floorplan class.
        return {"rows": 1024, "cols": 1024, "iterations": 1000}

    def __init__(self, **params: Any):
        super().__init__(**params)
        if self.params["rows"] < 3 or self.params["cols"] < 3:
            raise ValueError("grid must be at least 3x3")
        if self.params["iterations"] < 1:
            raise ValueError("iterations must be positive")

    def make_state(self, rng: np.random.Generator) -> HotSpotState:
        rows, cols = self.params["rows"], self.params["cols"]
        # Block-structured power map: a few hot functional units on a
        # cool substrate, like the Rodinia floorplans.
        power = np.zeros((rows, cols), dtype=np.float32)
        for _ in range(6):
            r0 = int(rng.integers(0, rows - rows // 4))
            c0 = int(rng.integers(0, cols - cols // 4))
            density = float(rng.uniform(0.2, 1.0))
            power[r0 : r0 + rows // 4, c0 : c0 + cols // 4] += density
        power *= _MAX_PD / max(float(power.max()), 1e-9)
        temp = np.full((rows, cols), _T_AMBIENT, dtype=np.float32)
        temp += rng.uniform(0.0, 1.0, size=(rows, cols)).astype(np.float32)

        grid_height = _CHIP_HEIGHT / rows
        grid_width = _CHIP_WIDTH / cols
        cap = _CAP_FACTOR * 1.75e6 * _T_CHIP * grid_width * grid_height
        rx = grid_width / (2.0 * _K_SI * _T_CHIP * grid_height)
        ry = grid_height / (2.0 * _K_SI * _T_CHIP * grid_width)
        rz = _T_CHIP / (_K_SI * grid_height * grid_width)
        # Time step at 40% of the explicit-scheme stability limit: the
        # solver advances in far fewer, larger steps than Rodinia's
        # PRECISION-derived dt, which is what gives the grid its strong
        # perturbation damping (the paper's "errors ... are also
        # significantly attenuated").
        dt = 0.4 * cap / (2.0 / rx + 2.0 / ry + 1.0 / rz)
        consts = np.array([cap, rx, ry, rz, dt, _T_AMBIENT], dtype=np.float64)
        # Power is in W/m^2 in the floorplan; convert to W per cell once.
        power *= np.float32(grid_width * grid_height)
        return HotSpotState(
            temp_init=temp,
            power_init=power,
            temp=np.zeros_like(temp),
            power=np.zeros_like(power),
            temp_next=np.zeros_like(temp),
            consts=consts,
            grid_ctl=np.array([rows, cols, 0], dtype=np.int64),
            ptrs=PointerTable({"temp": temp, "power": power}),
        )

    def num_steps(self, state: HotSpotState) -> int:
        return self.params["iterations"]

    def step(self, state: HotSpotState, index: int) -> None:
        if index == 0:
            # Load the predefined data set (HotSpot is the one benchmark
            # with file inputs): the file images stay allocated for the
            # rest of the run, as in the real process, so later faults
            # landing in them are harmless.
            state.temp[...] = state.temp_init
            state.power[...] = state.power_init
        rows, cols = int(state.grid_ctl[0]), int(state.grid_ctl[1])
        if not (3 <= rows <= state.temp.shape[0] and 3 <= cols <= state.temp.shape[1]):
            raise IndexError(f"corrupted grid dimensions ({rows}, {cols})")
        cap, rx, ry, rz, dt, amb = (np.float64(v) for v in state.consts)

        t = state.ptrs.resolve("temp", state.temp)[:rows, :cols]
        p = state.ptrs.resolve("power", state.power)[:rows, :cols]
        out = state.temp_next[:rows, :cols]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            # Interior five-point stencil.
            out[...] = t
            inner = (
                p[1:-1, 1:-1]
                + (t[2:, 1:-1] + t[:-2, 1:-1] - 2.0 * t[1:-1, 1:-1]) / ry
                + (t[1:-1, 2:] + t[1:-1, :-2] - 2.0 * t[1:-1, 1:-1]) / rx
                + (amb - t[1:-1, 1:-1]) / rz
            )
            out[1:-1, 1:-1] = t[1:-1, 1:-1] + (dt / cap) * inner
            # Edges: one-sided conduction (Rodinia's boundary handling).
            for sl_out, sl_in in (
                ((0, slice(1, -1)), (1, slice(1, -1))),
                ((-1, slice(1, -1)), (-2, slice(1, -1))),
                ((slice(1, -1), 0), (slice(1, -1), 1)),
                ((slice(1, -1), -1), (slice(1, -1), -2)),
            ):
                out[sl_out] = t[sl_out] + (dt / cap) * (
                    p[sl_out]
                    + (t[sl_in] - t[sl_out]) / (rx + ry)
                    + (amb - t[sl_out]) / rz
                )
        state.temp[:rows, :cols] = out
        state.grid_ctl[2] = index + 1

    def output(self, state: HotSpotState) -> np.ndarray:
        with np.errstate(invalid="ignore", over="ignore"):
            return state.temp.astype(np.float64)

    def variables(self, state: HotSpotState, step: int) -> list[Variable]:
        return [
            Variable("temp_init", state.temp_init, frame="main", var_class="grid"),
            Variable("power_init", state.power_init, frame="main", var_class="grid"),
            Variable("temp", state.temp, frame="global", var_class="grid"),
            Variable("power", state.power, frame="global", var_class="grid"),
            Variable("temp_next", state.temp_next, frame="kernel", var_class="grid"),
            Variable("consts", state.consts, frame="main", var_class="constant"),
            Variable("grid_ctl", state.grid_ctl, frame="main", var_class="control"),
            Variable("grid_ptrs", state.ptrs.addresses, frame="kernel", var_class="pointer"),
        ]
