"""DGEMM — blocked dense matrix multiplication (paper Section 3.2).

An optimised C = A @ B where the row space is partitioned over virtual
hardware threads, each owning its private copy of the loop-control
integers (the paper highlights that the 228 concurrent Xeon Phi threads
each replicate nine loop-control variables, making control state a
significant injection target).  Each scheduling step executes one
thread's tile: an initialisation prologue copies the source operands
into the compute buffers, then each compute step runs a k-blocked
accumulation loop whose bounds and stride are read from corruptible
control memory.

Structure that matters for reproduction:

* corrupted thread row bounds compute the wrong tile (line/square SDC)
  or index out of bounds (DUE-crash);
* a corrupted k-stride of zero hangs the inner loop (DUE-timeout);
* the per-tile accumulator models the "intermediate values ... kept in
  local temporary memory" the paper blames for DGEMM's square error
  patterns.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import (
    Benchmark,
    BenchmarkHang,
    PointerTable,
    Variable,
)

__all__ = ["Dgemm", "DgemmState"]

#: Number of loop-control integers each virtual thread replicates
#: (start row, end row, k begin, k end, k stride, column count, row
#: cursor, column cursor, accumulator cursor) — nine, as in the paper.
CONTROLS_PER_THREAD = 9


@dataclass
class DgemmState:
    """Live state of one DGEMM execution."""

    a_src: np.ndarray
    b_src: np.ndarray
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    acc: np.ndarray
    thread_ctl: np.ndarray  # (n_threads, CONTROLS_PER_THREAD) int64
    dims: np.ndarray  # [n, k, m] int64 — shared problem dimensions
    init_cursor: np.ndarray  # 0-d int64 — rows initialised so far
    ptrs: PointerTable  # pointers to the operand arrays


class Dgemm(Benchmark):
    """Blocked double-precision matrix multiplication."""

    name = "dgemm"
    output_dims = 2
    num_windows = 5
    float_output = True
    output_decimals = 4
    supports_batching = True
    # 228 threads x 9 replicated loop controls plus per-thread operand
    # pointers: a large effective stack image (paper Section 6, DGEMM).
    stack_share = 0.45

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"n": 60, "n_threads": 20, "k_block": 16, "col_block": 3, "init_steps": 2}

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        # One row slab per hardware thread of the 3120A (228 x 10 rows).
        return {"n": 2280, "n_threads": 228, "k_block": 64, "col_block": 8, "init_steps": 4}

    def __init__(self, **params: Any):
        super().__init__(**params)
        n = self.params["n"]
        n_threads = self.params["n_threads"]
        if n % n_threads != 0:
            raise ValueError("n must be divisible by n_threads")
        if self.params["k_block"] <= 0:
            raise ValueError("k_block must be positive")
        if n % self.params["col_block"] != 0:
            raise ValueError("n must be divisible by col_block")
        if self.params["init_steps"] <= 0:
            raise ValueError("init_steps must be positive")

    # -- state --------------------------------------------------------------

    def make_state(self, rng: np.random.Generator) -> DgemmState:
        n = self.params["n"]
        n_threads = self.params["n_threads"]
        rows_per_thread = n // n_threads
        a_src = rng.standard_normal((n, n))
        b_src = rng.standard_normal((n, n))
        ctl = np.zeros((n_threads, CONTROLS_PER_THREAD), dtype=np.int64)
        for t in range(n_threads):
            ctl[t, 0] = t * rows_per_thread  # start row
            ctl[t, 1] = (t + 1) * rows_per_thread  # end row
            ctl[t, 2] = 0  # k begin
            ctl[t, 3] = n  # k end
            ctl[t, 4] = self.params["k_block"]  # k stride
            ctl[t, 5] = n  # column count
            ctl[t, 6] = 0  # column cursor
            ctl[t, 7] = self.params["col_block"]  # columns per pass
            ctl[t, 8] = 0  # scratch cursor
        a = np.zeros((n, n))
        b = np.zeros((n, n))
        return DgemmState(
            a_src=a_src,
            b_src=b_src,
            a=a,
            b=b,
            c=np.zeros((n, n)),
            acc=np.zeros((rows_per_thread, n)),
            thread_ctl=ctl,
            dims=np.array([n, n, n], dtype=np.int64),
            init_cursor=np.array(0, dtype=np.int64),
            ptrs=PointerTable({"a": a, "b": b}),
        )

    def num_steps(self, state: DgemmState) -> int:
        return self.params["init_steps"] + self.params["n"] // self.params["col_block"]

    # -- execution ----------------------------------------------------------

    def step(self, state: DgemmState, index: int) -> None:
        init_steps = self.params["init_steps"]
        if index < init_steps:
            self._init_step(state, index)
        else:
            self._compute_step(state, index - init_steps)

    def _init_step(self, state: DgemmState, index: int) -> None:
        """Copy a stripe of the source operands into the compute buffers."""
        n = state.a.shape[0]
        init_steps = self.params["init_steps"]
        lo = index * n // init_steps
        hi = (index + 1) * n // init_steps
        cursor = int(state.init_cursor[()])
        # Real initialisation code walks a cursor; a corrupted cursor
        # re-copies or skips stripes, leaving stale zeros behind.
        lo = max(min(lo, cursor), 0)
        state.a[lo:hi] = state.a_src[lo:hi]
        state.b[lo:hi] = state.b_src[lo:hi]
        state.init_cursor[...] = hi

    def _compute_step(self, state: DgemmState, pass_index: int) -> None:
        """One column pass: every thread advances its column cursor.

        The per-thread loop controls are re-read on *every* pass (like
        an OpenMP worker re-reading its bounds each chunk), so a
        corrupted control is consumed no matter when it is injected —
        the paper's finding that DGEMM's replicated loop controls are a
        high-severity target depends on exactly this liveness.
        """
        n_threads = state.thread_ctl.shape[0]
        n, kdim, _m = (int(v) for v in state.dims)
        if not (0 < n <= state.c.shape[0] and 0 < kdim <= state.b.shape[0]):
            raise IndexError(f"corrupted problem dimensions {state.dims.tolist()}")
        a_mat = state.ptrs.resolve("a", state.a)
        b_mat = state.ptrs.resolve("b", state.b)

        for thread in range(n_threads):
            ctl = state.thread_ctl[thread]
            start, end = int(ctl[0]), int(ctl[1])
            k_begin, k_end, k_step = int(ctl[2]), int(ctl[3]), int(ctl[4])
            ncols = int(ctl[5])
            col_lo, col_width = int(ctl[6]), int(ctl[7])
            if end <= start or col_width <= 0:
                continue  # corrupted empty tile: computes nothing (SDC)
            # Validate the tile span before materialising it: a bound
            # implying a massive tile would store past the accumulator
            # within a page (segfault), never allocate terabytes.
            if end - start > state.acc.shape[0]:
                raise IndexError(f"tile [{start}, {end}) overflows accumulator")
            if not 0 < ncols <= state.c.shape[1]:
                raise IndexError(f"column count {ncols} out of bounds")
            if not (0 <= k_begin and k_end <= kdim):
                raise IndexError(f"k range [{k_begin}, {k_end}) out of bounds")
            col_hi = min(col_lo + col_width, ncols)
            if col_lo < 0 or col_lo > ncols:
                raise IndexError(f"column cursor {col_lo} out of bounds")
            if col_hi <= col_lo:
                continue  # this thread already finished its columns

            rows = np.arange(start, end)
            cols = np.arange(col_lo, col_hi)
            with np.errstate(invalid="ignore", over="ignore"):
                a_rows = a_mat.take(rows, axis=0, mode="raise")
            acc = state.acc[: rows.size, : cols.size]
            acc[...] = 0.0
            kb = k_begin
            guard = 0
            with np.errstate(invalid="ignore", over="ignore"):
                while kb < k_end:
                    if k_step <= 0:
                        raise BenchmarkHang("k stride corrupted to non-positive value")
                    guard += 1
                    if guard > state.b.shape[0] + 2:
                        raise BenchmarkHang("k loop exceeded iteration budget")
                    hi = min(kb + k_step, k_end)
                    acc += a_rows[:, kb:hi] @ b_mat[kb:hi, col_lo:col_hi]
                    kb = hi
            # Scatter the tile back through checked fancy indexing:
            # corrupted row ids fault like a store to an unmapped page.
            state.c[rows[:, None], cols[None, :]] = acc
            ctl[6] = col_hi

    # -- vectorized batch path ----------------------------------------------

    def batch_coherent(self, state: DgemmState, golden: DgemmState, index: int) -> bool:
        """Control flow matches golden: dims, cursors, controls, pointers.

        ``init_cursor`` is only consulted by the init steps; once the
        compute phase starts it is dead state — the scalar path leaves a
        corruption there sitting inert forever — so it only gates the
        batch during the init phase.  Two more positions are dead at
        *every* step and stay free: ``dims[2]`` (the m extent — unpacked
        and discarded by ``_compute_step``) and ``thread_ctl[:, 8]``
        (the scratch cursor — written at construction, read by nothing),
        so a corruption there never reaches control flow on either
        path."""
        if index < self.params["init_steps"] and not np.array_equal(
            state.init_cursor, golden.init_cursor
        ):
            return False
        return (
            np.array_equal(state.ptrs.addresses, golden.ptrs.addresses)
            and np.array_equal(state.dims[:2], golden.dims[:2])
            and np.array_equal(state.thread_ctl[:, :8], golden.thread_ctl[:, :8])
        )

    def step_batch(
        self, states: Sequence[DgemmState], index: int, carry: Any = None
    ) -> Any:
        init_steps = self.params["init_steps"]
        if index < init_steps:
            # Initialisation is pure data movement with member-local
            # sources; the scalar step is already one memcpy per member.
            # It rewrites the operands, so no carry crosses this phase.
            for st in states:
                self._init_step(st, index)
            return None
        # Controls are golden-coherent across the batch (checked by the
        # caller), so one member's controls drive everyone's tile walk;
        # only the operand data differs and is stacked.  Compute steps
        # never write a/b, so the stacks live in the carry; c and the
        # walking column cursors accumulate there too and flush on
        # demand.
        if carry is None:
            ctl = states[0].thread_ctl.copy()
            nt = ctl.shape[0]
            rpt = int(ctl[0, 1] - ctl[0, 0])
            n = states[0].a.shape[0]
            # Golden thread controls normally keep their construction
            # shape: contiguous equal row slabs walking their column
            # cursors in lockstep.  Then the whole 20-way thread loop
            # collapses to one broadcast matmul over a (B, threads,
            # rows_per_thread, n) view — identical (rpt, k) @ (k, cols)
            # cores, so still bit-identical per member.  Any other
            # (still coherent) structure takes the per-thread loop.
            uniform = (
                rpt > 0
                and nt * rpt == n
                and bool(np.all(ctl[:, 0] == np.arange(nt, dtype=np.int64) * rpt))
                and bool(np.all(ctl[:, 1] == ctl[:, 0] + rpt))
                and bool(np.all(ctl[:, 2:] == ctl[0, 2:]))
            )
            carry = {
                "a": np.stack([st.a for st in states]),
                "b": np.stack([st.b for st in states]),
                "c": np.stack([st.c for st in states]),
                "ctl": ctl,
                "uniform": uniform,
                "rpt": rpt,
            }
        ctl_all = carry["ctl"]
        a_stack = carry["a"]
        b_stack = carry["b"]
        c_stack = carry["c"]
        if carry["uniform"]:
            self._uniform_pass(ctl_all, a_stack, b_stack, c_stack, carry["rpt"])
            return carry
        for thread in range(ctl_all.shape[0]):
            ctl = ctl_all[thread]
            start, end = int(ctl[0]), int(ctl[1])
            k_begin, k_end, k_step = int(ctl[2]), int(ctl[3]), int(ctl[4])
            ncols = int(ctl[5])
            col_lo, col_width = int(ctl[6]), int(ctl[7])
            if end <= start or col_width <= 0:
                continue
            col_hi = min(col_lo + col_width, ncols)
            if col_hi <= col_lo:
                continue
            acc = np.zeros((len(states), end - start, col_hi - col_lo))
            kb = k_begin
            with np.errstate(invalid="ignore", over="ignore"):
                while kb < k_end:
                    hi = min(kb + k_step, k_end)
                    acc += a_stack[:, start:end, kb:hi] @ b_stack[:, kb:hi, col_lo:col_hi]
                    kb = hi
            c_stack[:, start:end, col_lo:col_hi] = acc
            ctl[6] = col_hi
        return carry

    def _uniform_pass(
        self,
        ctl_all: np.ndarray,
        a_stack: np.ndarray,
        b_stack: np.ndarray,
        c_stack: np.ndarray,
        rpt: int,
    ) -> None:
        """One column pass with all threads folded into a batch axis."""
        ctl = ctl_all[0]
        k_begin, k_end, k_step = int(ctl[2]), int(ctl[3]), int(ctl[4])
        ncols = int(ctl[5])
        col_lo, col_width = int(ctl[6]), int(ctl[7])
        col_hi = min(col_lo + col_width, ncols)
        if col_hi <= col_lo:
            return
        nb, n = a_stack.shape[0], a_stack.shape[1]
        a4 = a_stack.reshape(nb, n // rpt, rpt, a_stack.shape[2])
        acc = np.zeros((nb, n // rpt, rpt, col_hi - col_lo))
        kb = k_begin
        with np.errstate(invalid="ignore", over="ignore"):
            while kb < k_end:
                hi = min(kb + k_step, k_end)
                acc += a4[:, :, :, kb:hi] @ b_stack[:, None, kb:hi, col_lo:col_hi]
                kb = hi
        c_stack.reshape(nb, n // rpt, rpt, c_stack.shape[2])[:, :, :, col_lo:col_hi] = acc
        ctl_all[:, 6] = col_hi

    def batch_flush(self, states: Sequence[DgemmState], carry: Any) -> None:
        if carry is None:
            return
        c_stack = carry["c"]
        cursors = carry["ctl"][:, 6]
        for i, st in enumerate(states):
            st.c[...] = c_stack[i]
            st.thread_ctl[:, 6] = cursors

    def output(self, state: DgemmState) -> np.ndarray:
        return state.c.copy()

    # -- injection surface --------------------------------------------------

    def variables(self, state: DgemmState, step: int) -> list[Variable]:
        init_steps = self.params["init_steps"]
        variables = [
            Variable("a_src", state.a_src, frame="main", var_class="matrix"),
            Variable("b_src", state.b_src, frame="main", var_class="matrix"),
            Variable("a", state.a, frame="global", var_class="matrix"),
            Variable("b", state.b, frame="global", var_class="matrix"),
            Variable("c", state.c, frame="global", var_class="matrix"),
            Variable("dims", state.dims, frame="global", var_class="control"),
            Variable("init_cursor", state.init_cursor, frame="main", var_class="control"),
        ]
        if step >= init_steps:
            # The kernel frame (per-thread loop controls and the tile
            # accumulator) only exists once compute threads are running.
            variables.extend(
                [
                    Variable(
                        "thread_ctl", state.thread_ctl, frame="kernel", var_class="control"
                    ),
                    Variable("acc", state.acc, frame="kernel", var_class="matrix"),
                    Variable(
                        "operand_ptrs",
                        state.ptrs.addresses,
                        frame="kernel",
                        var_class="pointer",
                    ),
                ]
            )
        return variables
