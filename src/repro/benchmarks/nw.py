"""NW — Needleman-Wunsch global sequence alignment (Rodinia).

Dynamic programming over an integer score matrix: each cell is the
maximum of the diagonal neighbour plus a substitution score and the
left/top neighbours minus a gap penalty.  The only integer benchmark in
the suite, which drives its distinctive fault-model profile (Figure 5):
zeros are everywhere in the yet-unfilled matrix and among the small DP
values, so the Zero model is almost entirely masked, while Random and
Double produce values so far from the expected range that they tend to
crash downstream rather than silently corrupt.

Rows are filled in blocks; the row recurrence ``F[i,j] = max(D[j],
F[i,j-1] - p)`` is evaluated with a running-maximum transform so each
row is one vectorised scan.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, PointerTable, Variable, bounded_range, checked_index

__all__ = ["NeedlemanWunsch", "NwState"]

_ALPHABET = 20  # amino-acid alphabet, BLOSUM-style substitution table


@dataclass
class NwState:
    """Live state of one NW execution."""

    seq1: np.ndarray  # (n,) int32 — query sequence (row labels)
    seq2: np.ndarray  # (n,) int32 — database sequence (column labels)
    blosum: np.ndarray  # (ALPHABET, ALPHABET) int32 — substitution scores
    score: np.ndarray  # (n + 1, n + 1) int32 — DP matrix (input & output)
    dp_ctl: np.ndarray  # int64 [n, penalty, row_cursor]
    ptrs: PointerTable  # pointers to the DP inputs


class NeedlemanWunsch(Benchmark):
    """Integer dynamic-programming sequence alignment."""

    name = "nw"
    output_dims = 2
    num_windows = 4
    float_output = False
    output_decimals = None  # integer output compares exactly
    supports_batching = True
    stack_share = 0.25

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"n": 64, "rows_per_step": 4, "penalty": 10}

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        return {"n": 2048, "rows_per_step": 64, "penalty": 10}

    def __init__(self, **params: Any):
        super().__init__(**params)
        n, rps = self.params["n"], self.params["rows_per_step"]
        if n % rps != 0:
            raise ValueError("n must be divisible by rows_per_step")
        if self.params["penalty"] <= 0:
            raise ValueError("penalty must be positive")

    def make_state(self, rng: np.random.Generator) -> NwState:
        n = self.params["n"]
        penalty = self.params["penalty"]
        seq1 = rng.integers(0, _ALPHABET, size=n, dtype=np.int32)
        seq2 = rng.integers(0, _ALPHABET, size=n, dtype=np.int32)
        # Symmetric BLOSUM-like table: mostly small negatives, positive
        # diagonal; many zero entries (relevant for the Zero model).
        raw = rng.integers(-4, 5, size=(_ALPHABET, _ALPHABET), dtype=np.int32)
        blosum = ((raw + raw.T) // 2).astype(np.int32)
        np.fill_diagonal(blosum, rng.integers(4, 10, size=_ALPHABET, dtype=np.int32))
        score = np.zeros((n + 1, n + 1), dtype=np.int32)
        score[0, :] = -penalty * np.arange(n + 1, dtype=np.int32)
        score[:, 0] = -penalty * np.arange(n + 1, dtype=np.int32)
        return NwState(
            seq1=seq1,
            seq2=seq2,
            blosum=blosum,
            score=score,
            dp_ctl=np.array([n, penalty, 1], dtype=np.int64),
            ptrs=PointerTable({"blosum": blosum, "score": score}),
        )

    def num_steps(self, state: NwState) -> int:
        return self.params["n"] // self.params["rows_per_step"]

    def step(self, state: NwState, index: int) -> None:
        n, penalty, cursor = (int(v) for v in state.dp_ctl)
        if not 0 < n <= state.score.shape[0] - 1:
            raise IndexError(f"corrupted problem size {n}")
        if penalty <= 0 or penalty > 2**16:
            raise IndexError(f"corrupted gap penalty {penalty}")
        rps = self.params["rows_per_step"]
        row_lo = index * rps + 1
        # Real code resumes from its cursor; a corrupted cursor recomputes
        # or skips rows (skipped rows keep their zero initialisation).
        row_lo = max(row_lo, min(cursor, n + 1))
        row_hi = min((index + 1) * rps + 1, n + 1)
        blosum = state.ptrs.resolve("blosum", state.blosum)
        score = state.ptrs.resolve("score", state.score)
        cols = np.arange(1, n + 1)
        jp = penalty * cols.astype(np.int64)
        for i in bounded_range(row_lo, row_hi):
            a = checked_index(int(state.seq1[i - 1]), _ALPHABET, "residue")
            sub = blosum[a].take(state.seq2[:n], mode="raise")
            diag = score[i - 1, :n].astype(np.int64) + sub
            up = score[i - 1, 1 : n + 1].astype(np.int64) - penalty
            d = np.maximum(diag, up)
            # F[i, j] = max_{k <= j} (D[k] - (j - k) * penalty), computed
            # as a running maximum of G[k] = D[k] + k * penalty.
            g = d + jp
            left0 = int(score[i, 0])  # boundary candidate G[0] = F[i,0] + 0*p
            running = np.maximum.accumulate(np.maximum(g, np.int64(left0)))
            score[i, 1 : n + 1] = (running - jp).astype(np.int32)
        state.dp_ctl[2] = row_hi

    # -- vectorized batch path ----------------------------------------------

    def batch_coherent(self, state: NwState, golden: NwState, index: int) -> bool:
        """Besides control state, the sequences must stay in-alphabet:
        the scalar path bounds-checks every residue (``checked_index``,
        ``take(mode="raise")``), so an out-of-range residue is
        data-dependent control flow and must take the scalar fallback.
        Only ``seq1``'s *live* region matters, though: row ``i`` reads
        ``seq1[i - 1]`` and rows below ``index * rows_per_step + 1``
        are never revisited (``step`` never writes either sequence), so
        a residue corrupted in that dead prefix is dead state — the
        scalar path tolerates it and the batch path may too
        (``step_batch`` clips it before the hoisted gather).  ``seq2``
        is read in full every row and stays fully checked.  Still
        stricter than scalar (negative residues that would wrap are
        also refused) — strictness only costs a fallback."""
        live = index * self.params["rows_per_step"]
        return (
            np.array_equal(state.ptrs.addresses, golden.ptrs.addresses)
            and np.array_equal(state.dp_ctl, golden.dp_ctl)
            and bool(np.all((state.seq1[live:] >= 0) & (state.seq1[live:] < _ALPHABET)))
            and bool(np.all((state.seq2 >= 0) & (state.seq2 < _ALPHABET)))
        )

    def step_batch(
        self, states: Sequence[NwState], index: int, carry: Any = None
    ) -> Any:
        if carry is None:
            # ``step`` writes only the score matrix and the row cursor;
            # the sequences and substitution table never change, so the
            # per-row substitution gather — the expensive advanced index
            # — hoists to one (B, n, n) lookup per batch lifetime, and
            # the cursor walks inside the carry.
            n0 = [int(v) for v in states[0].dp_ctl][0]
            blosum = np.stack([st.blosum for st in states])
            # Dead-prefix residues (rows already filled before any
            # member joined) may be out of alphabet — ``batch_coherent``
            # only vouches for the live region.  Clip so the gather
            # cannot raise; clipped rows sit below every member's join
            # step, so their substitution rows are never read.
            seq1 = np.clip(np.stack([st.seq1 for st in states]), 0, _ALPHABET - 1)
            seq2 = np.stack([st.seq2 for st in states])
            bi = np.arange(len(states))
            carry = {
                "score": np.stack([st.score for st in states]),
                "sub": blosum[
                    bi[:, None, None], seq1[:, :, None], seq2[:, None, :n0]
                ],
                "ctl": [int(v) for v in states[0].dp_ctl],
            }
        n, penalty, cursor = carry["ctl"]
        rps = self.params["rows_per_step"]
        row_lo = max(index * rps + 1, min(cursor, n + 1))
        row_hi = min((index + 1) * rps + 1, n + 1)
        score = carry["score"]
        sub_all = carry["sub"]
        cols = np.arange(1, n + 1)
        jp = penalty * cols.astype(np.int64)
        for i in range(row_lo, row_hi):
            sub = sub_all[:, i - 1]
            diag = score[:, i - 1, :n].astype(np.int64) + sub
            up = score[:, i - 1, 1 : n + 1].astype(np.int64) - penalty
            g = np.maximum(diag, up) + jp
            left0 = score[:, i, 0].astype(np.int64)
            running = np.maximum.accumulate(np.maximum(g, left0[:, None]), axis=1)
            score[:, i, 1 : n + 1] = (running - jp).astype(np.int32)
        carry["ctl"][2] = row_hi
        return carry

    def batch_flush(self, states: Sequence[NwState], carry: Any) -> None:
        if carry is None:
            return
        score = carry["score"]
        for i, st in enumerate(states):
            st.score[...] = score[i]
            st.dp_ctl[2] = carry["ctl"][2]

    def output(self, state: NwState) -> np.ndarray:
        return state.score.copy()

    def variables(self, state: NwState, step: int) -> list[Variable]:
        return [
            Variable("seq1", state.seq1, frame="main", var_class="input"),
            Variable("seq2", state.seq2, frame="main", var_class="input"),
            Variable("blosum", state.blosum, frame="main", var_class="reference"),
            Variable("score", state.score, frame="global", var_class="matrix"),
            Variable("dp_ctl", state.dp_ctl, frame="kernel", var_class="control"),
            Variable("dp_ptrs", state.ptrs.addresses, frame="kernel", var_class="pointer"),
        ]
