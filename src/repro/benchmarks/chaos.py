"""Chaos — a sandbox-validation benchmark with escapable failure modes.

Every real benchmark in the suite converts corrupted state into tidy
Python exceptions (``IndexError``, :class:`BenchmarkHang`, ...) that the
in-process Supervisor can classify.  The isolation layer exists for the
faults that *escape* that net: a runaway loop the guards miss, an
unbounded allocation, a hard ``exit()``/``abort()`` out of a C
extension.  FINJ and ZOFI validate their subprocess supervision with
dedicated misbehaving fault programs; ``chaos`` is ours.

The benchmark itself is a trivial vectorised recurrence.  Its state
carries a ``trigger`` control word (initially zero) that every step
consults; when an injection corrupts the trigger to a non-zero value the
step misbehaves according to the ``failure`` parameter:

* ``none``    — no misbehaviour (the *benign twin*: bit-identical
  records for every run whose trigger stays zero, and an ordinary
  masked/SDC outcome for runs that hit the trigger);
* ``exit``    — ``os._exit(86)``: an uncatchable process death;
* ``abort``   — ``os.abort()``: dies with ``SIGABRT``;
* ``spin``    — a guard-free busy loop (``spin_s`` seconds), invisible
  to the cooperative watchdog because it never re-enters a guard;
* ``alloc``   — allocates and touches memory until ``alloc_cap_mb``,
  then raises ``MemoryError`` (the RSS-ceiling test vector);
* ``oserror`` — raises ``OSError``, which is *not* in the Supervisor's
  crash net and therefore kills the campaign worker (the
  shard-killer-exception test vector).

``chaos`` is registered so worker subprocesses can instantiate it by
name, but it is not part of any paper benchmark set.
"""

from __future__ import annotations

import faulthandler
import os
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, Variable

__all__ = ["Chaos", "ChaosState"]

#: Allocation chunk for the ``alloc`` failure mode (bytes are touched so
#: the pages land in the resident set, not just the address space).
_ALLOC_CHUNK_MB = 16

_FAILURES = ("none", "exit", "abort", "spin", "alloc", "oserror")


@dataclass
class ChaosState:
    """Live state of one chaos execution."""

    data: np.ndarray  # (n,) float64 — input signal
    acc: np.ndarray  # (n,) float64 — running recurrence (the output)
    trigger: np.ndarray  # int64 [armed] — misbehaviour trigger word
    hoard: list = field(default_factory=list)  # alloc-mode ballast


class Chaos(Benchmark):
    """Trivial recurrence that misbehaves when its trigger is corrupted."""

    name = "chaos"
    output_dims = 1
    num_windows = 4
    float_output = True
    output_decimals = 4
    stack_share = 0.25

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {
            "n": 256,
            "steps": 8,
            "failure": "none",
            "spin_s": 30.0,
            "alloc_cap_mb": 512,
        }

    def __init__(self, **params: Any):
        super().__init__(**params)
        if self.params["failure"] not in _FAILURES:
            raise ValueError(f"unknown failure mode {self.params['failure']!r}; known: {_FAILURES}")
        if self.params["n"] < 1 or self.params["steps"] < 1:
            raise ValueError("n and steps must be positive")

    def make_state(self, rng: np.random.Generator) -> ChaosState:
        n = self.params["n"]
        return ChaosState(
            data=rng.standard_normal(n),
            acc=np.zeros(n, dtype=np.float64),
            trigger=np.zeros(1, dtype=np.int64),
        )

    def num_steps(self, state: ChaosState) -> int:
        return int(self.params["steps"])

    def step(self, state: ChaosState, index: int) -> None:
        if int(state.trigger[0]) != 0:
            self._misbehave(state)
        # Damped recurrence: every step reads data and rewrites acc, so
        # corrupted elements propagate but stay bounded.  Injected values
        # can legitimately overflow; that is signal, not an error.
        with np.errstate(over="ignore", invalid="ignore"):
            state.acc *= 0.5
            state.acc += np.cos(state.data * (index + 1))

    def output(self, state: ChaosState) -> np.ndarray:
        return state.acc.copy()

    def variables(self, state: ChaosState, step: int) -> list[Variable]:
        return [
            Variable("data", state.data, frame="main", var_class="input"),
            Variable("acc", state.acc, frame="kernel", var_class="matrix"),
            Variable("trigger", state.trigger, frame="kernel", var_class="control"),
        ]

    def _misbehave(self, state: ChaosState) -> None:
        failure = self.params["failure"]
        if failure == "none":
            return
        if failure == "exit":
            os._exit(86)
        if failure == "abort":
            # The SIGABRT is the point; keep faulthandler (enabled by
            # pytest) from spraying the parent's stderr with a verbose
            # dump for this *intentional* death.
            faulthandler.disable()
            os.abort()
        if failure == "spin":
            # No bounded_range, no deadline_checkpoint: only an external
            # wall-clock kill can stop this loop.
            end = time.monotonic() + float(self.params["spin_s"])
            while time.monotonic() < end:
                pass
            return
        if failure == "alloc":
            cap = int(self.params["alloc_cap_mb"]) * (1 << 20)
            chunk = _ALLOC_CHUNK_MB << 20
            while sum(b.nbytes for b in state.hoard) < cap:
                state.hoard.append(np.ones(chunk // 8, dtype=np.float64))
                time.sleep(0.005)  # give an RSS monitor a chance to observe
            raise MemoryError("chaos: allocation cap reached with no RSS ceiling")
        if failure == "oserror":
            raise OSError("chaos: failure outside the Supervisor's crash net")
        raise AssertionError(f"unreachable failure mode {failure!r}")
