"""Shallow-water finite-volume step for CLAMR.

First-order Rusanov (local Lax-Friedrichs) fluxes over the four faces
of each cell, with reflective domain boundaries.  The CFL time step is
recomputed every timestep from the live state and validated the way
the mini-app validates it: a non-finite or non-positive ``dt`` aborts
the simulation, which is the main path by which corrupted mesh state
turns into a DUE rather than an SDC.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import SimulationAborted
from repro.benchmarks.clamr.kdtree import KdTree
from repro.benchmarks.clamr.mesh import AmrMesh

__all__ = ["cfl_dt", "find_face_neighbors", "flux_update"]

#: Outward unit normals of the four faces: left, right, bottom, top.
_NORMALS = ((-1.0, 0.0), (1.0, 0.0), (0.0, -1.0), (0.0, 1.0))


def find_face_neighbors(mesh: AmrMesh, tree: KdTree) -> np.ndarray:
    """(4, ncells) face-neighbour cell indices; -1 marks a domain boundary.

    Each face's neighbour is the cell whose centre is nearest a sample
    point just beyond the face midpoint (the K-D tree query CLAMR's
    neighbour finding performs).
    """
    n = mesh.live()
    x, y = mesh.x[:n], mesh.y[:n]
    half = mesh.cell_size(mesh.lev[:n]) / 2.0
    eps = mesh.finest_size / 4.0
    nbrs = np.full((4, n), -1, dtype=np.int64)
    for face, (nx, ny) in enumerate(_NORMALS):
        qx = x + (half + eps) * nx
        qy = y + (half + eps) * ny
        inside = (qx > 0.0) & (qx < 1.0) & (qy > 0.0) & (qy < 1.0)
        idx = np.flatnonzero(inside)
        if idx.size:
            nbrs[face, idx] = tree.query_nearest(x, y, qx[idx], qy[idx])
    return nbrs


def cfl_dt(mesh: AmrMesh, g: float, courant: float) -> float:
    """CFL-limited time step; aborts on corrupted (non-physical) state."""
    n = mesh.live()
    h = mesh.h[:n]
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        c = np.sqrt(g * h)
        u = np.abs(mesh.hu[:n] / h)
        v = np.abs(mesh.hv[:n] / h)
        size = mesh.cell_size(mesh.lev[:n])
        speed = np.maximum(u, v) + c
        dt = courant * float(np.min(size / np.maximum(speed, 1e-12)))
    if not np.isfinite(dt) or dt <= 0.0:
        raise SimulationAborted(f"CFL check failed: dt={dt}")
    return dt


def _gather_ghost(
    arr: np.ndarray, nbr: np.ndarray, boundary: np.ndarray, reflect: np.ndarray | None
) -> np.ndarray:
    """Neighbour values with reflective ghosts on domain boundaries."""
    safe = np.where(boundary, 0, nbr)
    vals = arr.take(safe, mode="raise").astype(float)
    if reflect is None:
        own = arr
        vals = np.where(boundary, own, vals)
    else:
        vals = np.where(boundary, reflect, vals)
    return vals


def flux_update(
    mesh: AmrMesh,
    nbrs: np.ndarray,
    dt: float,
    g: float,
    h_floor: float,
) -> None:
    """Advance ``(h, hu, hv)`` one step with Rusanov face fluxes."""
    n = mesh.live()
    if nbrs.shape != (4, n):
        raise IndexError(f"neighbour table shape {nbrs.shape} does not match {n} cells")
    h = mesh.h[:n].copy()
    hu = mesh.hu[:n].copy()
    hv = mesh.hv[:n].copy()
    size = mesh.cell_size(mesh.lev[:n])

    dh = np.zeros(n)
    dhu = np.zeros(n)
    dhv = np.zeros(n)
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        hs = np.maximum(h, h_floor)
        for face, (nx, ny) in enumerate(_NORMALS):
            nbr = nbrs[face]
            if np.any(nbr >= n):
                raise IndexError("corrupted neighbour index beyond live cells")
            boundary = nbr < 0
            # Reflective ghost: same height, normal momentum negated.
            hj = _gather_ghost(h, nbr, boundary, None)
            huj = _gather_ghost(hu, nbr, boundary, hu * (1.0 - 2.0 * abs(nx)))
            hvj = _gather_ghost(hv, nbr, boundary, hv * (1.0 - 2.0 * abs(ny)))
            hjs = np.maximum(hj, h_floor)

            uni = (hu * nx + hv * ny) / hs
            unj = (huj * nx + hvj * ny) / hjs
            # Physical fluxes through the face for both sides.
            fh_i = h * uni
            fh_j = hj * unj
            p_i = 0.5 * g * h * h
            p_j = 0.5 * g * hj * hj
            fhu_i = hu * uni + p_i * nx
            fhu_j = huj * unj + p_j * nx
            fhv_i = hv * uni + p_i * ny
            fhv_j = hvj * unj + p_j * ny
            lam = np.maximum(
                np.abs(uni) + np.sqrt(g * hs), np.abs(unj) + np.sqrt(g * hjs)
            )
            dh -= 0.5 * (fh_i + fh_j) - 0.5 * lam * (hj - h)
            dhu -= 0.5 * (fhu_i + fhu_j) - 0.5 * lam * (huj - hu)
            dhv -= 0.5 * (fhv_i + fhv_j) - 0.5 * lam * (hvj - hv)
        mesh.h[:n] = np.maximum(h + dt / size * dh, h_floor)
        mesh.hu[:n] = hu + dt / size * dhu
        mesh.hv[:n] = hv + dt / size * dhv
