"""CLAMR — DOE cell-based adaptive mesh refinement hydrodynamics mini-app.

CLAMR simulates shallow-water wave propagation on an adaptive mesh
(paper Section 3.2).  This subpackage reimplements the pieces the
paper's criticality analysis names:

* :mod:`repro.benchmarks.clamr.mesh` — the AMR cell mesh (the "mesh"
  structure CAROL-FI identifies as the most critical portion);
* :mod:`repro.benchmarks.clamr.sort` — space-filling-curve cell
  ordering (the "Sort" portion);
* :mod:`repro.benchmarks.clamr.kdtree` — the K-D tree used for
  neighbour finding (the "Tree" portion);
* :mod:`repro.benchmarks.clamr.shallow` — the shallow-water finite
  volume step;
* :mod:`repro.benchmarks.clamr.driver` — the stepped benchmark wrapper
  exposing each phase to the injector.
"""

from repro.benchmarks.clamr.driver import Clamr, ClamrState
from repro.benchmarks.clamr.kdtree import KdTree
from repro.benchmarks.clamr.mesh import AmrMesh

__all__ = ["AmrMesh", "Clamr", "ClamrState", "KdTree"]
