"""Adaptive cell mesh for CLAMR.

Cells tile the unit square.  A base ``base x base`` grid refines by
quadrisection up to ``max_level``; each cell stores its centre, level,
and conserved shallow-water state (height ``h`` and momenta ``hu``,
``hv``).  Storage is capacity-bounded flat arrays with a live prefix of
``ncells`` entries — the layout a C mini-app would malloc once — so the
injector corrupts real backing stores and out-of-capacity refinement is
a hard error, not a silent realloc.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import SimulationAborted, checked_index

__all__ = ["AmrMesh"]


class AmrMesh:
    """Capacity-bounded adaptive quad mesh on the unit square."""

    def __init__(self, base: int, max_level: int, capacity: int):
        if base < 2:
            raise ValueError("base grid must be at least 2x2")
        if max_level < 0:
            raise ValueError("max_level must be non-negative")
        if capacity < base * base:
            raise ValueError("capacity below base grid size")
        self.base = base
        self.max_level = max_level
        self.capacity = capacity
        self.x = np.zeros(capacity)
        self.y = np.zeros(capacity)
        self.lev = np.zeros(capacity, dtype=np.int32)
        self.h = np.zeros(capacity)
        self.hu = np.zeros(capacity)
        self.hv = np.zeros(capacity)
        self.parent = np.full(capacity, -1, dtype=np.int64)
        self.slot = np.zeros(capacity, dtype=np.int8)
        self.ncells = np.array(0, dtype=np.int64)
        self.next_parent = np.array(0, dtype=np.int64)

    def clone(self) -> "AmrMesh":
        """Bit-exact copy for the snapshot/restore protocol.

        Bypasses ``__init__`` deliberately: construction validates and
        zero-fills, while a clone must reproduce the live (possibly
        corrupted) arrays and counters exactly as they are.
        """
        dup = object.__new__(AmrMesh)
        dup.base = self.base
        dup.max_level = self.max_level
        dup.capacity = self.capacity
        for name in ("x", "y", "lev", "h", "hu", "hv", "parent", "slot",
                     "ncells", "next_parent"):
            setattr(dup, name, getattr(self, name).copy())
        return dup

    # -- construction --------------------------------------------------------

    def init_dam_break(self, h_inside: float = 10.0, h_outside: float = 2.0,
                       radius: float = 0.22) -> None:
        """Circular dam-break initial condition centred on the domain."""
        base = self.base
        idx = np.arange(base)
        cx, cy = np.meshgrid((idx + 0.5) / base, (idx + 0.5) / base, indexing="ij")
        n = base * base
        self.x[:n] = cx.ravel()
        self.y[:n] = cy.ravel()
        self.lev[:n] = 0
        r = np.hypot(self.x[:n] - 0.5, self.y[:n] - 0.5)
        self.h[:n] = np.where(r < radius, h_inside, h_outside)
        self.hu[:n] = 0.0
        self.hv[:n] = 0.0
        self.parent[:n] = -1
        self.slot[:n] = 0
        self.ncells[...] = n

    # -- geometry ------------------------------------------------------------

    def live(self) -> int:
        """Validated live cell count (reads the corruptible counter)."""
        n = int(self.ncells[()])
        if not 0 < n <= self.capacity:
            raise IndexError(f"corrupted cell count {n}")
        return n

    def cell_size(self, lev: np.ndarray | int) -> np.ndarray:
        """Edge length of cells at refinement level ``lev``."""
        lev_arr = np.asarray(lev)
        if np.any(lev_arr < 0) or np.any(lev_arr > self.max_level):
            raise IndexError(f"corrupted refinement level in {np.unique(lev_arr)}")
        return 1.0 / (self.base * (2.0**lev_arr))

    @property
    def finest_size(self) -> float:
        return 1.0 / (self.base * 2**self.max_level)

    # -- adaptation ----------------------------------------------------------

    def refine(self, cells: np.ndarray) -> int:
        """Quadrisect ``cells`` (live indices); returns cells created.

        Each victim cell is replaced in place by its first child; the
        other three children are appended.  Refinement past capacity
        aborts the simulation (the mini-app's malloc'd arrays are full).
        """
        n = self.live()
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return 0
        created = 0
        for raw in cells:
            i = checked_index(int(raw), n, "refine target")
            lev = int(self.lev[i])
            if lev >= self.max_level:
                continue
            if n + created + 3 > self.capacity:
                raise SimulationAborted("mesh capacity exhausted during refine")
            quarter = float(self.cell_size(lev)) / 4.0
            pid = int(self.next_parent[()])
            self.next_parent[...] = pid + 1
            cx, cy = float(self.x[i]), float(self.y[i])
            h, hu, hv = float(self.h[i]), float(self.hu[i]), float(self.hv[i])
            offsets = ((-quarter, -quarter), (quarter, -quarter),
                       (-quarter, quarter), (quarter, quarter))
            targets = [i, n + created, n + created + 1, n + created + 2]
            for slot, (tgt, (ox, oy)) in enumerate(zip(targets, offsets)):
                self.x[tgt] = cx + ox
                self.y[tgt] = cy + oy
                self.lev[tgt] = lev + 1
                self.h[tgt] = h
                self.hu[tgt] = hu
                self.hv[tgt] = hv
                self.parent[tgt] = pid
                self.slot[tgt] = slot
            created += 3
        self.ncells[...] = n + created
        return created

    def coarsen(self, quiet: np.ndarray) -> int:
        """Merge sibling quartets whose members are all in ``quiet``.

        ``quiet`` is a boolean mask over live cells.  A quartet merges
        only when all four siblings are live, at the same level, and
        quiet; the merged parent gets the conservative mean state.
        Returns the number of cells removed.
        """
        n = self.live()
        quiet = np.asarray(quiet, dtype=bool)
        if quiet.shape != (n,):
            raise ValueError("quiet mask must cover live cells")
        parents = self.parent[:n]
        if not np.any(parents >= 0):
            return 0
        order = np.argsort(parents, kind="stable")
        keep = np.ones(n, dtype=bool)
        removed = 0
        pos = 0
        sorted_parents = parents[order]
        while pos < n:
            pid = sorted_parents[pos]
            end = pos
            while end < n and sorted_parents[end] == pid:
                end += 1
            if pid >= 0 and end - pos == 4:
                members = order[pos:end]
                levs = self.lev[members]
                if np.all(levs == levs[0]) and levs[0] > 0 and bool(np.all(quiet[members])):
                    keep_idx = int(members[np.argmin(self.slot[members])])
                    self.x[keep_idx] = float(self.x[members].mean())
                    self.y[keep_idx] = float(self.y[members].mean())
                    self.h[keep_idx] = float(self.h[members].mean())
                    self.hu[keep_idx] = float(self.hu[members].mean())
                    self.hv[keep_idx] = float(self.hv[members].mean())
                    self.lev[keep_idx] = levs[0] - 1
                    self.parent[keep_idx] = -1
                    self.slot[keep_idx] = 0
                    drop = members[members != keep_idx]
                    keep[drop] = False
                    removed += drop.size
            pos = end
        if removed:
            self._compact(keep, n)
        return removed

    def _compact(self, keep: np.ndarray, n: int) -> None:
        """Densify live arrays after coarsening removed cells."""
        idx = np.flatnonzero(keep)
        m = idx.size
        for arr in (self.x, self.y, self.h, self.hu, self.hv):
            arr[:m] = arr[idx]
        for arr in (self.lev, self.parent, self.slot):
            arr[:m] = arr[idx]
        self.ncells[...] = m

    # -- output --------------------------------------------------------------

    def sample_grid(self) -> np.ndarray:
        """Paint the water height onto the finest uniform grid.

        Coarse cells cover a block of pixels; the paint order (coarse
        first) makes the finest data win, so outputs from runs with
        different refinement histories stay comparable.
        """
        n = self.live()
        res = self.base * 2**self.max_level
        out = np.zeros((res, res))
        sizes = self.cell_size(self.lev[:n])
        order = np.argsort(self.lev[:n], kind="stable")
        for i in order:
            s = float(sizes[i])
            px0 = int(round((float(self.x[i]) - s / 2.0) * res))
            py0 = int(round((float(self.y[i]) - s / 2.0) * res))
            extent = max(1, int(round(s * res)))
            px0 = min(max(px0, 0), res - 1)
            py0 = min(max(py0, 0), res - 1)
            out[px0 : px0 + extent, py0 : py0 + extent] = self.h[i]
        return out
