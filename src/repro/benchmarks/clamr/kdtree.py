"""Array-based 2-D K-D tree — CLAMR's "Tree" portion.

CLAMR builds a K-D tree over cell centres and queries it to find the
face neighbours of every cell.  The tree here is stored in flat arrays
(split dimension/value per internal node, cell-index ranges per leaf)
so the injector can corrupt the actual structure: a flipped split value
sends queries to the wrong leaf (wrong neighbour → SDC), a corrupted
child pointer indexes out of bounds (DUE crash) or forms a cycle that
trips the traversal budget (DUE hang).

Build is iterative over node segments (O(n log n) with ~n/leaf_size
Python iterations); queries are batched — all query points descend the
tree simultaneously in vectorised sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchmarks.base import BenchmarkHang

__all__ = ["KdTree"]

_MAX_DESCENT = 64


@dataclass
class KdTree:
    """Flat-array K-D tree over 2-D points.

    ``left``/``right`` are child node ids (-1 for leaves); leaves own
    ``perm[leaf_lo:leaf_hi]``, indices into the point set the tree was
    built over.
    """

    split_dim: np.ndarray  # (nodes,) int8
    split_val: np.ndarray  # (nodes,) float64
    left: np.ndarray  # (nodes,) int32
    right: np.ndarray  # (nodes,) int32
    leaf_lo: np.ndarray  # (nodes,) int32
    leaf_hi: np.ndarray  # (nodes,) int32
    perm: np.ndarray  # (n,) int32
    n_nodes: np.ndarray  # 0-d int64 (corruptible node count)

    @classmethod
    def build(cls, x: np.ndarray, y: np.ndarray, leaf_size: int = 8) -> "KdTree":
        """Median-split build over points ``(x[i], y[i])``."""
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot build a tree over zero points")
        coords = (np.asarray(x, dtype=float), np.asarray(y, dtype=float))
        max_nodes = max(1, 4 * (n // leaf_size + 2))
        tree = cls(
            split_dim=np.zeros(max_nodes, dtype=np.int8),
            split_val=np.zeros(max_nodes, dtype=np.float64),
            left=np.full(max_nodes, -1, dtype=np.int32),
            right=np.full(max_nodes, -1, dtype=np.int32),
            leaf_lo=np.zeros(max_nodes, dtype=np.int32),
            leaf_hi=np.zeros(max_nodes, dtype=np.int32),
            perm=np.arange(n, dtype=np.int32),
            n_nodes=np.array(0, dtype=np.int64),
        )
        # Iterative build: each stack entry is (node_id, lo, hi, depth)
        # over a contiguous segment of tree.perm.
        next_node = 1
        stack = [(0, 0, n, 0)]
        while stack:
            node, lo, hi, depth = stack.pop()
            if hi - lo <= leaf_size or depth >= 32:
                tree.left[node] = -1
                tree.right[node] = -1
                tree.leaf_lo[node] = lo
                tree.leaf_hi[node] = hi
                continue
            seg = tree.perm[lo:hi]
            dim = depth % 2
            vals = coords[dim][seg]
            order = np.argsort(vals, kind="stable")
            tree.perm[lo:hi] = seg[order]
            sorted_vals = vals[order]
            split = float(sorted_vals[(hi - lo) // 2])
            # Every point with coordinate <= split goes left, so a query
            # descending on `pt <= split` always reaches the leaf that
            # holds its own point, duplicates included.
            n_left = int(np.searchsorted(sorted_vals, split, side="right"))
            if n_left >= hi - lo:
                # Degenerate split (pivot is the maximum): leaf it.
                tree.left[node] = -1
                tree.right[node] = -1
                tree.leaf_lo[node] = lo
                tree.leaf_hi[node] = hi
                continue
            if next_node + 2 > max_nodes:  # pragma: no cover - sizing guard
                raise RuntimeError("kd-tree node budget exceeded")
            tree.split_dim[node] = dim
            tree.split_val[node] = split
            tree.left[node] = next_node
            tree.right[node] = next_node + 1
            stack.append((next_node, lo, lo + n_left, depth + 1))
            stack.append((next_node + 1, lo + n_left, hi, depth + 1))
            next_node += 2
        tree.n_nodes[...] = next_node
        return tree

    def query_nearest(
        self, x: np.ndarray, y: np.ndarray, qx: np.ndarray, qy: np.ndarray
    ) -> np.ndarray:
        """Index of the point nearest each query (approximate: leaf-local).

        Descends every query to its containing leaf simultaneously,
        then scans each leaf's candidates.  CLAMR's neighbour queries
        target the interior of the neighbouring cell, so the containing
        leaf almost always holds the true nearest centre; the rare
        boundary miss adds a little numerical diffusion but keeps the
        scheme deterministic and stable.
        """
        n_nodes = int(self.n_nodes[()])
        if not 0 < n_nodes <= self.left.shape[0]:
            raise IndexError(f"corrupted kd-tree node count {n_nodes}")
        qx = np.asarray(qx, dtype=float)
        qy = np.asarray(qy, dtype=float)
        m = qx.shape[0]
        cur = np.zeros(m, dtype=np.int64)
        coords = (qx, qy)
        for _sweep in range(_MAX_DESCENT):
            left = self.left[cur]
            internal = left >= 0
            if not internal.any():
                break
            idx = np.flatnonzero(internal)
            nodes = cur[idx]
            dims = self.split_dim[nodes]
            if np.any((dims < 0) | (dims > 1)):
                raise IndexError("corrupted kd-tree split dimension")
            pts = np.where(dims == 0, qx[idx], qy[idx])
            go_left = pts <= self.split_val[nodes]
            nxt = np.where(go_left, self.left[nodes], self.right[nodes])
            if np.any((nxt < 0) | (nxt >= n_nodes)):
                raise IndexError("corrupted kd-tree child pointer")
            cur[idx] = nxt
        else:
            raise BenchmarkHang("kd-tree descent did not terminate")

        out = np.empty(m, dtype=np.int64)
        n_points = x.shape[0]
        for leaf in np.unique(cur):
            lo, hi = int(self.leaf_lo[leaf]), int(self.leaf_hi[leaf])
            if not (0 <= lo < hi <= self.perm.shape[0]):
                raise IndexError(f"corrupted kd-tree leaf range [{lo}, {hi})")
            cand = self.perm[lo:hi]
            if np.any((cand < 0) | (cand >= n_points)):
                raise IndexError("corrupted kd-tree leaf candidate")
            sel = np.flatnonzero(cur == leaf)
            with np.errstate(over="ignore", invalid="ignore"):
                dx = coords[0][sel][:, None] - x[cand][None, :]
                dy = coords[1][sel][:, None] - y[cand][None, :]
                out[sel] = cand[np.argmin(dx * dx + dy * dy, axis=1)]
        return out

    def variables(self) -> dict[str, np.ndarray]:
        """Backing stores exposed to the injector (the Tree frame)."""
        return {
            "tree_split_dim": self.split_dim,
            "tree_split_val": self.split_val,
            "tree_left": self.left,
            "tree_right": self.right,
            "tree_leaf_lo": self.leaf_lo,
            "tree_leaf_hi": self.leaf_hi,
            "tree_perm": self.perm,
            "tree_n_nodes": self.n_nodes,
        }
