"""CLAMR benchmark driver — the stepped, injectable wrapper.

Each simulated timestep runs as six scheduling phases, exposing the
pipeline artifacts the paper's criticality analysis names exactly while
they are live-and-pending-consumption (GDB only sees an allocation
while its owning call chain is active):

===== ===================== =========================================
phase work                  artifacts pending at phase *entry*
===== ===================== =========================================
0     compute sort keys     —
1     gather reorder        sort permutation (``Sort`` portion)
2     commit + tree build   reorder buffers (``Sort`` portion)
3     neighbour queries     K-D tree arrays (``Tree`` portion)
4     CFL + flux update     neighbour table (``Tree`` portion)
5     refine / coarsen      neighbour table (``Tree`` portion)
===== ===================== =========================================

The mesh arrays themselves (the paper's "others" mesh portion), the
cell counter, and the physics constants are visible at every phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, Variable
from repro.benchmarks.clamr.kdtree import KdTree
from repro.benchmarks.clamr.mesh import AmrMesh
from repro.benchmarks.clamr.shallow import cfl_dt, find_face_neighbors, flux_update
from repro.benchmarks.clamr.sort import (
    commit_reorder,
    compute_sort_permutation,
    gather_reorder_buffers,
)

__all__ = ["Clamr", "ClamrState"]

_PHASES = 6


@dataclass
class ClamrState:
    """Live state of one CLAMR execution."""

    mesh: AmrMesh
    consts: np.ndarray  # float64 [g, courant, refine_hi, coarsen_lo, h_floor]
    perm: np.ndarray | None = None
    reorder: dict[str, np.ndarray] | None = None
    tree: KdTree | None = None
    nbrs: np.ndarray | None = None


class Clamr(Benchmark):
    """Adaptive-mesh shallow-water wave propagation."""

    name = "clamr"
    output_dims = 2
    num_windows = 9
    float_output = True
    output_decimals = 4
    # The mesh arrays dominate CLAMR's image; only the cell counter and
    # physics constants live on the stack side.
    stack_share = 0.10

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {
            "base": 8,
            "max_level": 2,
            "capacity": 1200,
            "timesteps": 9,
            "leaf_size": 8,
            "g": 9.8,
            "courant": 0.25,
            "refine_hi": 1.0,
            "coarsen_lo": 0.10,
            "h_floor": 1e-6,
        }

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        # The LANL wave-propagation class: a 128x128 base grid refined
        # two levels over hundreds of timesteps.
        params = dict(cls.default_params())
        params.update({"base": 128, "capacity": 300_000, "timesteps": 500})
        return params

    def __init__(self, **params: Any):
        super().__init__(**params)
        if self.params["timesteps"] < 1:
            raise ValueError("timesteps must be positive")

    def make_state(self, rng: np.random.Generator) -> ClamrState:
        p = self.params
        mesh = AmrMesh(p["base"], p["max_level"], p["capacity"])
        # Dynamically generated dataset: jitter the dam-break column so
        # each campaign input differs, like the paper's generated inputs.
        radius = 0.20 + 0.04 * float(rng.random())
        h_in = 9.0 + 2.0 * float(rng.random())
        mesh.init_dam_break(h_inside=h_in, h_outside=2.0, radius=radius)
        consts = np.array(
            [p["g"], p["courant"], p["refine_hi"], p["coarsen_lo"], p["h_floor"]]
        )
        return ClamrState(mesh=mesh, consts=consts)

    def num_steps(self, state: ClamrState) -> int:
        return self.params["timesteps"] * _PHASES

    # -- phases ---------------------------------------------------------------

    def step(self, state: ClamrState, index: int) -> None:
        phase = index % _PHASES
        mesh = state.mesh
        if phase == 0:
            state.perm = compute_sort_permutation(mesh)
        elif phase == 1:
            if state.perm is None:  # pragma: no cover - driver invariant
                raise RuntimeError("sort phase did not run")
            state.reorder = gather_reorder_buffers(mesh, state.perm)
            state.perm = None
        elif phase == 2:
            if state.reorder is None:  # pragma: no cover - driver invariant
                raise RuntimeError("gather phase did not run")
            commit_reorder(mesh, state.reorder)
            state.reorder = None
            n = mesh.live()
            state.tree = KdTree.build(
                mesh.x[:n], mesh.y[:n], leaf_size=self.params["leaf_size"]
            )
        elif phase == 3:
            if state.tree is None:  # pragma: no cover - driver invariant
                raise RuntimeError("tree phase did not run")
            state.nbrs = find_face_neighbors(mesh, state.tree)
            state.tree = None
        elif phase == 4:
            g, courant = float(state.consts[0]), float(state.consts[1])
            h_floor = float(state.consts[4])
            dt = cfl_dt(mesh, g, courant)
            self._check_nbrs(state)
            flux_update(mesh, state.nbrs, dt, g, h_floor)
        else:
            self._adapt(state)

    def _check_nbrs(self, state: ClamrState) -> None:
        if state.nbrs is None:  # pragma: no cover - driver invariant
            raise RuntimeError("neighbour phase did not run")
        n = state.mesh.live()
        if state.nbrs.shape != (4, n):
            raise IndexError("neighbour table does not match live mesh")

    def _adapt(self, state: ClamrState) -> None:
        """Refine steep cells, coarsen quiet sibling quartets."""
        mesh = state.mesh
        self._check_nbrs(state)
        n = mesh.live()
        refine_hi = float(state.consts[2])
        coarsen_lo = float(state.consts[3])
        h = mesh.h[:n]
        indicator = np.zeros(n)
        with np.errstate(invalid="ignore", over="ignore"):
            for face in range(4):
                nbr = state.nbrs[face]
                if np.any(nbr >= n):
                    raise IndexError("corrupted neighbour index beyond live cells")
                boundary = nbr < 0
                hj = h.take(np.where(boundary, 0, nbr), mode="raise")
                diff = np.where(boundary, 0.0, np.abs(hj - h))
                indicator = np.maximum(indicator, diff)
        refine_mask = (indicator > refine_hi) & (mesh.lev[:n] < mesh.max_level)
        created = mesh.refine(np.flatnonzero(refine_mask))
        quiet = np.concatenate(
            [
                (indicator < coarsen_lo) & ~refine_mask,
                np.zeros(created, dtype=bool),
            ]
        )
        mesh.coarsen(quiet)
        state.nbrs = None

    def output(self, state: ClamrState) -> np.ndarray:
        return state.mesh.sample_grid()

    # -- injection surface ------------------------------------------------------

    def variables(self, state: ClamrState, step: int) -> list[Variable]:
        mesh = state.mesh
        variables = [
            Variable("cell_x", mesh.x, frame="mesh", var_class="others"),
            Variable("cell_y", mesh.y, frame="mesh", var_class="others"),
            Variable("cell_lev", mesh.lev, frame="mesh", var_class="others"),
            Variable("cell_h", mesh.h, frame="mesh", var_class="others"),
            Variable("cell_hu", mesh.hu, frame="mesh", var_class="others"),
            Variable("cell_hv", mesh.hv, frame="mesh", var_class="others"),
            Variable("cell_parent", mesh.parent, frame="mesh", var_class="others"),
            Variable("cell_slot", mesh.slot, frame="mesh", var_class="others"),
            Variable("ncells", mesh.ncells, frame="mesh", var_class="control"),
            Variable("consts", state.consts, frame="main", var_class="constant"),
        ]
        if state.perm is not None:
            variables.append(Variable("sort_perm", state.perm, frame="sort", var_class="sort"))
        if state.reorder is not None:
            for field_name, arr in state.reorder.items():
                variables.append(
                    Variable(f"reorder_{field_name}", arr, frame="sort", var_class="sort")
                )
        if state.tree is not None:
            for name, arr in state.tree.variables().items():
                variables.append(Variable(name, arr, frame="tree", var_class="tree"))
        if state.nbrs is not None:
            variables.append(Variable("nbr_table", state.nbrs, frame="tree", var_class="tree"))
        return variables
