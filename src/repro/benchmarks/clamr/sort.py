"""Space-filling-curve cell ordering — CLAMR's "Sort" portion.

CLAMR keeps its cells sorted along a space-filling curve so that
spatially adjacent cells are adjacent in memory (sibling quartets in
particular become contiguous, which the coarsening pass relies on).
Each timestep recomputes Morton keys from the cell centres and levels,
argsorts them, and physically reorders every per-cell array through the
resulting permutation.

The permutation is the Sort portion's injectable artifact: it is
produced by the sort phase and consumed by the reorder at the start of
the tree phase, so a fault landing in it between the two phases
scrambles, duplicates, or (for out-of-range values) crashes the mesh —
matching the paper's finding that Sort faults are the most SDC-prone
portion of CLAMR.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.clamr.mesh import AmrMesh

__all__ = [
    "apply_permutation",
    "commit_reorder",
    "compute_sort_permutation",
    "gather_reorder_buffers",
    "morton_keys",
]

#: Per-cell arrays that get physically reordered, in a fixed order.
_CELL_FIELDS = ("x", "y", "h", "hu", "hv", "lev", "parent", "slot")


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Interleave zeros between the low 16 bits of each value."""
    v = v.astype(np.uint64) & np.uint64(0xFFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x33333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x55555555)
    return v


def morton_keys(x: np.ndarray, y: np.ndarray, resolution: int) -> np.ndarray:
    """Morton (Z-order) keys of points quantised to ``resolution``."""
    if resolution < 1 or resolution > 1 << 16:
        raise ValueError("resolution out of supported range")
    with np.errstate(invalid="ignore", over="ignore"):
        fx = np.nan_to_num(x * float(resolution), nan=0.0, posinf=resolution - 1, neginf=0.0)
        fy = np.nan_to_num(y * float(resolution), nan=0.0, posinf=resolution - 1, neginf=0.0)
    qx = np.clip(fx, 0, resolution - 1).astype(np.int64)
    qy = np.clip(fy, 0, resolution - 1).astype(np.int64)
    return (_spread_bits(qx) | (_spread_bits(qy) << np.uint64(1))).astype(np.int64)


def compute_sort_permutation(mesh: AmrMesh) -> np.ndarray:
    """Morton-order permutation of the live cells (the sort phase)."""
    n = mesh.live()
    resolution = mesh.base * 2**mesh.max_level
    keys = morton_keys(mesh.x[:n], mesh.y[:n], resolution)
    # Finer cells after their coarse neighbours at equal quantised
    # position, for a deterministic total order.
    return np.lexsort((mesh.lev[:n], keys)).astype(np.int64)


def gather_reorder_buffers(mesh: AmrMesh, perm: np.ndarray) -> dict[str, np.ndarray]:
    """Gather every per-cell array through ``perm`` into fresh buffers.

    This is the first half of the physical reorder: real CLAMR
    allocates destination arrays, gathers, then swaps them in.  The
    buffers are live "Sort" allocations between the gather and the
    commit — exactly where the injector can reach them.

    Gather uses checked indices: a corrupted permutation entry outside
    the live range faults (DUE), while an in-range corruption silently
    duplicates one cell and drops another (SDC).
    """
    n = mesh.live()
    perm = np.asarray(perm)
    if perm.shape != (n,):
        raise IndexError(f"permutation length {perm.shape} does not match {n} cells")
    return {
        field: getattr(mesh, field)[:n].take(perm, mode="raise")
        for field in _CELL_FIELDS
    }


def commit_reorder(mesh: AmrMesh, buffers: dict[str, np.ndarray]) -> None:
    """Swap the gathered buffers into the mesh (second half of reorder)."""
    n = mesh.live()
    for field in _CELL_FIELDS:
        buf = buffers[field]
        if buf.shape != (n,):
            raise IndexError(
                f"reorder buffer {field} has {buf.shape}, expected ({n},)"
            )
        getattr(mesh, field)[:n] = buf


def apply_permutation(mesh: AmrMesh, perm: np.ndarray) -> None:
    """Gather + commit in one call (used by tests and simple drivers)."""
    commit_reorder(mesh, gather_reorder_buffers(mesh, perm))
