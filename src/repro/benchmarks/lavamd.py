"""LavaMD — cutoff-range N-body particle interaction in a 3-D box grid.

The Rodinia LavaMD kernel: particles live in a cubic grid of boxes;
each home box accumulates the potential and force contributions of the
particles in itself and its 26 face/edge/corner neighbours through an
exponential pair kernel.

Reproduction-relevant structure:

* the only 3-D benchmark — corruption spreading across neighbouring
  boxes produces the *cubic* error pattern of Figure 2;
* the charge and position arrays dwarf every other structure, so under
  footprint-weighted injection they absorb most faults (the paper
  attributes 57% of SDCs and 11% of DUEs to them);
* ``exp`` exacerbates any perturbation, which is why all four fault
  models look alike for LavaMD (Figure 5).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.benchmarks.base import Benchmark, PointerTable, Variable, checked_index

__all__ = ["LavaMD", "LavaMDState"]


@dataclass
class LavaMDState:
    """Live state of one LavaMD execution."""

    rv: np.ndarray  # (nboxes, par, 4) float32 — x, y, z, v (extent term)
    qv: np.ndarray  # (nboxes, par) float32 — particle charges
    fv: np.ndarray  # (nboxes, par, 4) float32 — potential + force output
    alpha: np.ndarray  # 0-d float64 — kernel exponent scale
    box_nei: np.ndarray  # (nboxes, 27) int32 — neighbour box ids (-1 = none)
    box_ctl: np.ndarray  # int64 [nboxes, par]
    ptrs: PointerTable  # pointers to the particle arrays


class LavaMD(Benchmark):
    """Cutoff N-body with exponential pair kernel (single precision)."""

    name = "lavamd"
    output_dims = 3
    num_windows = 5
    float_output = True
    # Scaled-down problem compensation: with ~200x fewer particles per
    # box than the irradiated runs, a single-particle perturbation is
    # ~200x more visible; the coarser output precision restores the
    # relative visibility threshold of the paper's setup (DESIGN.md).
    output_decimals = 2
    supports_batching = True
    # The particle arrays dwarf all other allocations (paper: "up to
    # five orders of magnitude larger"), so the stack image is tiny.
    stack_share = 0.08

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {"boxes1d": 4, "par_per_box": 8, "alpha": 2.0}

    @classmethod
    def paper_scale_params(cls) -> dict[str, Any]:
        # Rodinia's -boxes1d 10 with 100 particles per box (100k total).
        return {"boxes1d": 10, "par_per_box": 100, "alpha": 0.5}

    def __init__(self, **params: Any):
        super().__init__(**params)
        if self.params["boxes1d"] < 1:
            raise ValueError("boxes1d must be positive")
        if self.params["par_per_box"] < 1:
            raise ValueError("par_per_box must be positive")

    def make_state(self, rng: np.random.Generator) -> LavaMDState:
        nb = self.params["boxes1d"]
        par = self.params["par_per_box"]
        nboxes = nb**3
        rv = np.empty((nboxes, par, 4), dtype=np.float32)
        # Positions uniform inside each box (box edge length 1.0),
        # matching Rodinia's random initialisation.
        grid = np.stack(
            np.meshgrid(np.arange(nb), np.arange(nb), np.arange(nb), indexing="ij"), axis=-1
        ).reshape(nboxes, 3)
        rv[:, :, :3] = grid[:, None, :] + rng.random((nboxes, par, 3), dtype=np.float32)
        # Rodinia stores v = 0.5 * |pos|^2 so that the pair distance is
        # r2 = v_i + v_j - pos_i . pos_j = 0.5 * |pos_i - pos_j|^2.
        rv[:, :, 3] = 0.5 * np.einsum("ijk,ijk->ij", rv[:, :, :3], rv[:, :, :3])
        qv = rng.random((nboxes, par), dtype=np.float32)
        box_nei = np.full((nboxes, 27), -1, dtype=np.int32)
        for flat, (bx, by, bz) in enumerate(grid):
            slot = 0
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        nx, ny, nz = bx + dx, by + dy, bz + dz
                        if 0 <= nx < nb and 0 <= ny < nb and 0 <= nz < nb:
                            box_nei[flat, slot] = (nx * nb + ny) * nb + nz
                        slot += 1
        return LavaMDState(
            rv=rv,
            qv=qv,
            ptrs=PointerTable({"rv": rv, "qv": qv}),
            fv=np.zeros((nboxes, par, 4), dtype=np.float32),
            alpha=np.array(self.params["alpha"], dtype=np.float64),
            box_nei=box_nei,
            box_ctl=np.array([nboxes, par], dtype=np.int64),
        )

    def num_steps(self, state: LavaMDState) -> int:
        return self.params["boxes1d"] ** 3

    def step(self, state: LavaMDState, index: int) -> None:
        nboxes, par = int(state.box_ctl[0]), int(state.box_ctl[1])
        if not (0 < nboxes <= state.rv.shape[0] and 0 < par <= state.rv.shape[1]):
            raise IndexError(f"corrupted box dimensions ({nboxes}, {par})")
        home = checked_index(index, nboxes, "home box")
        a2 = 2.0 * float(state.alpha[()]) ** 2

        rv = state.ptrs.resolve("rv", state.rv)
        qv = state.ptrs.resolve("qv", state.qv)
        home_rv = rv[home, :par]
        acc = np.zeros((par, 4), dtype=np.float64)
        with np.errstate(over="ignore", invalid="ignore", under="ignore"):
            for slot in range(state.box_nei.shape[1]):
                nei = int(state.box_nei[home, slot])
                if nei < 0:
                    continue
                nei = checked_index(nei, nboxes, "neighbour box")
                nei_rv = rv[nei, :par]
                nei_qv = qv[nei, :par].astype(np.float64)
                home_pos = home_rv[:, :3].astype(np.float64)
                nei_pos = nei_rv[:, :3].astype(np.float64)
                d = home_pos[:, None, :] - nei_pos[None, :, :]
                cross = home_pos @ nei_pos.T
                r2 = (
                    home_rv[:, None, 3].astype(np.float64)
                    + nei_rv[None, :, 3].astype(np.float64)
                    - cross
                )
                u2 = a2 * r2
                vij = np.exp(-u2)
                fs = 2.0 * vij
                acc[:, 0] += (nei_qv[None, :] * vij).sum(axis=1)
                acc[:, 1:] += (nei_qv[None, :, None] * fs[:, :, None] * d).sum(axis=1)
        with np.errstate(over="ignore", invalid="ignore"):
            state.fv[home, :par] = acc.astype(np.float32)

    # -- vectorized batch path ----------------------------------------------

    def batch_coherent(self, state: LavaMDState, golden: LavaMDState, index: int) -> bool:
        """Box geometry, the neighbour table, and the particle pointers
        drive control flow; alpha and the particle data are pure
        arithmetic and stay free per member.  Only the neighbour rows
        of *unvisited* home boxes matter: step ``i`` reads exactly
        ``box_nei[i]`` and never writes the table, so a corrupted row
        below ``index`` is dead state the scalar path tolerates too."""
        return (
            np.array_equal(state.ptrs.addresses, golden.ptrs.addresses)
            and np.array_equal(state.box_ctl, golden.box_ctl)
            and np.array_equal(state.box_nei[index:], golden.box_nei[index:])
        )

    def step_batch(
        self, states: Sequence[LavaMDState], index: int, carry: Any = None
    ) -> Any:
        nboxes, par = int(states[0].box_ctl[0]), int(states[0].box_ctl[1])
        home = checked_index(index, nboxes, "home box")
        if carry is None:
            # ``step`` never writes rv/qv/alpha, so one stack serves the
            # whole batch lifetime; fv (the only output) is written back
            # eagerly below — it is one small box per step — so no
            # ``batch_flush`` override is needed.  The doubles are
            # widened once up front: a float32->float64 cast is exact,
            # so slicing the widened stack is bit-identical to widening
            # a slice like the scalar path does.
            nb_states = len(states)
            kmax = states[0].box_nei.shape[1]
            pmax = states[0].rv.shape[1]
            carry = {
                # Matches scalar: a2 is computed through the same
                # python-float expression per member, so each double is
                # bit-identical.
                "a2": np.array([2.0 * float(st.alpha[()]) ** 2 for st in states])[
                    :, None, None, None
                ],
                "rv": np.stack([st.rv for st in states]).astype(np.float64),
                "qv": np.stack([st.qv for st in states]).astype(np.float64),
                # Pair-kernel scratch, reused every step: the ufunc tree
                # writes through ``out=`` so the MB-scale intermediates
                # are allocated (and page-faulted) once per batch, not
                # once per ufunc per step.  The 3-vector scratch keeps
                # the component axis *ahead* of the particle axes: the
                # force reduction then runs over the contiguous last
                # axis.  Reduction order follows the logical axis, not
                # the memory layout, so the summation tree (and its
                # bits) is unchanged.
                "s4": np.empty((nb_states, kmax, pmax, pmax)),
                "s4b": np.empty((nb_states, kmax, pmax, pmax)),
                "s5": np.empty((nb_states, kmax, 3, pmax, pmax)),
                "s5b": np.empty((nb_states, kmax, 3, pmax, pmax)),
                "pot": np.empty((nb_states, kmax, pmax)),
                "frc": np.empty((nb_states, kmax, 3, pmax)),
                "accp": np.empty((nb_states, pmax)),
                "accf": np.empty((nb_states, 3, pmax)),
                "acc": np.empty((nb_states, pmax, 4)),
            }
        a2 = carry["a2"]
        rv = carry["rv"]
        qv = carry["qv"]
        # The neighbour walk is golden control flow (gated at join), so
        # every member shares one slot list; the pair kernel then runs
        # over a stacked neighbour axis in one shot.  Only the final
        # accumulation stays a per-slot loop: it replays the scalar
        # path's slot-sequential float64 additions bit for bit.
        nei_ids = [
            int(n) for n in states[0].box_nei[home] if int(n) >= 0
        ]
        home_pos = rv[:, home, :par, :3]
        home_v = rv[:, home, :par, 3]
        nei_blk = rv[:, nei_ids][:, :, :par]
        nei_pos = nei_blk[..., :3]
        nei_v = nei_blk[..., 3]
        nei_qv = qv[:, nei_ids, :par]
        k = len(nei_ids)
        s4 = carry["s4"][:, :k, :par, :par]
        s4b = carry["s4b"][:, :k, :par, :par]
        d = carry["s5"][:, :k, :, :par, :par]
        s5b = carry["s5b"][:, :k, :, :par, :par]
        pot = carry["pot"][:, :k, :par]
        frc = carry["frc"][:, :k, :, :par]
        accp = carry["accp"][:, :par]
        accf = carry["accf"][:, :, :par]
        acc = carry["acc"][:, :par]
        accp.fill(0.0)
        accf.fill(0.0)
        with np.errstate(over="ignore", invalid="ignore", under="ignore"):
            np.subtract(
                home_pos.transpose(0, 2, 1)[:, None, :, :, None],
                nei_pos.transpose(0, 1, 3, 2)[:, :, :, None, :],
                out=d,
            )
            np.matmul(home_pos[:, None], nei_pos.transpose(0, 1, 3, 2), out=s4)  # cross
            np.add(home_v[:, None, :, None], nei_v[:, :, None, :], out=s4b)
            np.subtract(s4b, s4, out=s4b)  # r2
            np.multiply(a2, s4b, out=s4b)  # u2
            np.negative(s4b, out=s4b)
            np.exp(s4b, out=s4b)  # vij
            np.multiply(nei_qv[:, :, None, :], s4b, out=s4)
            np.sum(s4, axis=3, out=pot)
            np.multiply(2.0, s4b, out=s4b)  # fs
            np.multiply(nei_qv[:, :, None, :], s4b, out=s4)
            np.multiply(s4[:, :, None, :, :], d, out=s5b)
            np.sum(s5b, axis=4, out=frc)
            for j in range(k):
                accp += pot[:, j]
                accf += frc[:, j]
            acc[:, :, 0] = accp
            acc[:, :, 1:] = accf.transpose(0, 2, 1)
        with np.errstate(over="ignore", invalid="ignore"):
            out = acc.astype(np.float32)
        for i, st in enumerate(states):
            st.fv[home, :par] = out[i]
        return carry

    def output(self, state: LavaMDState) -> np.ndarray:
        nb = self.params["boxes1d"]
        par = self.params["par_per_box"]
        return state.fv.astype(np.float64).reshape(nb, nb, nb, par * 4)

    def variables(self, state: LavaMDState, step: int) -> list[Variable]:
        return [
            Variable("rv", state.rv, frame="global", var_class="charge_distance"),
            Variable("qv", state.qv, frame="global", var_class="charge_distance"),
            Variable("fv", state.fv, frame="global", var_class="force"),
            Variable("alpha", state.alpha, frame="main", var_class="constant"),
            Variable("box_nei", state.box_nei, frame="main", var_class="control"),
            Variable("box_ctl", state.box_ctl, frame="main", var_class="control"),
            Variable("particle_ptrs", state.ptrs.addresses, frame="kernel", var_class="pointer"),
        ]
