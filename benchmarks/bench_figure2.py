"""Figure 2 — beam FIT rates and spatial error distribution.

Times one strike trial of the machine-model beam pipeline (the unit of
work the whole figure scales with) and regenerates the Figure 2 table:
SDC FIT partitioned by spatial pattern plus DUE FIT per benchmark.
"""

from repro.beam.experiment import BeamExperiment
from repro.experiments import figure2

from _artifacts import register_artifact


def test_figure2_reproduction(benchmark, data):
    result = figure2.run(data)  # campaigns cached for the whole session
    register_artifact("figure2", figure2.render(result))
    # Timed section: the FIT aggregation over the cached campaigns.
    benchmark(figure2.run, data)
    assert set(result.reports) == {"clamr", "dgemm", "hotspot", "lavamd", "lud"}
    # Shape checks the paper's Section 4 narrative relies on:
    for name, report in result.reports.items():
        assert report.sdc.fit > 0, name
    # Multi-element SDCs dominate (Section 4.3: <10% single-element).
    assert all(f < 0.5 for f in result.single_element_fraction.values())


def test_single_strike_trial_dgemm(benchmark):
    experiment = BeamExperiment("dgemm", seed=42)
    counter = iter(range(10**9))
    benchmark(lambda: experiment.run_trial(next(counter)))


def test_single_strike_trial_hotspot(benchmark):
    experiment = BeamExperiment("hotspot", seed=42)
    counter = iter(range(10**9))
    benchmark(lambda: experiment.run_trial(next(counter)))
