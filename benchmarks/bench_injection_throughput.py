"""Injection fast paths — prefix-cache, batching, and shared-store throughput.

Three gated speedups and one gated memory check share this module:

* **Scalar prefix cache** — ``Supervisor.run_one`` with the snapshot
  cache on vs off for every registered injection benchmark, exactly the
  PR-4 bench.  Disabling the cache must cost at least
  ``MIN_SCALAR_SPEEDUP`` overall.
* **Vectorized batching** — ``BatchRunner.run_many`` (plus the scalar
  fallback for members it declines) vs a pure ``run_one`` loop over the
  same runs, both sides with the prefix cache on, so the ratio isolates
  the batching win.  Floor: ``MIN_BATCHED_SPEEDUP`` aggregate.
* **Full fast path** — the configuration a campaign actually runs
  (prefix cache + shared-memory store + vectorized batching) against
  the no-fast-path baseline (snapshots off, scalar ``run_one``), all
  three sides interleaved and measured on the same run plan.  Floor:
  ``MIN_FULL_SPEEDUP`` aggregate.
* **Per-worker RSS flatness** — a shared segment is published at a
  sparse and a dense snapshot cadence and a fresh attacher process maps
  each, restores a prefix, and reports its resident set.  Because
  restores are copy-on-write views, the attacher's RSS must not scale
  with the snapshot-set size: the dense/sparse ratio is capped at
  ``MAX_RSS_RATIO`` even though the dense store holds several times the
  payload bytes.

The batched sweep runs under a live metrics registry and the artifact
reports each benchmark's fallback fraction derived from the
``repro_batch_fallback_total`` / ``repro_batch_runs_total`` counters —
the same families a campaign exports.

Timings use ``time.process_time`` with the sides interleaved and a
median over ``REPS`` so a loaded runner inflates no side: CPU time
ignores scheduling gaps, interleaving exposes every path to the same
frequency-boost phases, and the median discards the odd perturbed rep.
The numbers land in
``benchmarks/out/BENCH_injection_throughput.json`` via
``register_artifact_json`` so CI can chart the fast paths across
commits.

Run as a script to enforce the floors from CI::

    python benchmarks/bench_injection_throughput.py --floor 6.0

The process exits nonzero when any aggregate lands below its floor.
"""

import argparse
import os
import statistics
import subprocess
import sys
import time
from collections.abc import Sequence
from dataclasses import fields, is_dataclass
from typing import Any

import numpy as np

from repro.benchmarks.registry import INJECTION_BENCHMARKS, create
from repro.carolfi import shmstore
from repro.carolfi.batchrunner import BatchRunner
from repro.carolfi.isolation import rss_bytes
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.telemetry import NOOP_TRACER, activate
from repro.telemetry.metrics import MetricsRegistry

from _artifacts import register_artifact, register_artifact_json

#: Injections timed per (benchmark, mode) in the scalar cache sweep.
#: Heavy kernels (clamr) run ~10ms/injection on the slow path, so the
#: sweep stays under a minute.
RUNS_PER_MODE = 40

#: Injections per benchmark in the batched sweep.  Large enough for
#: three full-width groups at ``BATCH_SIZE`` so the stacked kernels
#: amortise their setup, small enough to keep the sweep under a minute.
BATCHED_RUNS = 192

#: Batch width for the throughput measurement.  Wider than the
#: campaign default (8): the bench measures the kernels' amortisation
#: ceiling, not a shard-friendly operating point.
BATCH_SIZE = 64

#: Median-of reps per timed side.
REPS = 3

SEED = 2017

#: The bench fails if disabling the cache costs less than this overall:
#: a silent fall-back to full replays is a performance regression.  The
#: gate is deliberately below the ~1.5-2x measured locally so it flags
#: the regression without flaking on a loaded CI runner.
MIN_SCALAR_SPEEDUP = 1.2

#: Aggregate floor for the vectorized batch path over the cache-on
#: scalar loop.  Locally the sweep measures ~3.0-3.4x under load and
#: more on a quiet machine.
MIN_BATCHED_SPEEDUP = 2.5

#: Aggregate floor for the full fast path (cache + shared store +
#: batching) over the no-fast-path baseline.  Locally the sweep
#: measures ~7.5-8x; the CI gate runs at 6.0 so a genuine regression
#: in either layer trips it while runner noise does not.
MIN_FULL_SPEEDUP = 6.0

#: Cap on attacher-RSS growth between the sparse and the dense shared
#: store.  The dense store holds several times the snapshot payload;
#: copy-on-write restores keep the worker's resident set flat.
MAX_RSS_RATIO = 1.10

#: Snapshot cadences for the RSS-flatness probe, and the probe's
#: benchmark geometry (big enough that the dense store's extra payload
#: dwarfs the RSS noise floor, small enough to publish in seconds).
PROBE_DENSITIES = {"sparse": 2, "dense": 12}
PROBE_BENCHMARK = "hotspot"
PROBE_PARAMS = {"rows": 256, "cols": 256, "iterations": 120}

_MODELS = FaultModel.all()


def _rate(supervisor: Supervisor) -> float:
    start = time.perf_counter()
    for run in range(RUNS_PER_MODE):
        supervisor.run_one(run, _MODELS[run % len(_MODELS)])
    return RUNS_PER_MODE / (time.perf_counter() - start)


def scalar_sweep() -> tuple[dict[str, dict[str, float]], float]:
    """Cache-on vs cache-off rates for every injection benchmark."""
    per_bench: dict[str, dict[str, float]] = {}
    for name in INJECTION_BENCHMARKS:
        fast = Supervisor(create(name), seed=SEED, snapshots=True)
        slow = Supervisor(create(name), seed=SEED, snapshots=False)
        rate_fast = _rate(fast)
        rate_slow = _rate(slow)
        per_bench[name] = {
            "runs_per_sec_cache_on": rate_fast,
            "runs_per_sec_cache_off": rate_slow,
            "speedup": rate_fast / rate_slow,
            "snapshots": float(len(fast.prefix)),
            "total_steps": float(fast.total_steps),
        }
    total_fast = sum(1.0 / row["runs_per_sec_cache_on"] for row in per_bench.values())
    total_slow = sum(1.0 / row["runs_per_sec_cache_off"] for row in per_bench.values())
    return per_bench, total_slow / total_fast


def _batched_runs() -> list[tuple[int, FaultModel]]:
    return [(run, _MODELS[run % len(_MODELS)]) for run in range(BATCHED_RUNS)]


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _time_scalar_once(supervisor: Supervisor) -> float:
    start = time.process_time()
    for run, model in _batched_runs():
        supervisor.run_one(run, model)
    return time.process_time() - start


def _time_batched_once(supervisor: Supervisor) -> tuple[float, int]:
    start = time.process_time()
    runner = BatchRunner(supervisor, BATCH_SIZE)
    records = runner.run_many(_batched_runs())
    fallbacks = 0
    for run, model in _batched_runs():
        if run not in records:
            supervisor.run_one(run, model)
            fallbacks += 1
    return time.process_time() - start, fallbacks


def _fallback_fractions(registry: MetricsRegistry) -> dict[str, float]:
    """Per-benchmark fallback share from the live batch-path counters.

    ``repro_batch_runs_total{benchmark, path}`` counts every run the
    batch runner finished (``vectorized``) or declined (``fallback``);
    the ratio is the fraction of the campaign's runs that will not see
    the vectorized win.
    """
    per: dict[str, dict[str, float]] = {}
    for key, value in registry.counter_values().get("repro_batch_runs_total", {}).items():
        labels = dict(part.split("=", 1) for part in key.split(",") if "=" in part)
        per.setdefault(labels.get("benchmark", "?"), {})[labels.get("path", "?")] = value
    out: dict[str, float] = {}
    for name, paths in per.items():
        total = paths.get("vectorized", 0.0) + paths.get("fallback", 0.0)
        out[name] = paths.get("fallback", 0.0) / total if total else 0.0
    return out


def batched_sweep() -> tuple[dict[str, dict[str, float]], float, float]:
    """Batched vs cache-on scalar vs no-fast-path scalar suffixes.

    Returns per-benchmark rows plus two aggregates: batched over
    cache-on scalar (the batching win in isolation) and batched over
    the no-fast-path baseline (the full fast path a campaign gets).
    """
    per_bench: dict[str, dict[str, float]] = {}
    total_scalar = 0.0
    total_batched = 0.0
    total_nocache = 0.0
    registry = MetricsRegistry()
    with activate(registry, NOOP_TRACER):
        for name in INJECTION_BENCHMARKS:
            bench = create(name)
            if not bench.supports_batching:
                continue
            # The fast side is the real campaign configuration: prefix
            # cache plus the host-wide shared-memory store (restores are
            # copy-on-write mappings of the published segment).
            supervisor = Supervisor(bench, seed=SEED, snapshots=True, shared=True)
            nocache = Supervisor(create(name), seed=SEED, snapshots=False)
            # Warm the snapshot store the way a campaign's golden pass would.
            for run, model in _batched_runs()[:4]:
                supervisor.run_one(run, model)
            # Alternate the sides inside each rep so frequency-boost
            # phases and cache state hit all of them equally, then take
            # medians: one boosted rep skews a best-of measurement
            # toward whichever side it happened to land on.
            scalar_reps: list[float] = []
            batched_reps: list[float] = []
            nocache_reps: list[float] = []
            fallbacks = 0
            for _ in range(REPS):
                nocache_reps.append(_time_scalar_once(nocache))
                scalar_reps.append(_time_scalar_once(supervisor))
                rep, fallbacks = _time_batched_once(supervisor)
                batched_reps.append(rep)
            scalar = _median(scalar_reps)
            batched = _median(batched_reps)
            slow = _median(nocache_reps)
            total_scalar += scalar
            total_batched += batched
            total_nocache += slow
            per_bench[name] = {
                "nocache_seconds": slow,
                "scalar_seconds": scalar,
                "batched_seconds": batched,
                "speedup": scalar / batched,
                "full_speedup": slow / batched,
                "fallback_runs": float(fallbacks),
                "runs": float(BATCHED_RUNS),
            }
    shmstore.release_published()
    for name, fraction in _fallback_fractions(registry).items():
        if name in per_bench:
            per_bench[name]["fallback_fraction"] = fraction
    return per_bench, total_scalar / total_batched, total_nocache / total_batched


def _touch(node: Any) -> int:
    """Fault a restored state's array pages into the resident set."""
    if isinstance(node, np.ndarray):
        if node.size == 0:
            return 0
        flat = np.ascontiguousarray(node).reshape(-1).view(np.uint8)
        return int(flat[:: 1024].sum())
    if is_dataclass(node) and not isinstance(node, type):
        return sum(_touch(getattr(node, f.name)) for f in fields(node))
    if isinstance(node, dict):
        return sum(_touch(v) for v in node.values())
    if isinstance(node, (list, tuple)):
        return sum(_touch(v) for v in node)
    if hasattr(node, "__dict__"):
        return sum(_touch(v) for v in vars(node).values())
    return 0


def _attach_probe_main(key: str) -> int:
    """Child side of the RSS probe: attach, restore, report RSS.

    Mimics one worker's steady state — map the host segment, restore
    the pristine input and one mid-trajectory snapshot as copy-on-write
    views, touch every page a restore hands out — then print the
    resident set in bytes.  Exits nonzero if the segment is missing.
    """
    segment = shmstore.attach(key)
    if segment is None:
        return 2
    steps = segment.snapshot_steps
    sink = _touch(segment.materialize(None))
    if steps:
        sink += _touch(segment.materialize(steps[len(steps) // 2]))
    rss = rss_bytes(os.getpid())
    if rss is None or sink < 0:
        return 3
    print(rss)
    return 0


def _attacher_rss(key: str) -> float | None:
    """Median RSS of fresh attacher processes mapped to ``key``."""
    samples: list[float] = []
    for _ in range(3):
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--attach-probe", key],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return None
        samples.append(float(proc.stdout.split()[0]))
    return statistics.median(samples)


def memory_sweep() -> dict[str, Any]:
    """Attacher RSS at a sparse vs a dense snapshot cadence.

    Publishes the probe benchmark's golden prefix at both densities
    (distinct store keys), has fresh processes attach and restore from
    each, and reports payload sizes and worker RSS.  Returns an empty
    dict when shared memory is unavailable (``REPRO_SHM=0`` or no
    writable segment directory) — the floors then skip the check.
    """
    if not shmstore.shm_enabled():
        return {}
    out: dict[str, Any] = {}
    try:
        for label, density in PROBE_DENSITIES.items():
            supervisor = Supervisor(
                create(PROBE_BENCHMARK, **PROBE_PARAMS),
                seed=SEED,
                snapshots=True,
                snapshot_density=density,
                shared=True,
            )
            segment = supervisor._shm
            if segment is None:
                return {}
            rss = _attacher_rss(segment.key)
            if rss is None:
                return {}
            out[label] = {
                "snapshots": float(len(segment.snapshot_steps)),
                "payload_mb": segment.payload_bytes / (1 << 20),
                "worker_rss_mb": rss / (1 << 20),
            }
    finally:
        shmstore.release_published()
    out["rss_ratio"] = out["dense"]["worker_rss_mb"] / out["sparse"]["worker_rss_mb"]
    return out


def _render(
    scalar: dict[str, dict[str, float]],
    scalar_aggregate: float,
    batched: dict[str, dict[str, float]],
    batched_aggregate: float,
    full_aggregate: float,
    memory: dict[str, Any],
) -> str:
    lines = ["benchmark  cache on/s  cache off/s  speedup  snapshots"]
    for name, row in sorted(scalar.items()):
        lines.append(
            f"{name:>9}  {row['runs_per_sec_cache_on']:>10.1f}  "
            f"{row['runs_per_sec_cache_off']:>11.1f}  "
            f"{row['speedup']:>6.2f}x  {int(row['snapshots']):>9}"
        )
    lines.append(f"aggregate prefix-cache speedup: {scalar_aggregate:.2f}x")
    lines.append("")
    lines.append("benchmark  nocache s  scalar s  batched s  batch-x   full-x  fallback")
    for name, row in sorted(batched.items()):
        fraction = row.get("fallback_fraction", 0.0)
        lines.append(
            f"{name:>9}  {row['nocache_seconds']:>9.3f}  {row['scalar_seconds']:>8.3f}  "
            f"{row['batched_seconds']:>9.3f}  {row['speedup']:>6.2f}x  "
            f"{row['full_speedup']:>6.2f}x  {fraction:>7.1%}"
        )
    lines.append(
        f"aggregate batched speedup (batch {BATCH_SIZE}, median of {REPS}): "
        f"{batched_aggregate:.2f}x"
    )
    lines.append(
        f"aggregate full fast path (cache + shared store + batching): "
        f"{full_aggregate:.2f}x"
    )
    if memory:
        lines.append("")
        lines.append("store    snapshots  payload MB  worker RSS MB")
        for label in ("sparse", "dense"):
            row = memory[label]
            lines.append(
                f"{label:>6}  {int(row['snapshots']):>9}  {row['payload_mb']:>10.1f}  "
                f"{row['worker_rss_mb']:>13.1f}"
            )
        lines.append(
            f"attacher RSS ratio (dense/sparse): {memory['rss_ratio']:.3f} "
            f"(cap {MAX_RSS_RATIO})"
        )
    return "\n".join(lines)


def _publish(
    scalar: dict[str, dict[str, float]],
    scalar_aggregate: float,
    batched: dict[str, dict[str, float]],
    batched_aggregate: float,
    full_aggregate: float,
    memory: dict[str, Any],
) -> str:
    text = _render(
        scalar, scalar_aggregate, batched, batched_aggregate, full_aggregate, memory
    )
    register_artifact("injection_throughput", text)
    register_artifact_json(
        "injection_throughput",
        {
            "runs_per_mode": RUNS_PER_MODE,
            "batched_runs": BATCHED_RUNS,
            "batch_size": BATCH_SIZE,
            "reps": REPS,
            "seed": SEED,
            "per_benchmark": scalar,
            "aggregate_speedup": scalar_aggregate,
            "batched_per_benchmark": batched,
            "batched_aggregate_speedup": batched_aggregate,
            "full_aggregate_speedup": full_aggregate,
            "memory": memory,
        },
    )
    return text


def test_injection_throughput(benchmark):
    scalar, scalar_aggregate = scalar_sweep()
    batched, batched_aggregate, full_aggregate = batched_sweep()
    memory = memory_sweep()
    _publish(scalar, scalar_aggregate, batched, batched_aggregate, full_aggregate, memory)

    for name, row in scalar.items():
        benchmark.extra_info[f"speedup_{name}"] = row["speedup"]
    for name, row in batched.items():
        benchmark.extra_info[f"batched_speedup_{name}"] = row["speedup"]
        benchmark.extra_info[f"full_speedup_{name}"] = row["full_speedup"]
    benchmark.extra_info["aggregate_speedup"] = scalar_aggregate
    benchmark.extra_info["batched_aggregate_speedup"] = batched_aggregate
    benchmark.extra_info["full_aggregate_speedup"] = full_aggregate
    if memory:
        benchmark.extra_info["rss_ratio"] = memory["rss_ratio"]

    assert scalar_aggregate >= MIN_SCALAR_SPEEDUP, (
        f"prefix cache speedup {scalar_aggregate:.2f}x below the "
        f"{MIN_SCALAR_SPEEDUP}x floor — fast path regressed"
    )
    assert batched_aggregate >= MIN_BATCHED_SPEEDUP, (
        f"batched speedup {batched_aggregate:.2f}x below the "
        f"{MIN_BATCHED_SPEEDUP}x floor — vectorized path regressed"
    )
    assert full_aggregate >= MIN_FULL_SPEEDUP, (
        f"full fast path {full_aggregate:.2f}x below the "
        f"{MIN_FULL_SPEEDUP}x floor — cache/shared-store/batching regressed"
    )
    if memory:
        assert memory["rss_ratio"] <= MAX_RSS_RATIO, (
            f"attacher RSS grew {memory['rss_ratio']:.3f}x between sparse and "
            f"dense stores — per-worker memory is scaling with the snapshot set"
        )

    # Time one cache-on injection sweep as the tracked number.
    supervisor = Supervisor(create("dgemm"), seed=SEED, snapshots=True)
    benchmark.pedantic(lambda: _rate(supervisor), rounds=3, iterations=1)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--floor",
        type=float,
        default=MIN_FULL_SPEEDUP,
        help="minimum aggregate full-fast-path speedup (default %(default)s)",
    )
    parser.add_argument(
        "--batched-floor",
        type=float,
        default=MIN_BATCHED_SPEEDUP,
        help="minimum aggregate batched-vs-scalar speedup (default %(default)s)",
    )
    parser.add_argument(
        "--scalar-floor",
        type=float,
        default=MIN_SCALAR_SPEEDUP,
        help="minimum aggregate cache-on-vs-off speedup (default %(default)s)",
    )
    parser.add_argument(
        "--rss-cap",
        type=float,
        default=MAX_RSS_RATIO,
        help="maximum dense/sparse attacher RSS ratio (default %(default)s)",
    )
    parser.add_argument(
        "--attach-probe",
        metavar="KEY",
        default=None,
        help=argparse.SUPPRESS,  # internal: child side of the RSS probe
    )
    args = parser.parse_args(argv)
    if args.attach_probe is not None:
        return _attach_probe_main(args.attach_probe)

    scalar, scalar_aggregate = scalar_sweep()
    batched, batched_aggregate, full_aggregate = batched_sweep()
    memory = memory_sweep()
    print(
        _publish(
            scalar, scalar_aggregate, batched, batched_aggregate, full_aggregate, memory
        )
    )

    status = 0
    if scalar_aggregate < args.scalar_floor:
        print(
            f"FAIL: prefix cache speedup {scalar_aggregate:.2f}x "
            f"below the {args.scalar_floor}x floor"
        )
        status = 1
    if batched_aggregate < args.batched_floor:
        print(
            f"FAIL: batched speedup {batched_aggregate:.2f}x "
            f"below the {args.batched_floor}x floor"
        )
        status = 1
    if full_aggregate < args.floor:
        print(
            f"FAIL: full fast path {full_aggregate:.2f}x "
            f"below the {args.floor}x floor"
        )
        status = 1
    if memory and memory["rss_ratio"] > args.rss_cap:
        print(
            f"FAIL: attacher RSS ratio {memory['rss_ratio']:.3f} exceeds the "
            f"{args.rss_cap} cap — worker memory scales with the snapshot set"
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
