"""Injection fast path — runs/sec with the prefix snapshot cache on vs off.

Times ``Supervisor.run_one`` directly (construction, and hence the
golden run and snapshot-capture pass, stays outside the timed region)
for every registered injection benchmark at its default parameters.
The per-benchmark rates and the aggregate speedup land in
``benchmarks/out/BENCH_injection_throughput.json`` via
``register_artifact_json`` so CI can chart the fast path's win across
commits; ``benchmark.extra_info`` mirrors them into the pytest-benchmark
export.

The aggregate gate is deliberately below the ~1.5-2x measured locally:
the bench must flag a regression that disables the cache without
flaking on a loaded CI runner.
"""

import time

from repro.benchmarks.registry import INJECTION_BENCHMARKS, create
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel

from _artifacts import register_artifact, register_artifact_json

#: Injections timed per (benchmark, mode).  Heavy kernels (clamr) run
#: ~10ms/injection on the slow path, so the sweep stays under a minute.
RUNS_PER_MODE = 40

SEED = 2017

#: The bench fails if disabling the cache costs less than this overall:
#: a silent fall-back to full replays is a performance regression.
MIN_AGGREGATE_SPEEDUP = 1.2


def _rate(supervisor: Supervisor) -> float:
    models = FaultModel.all()
    start = time.perf_counter()
    for run in range(RUNS_PER_MODE):
        supervisor.run_one(run, models[run % len(models)])
    return RUNS_PER_MODE / (time.perf_counter() - start)


def test_injection_throughput(benchmark):
    per_bench: dict[str, dict[str, float]] = {}
    for name in INJECTION_BENCHMARKS:
        fast = Supervisor(create(name), seed=SEED, snapshots=True)
        slow = Supervisor(create(name), seed=SEED, snapshots=False)
        rate_fast = _rate(fast)
        rate_slow = _rate(slow)
        per_bench[name] = {
            "runs_per_sec_cache_on": rate_fast,
            "runs_per_sec_cache_off": rate_slow,
            "speedup": rate_fast / rate_slow,
            "snapshots": float(len(fast.prefix)),
            "total_steps": float(fast.total_steps),
        }

    total_fast = sum(1.0 / row["runs_per_sec_cache_on"] for row in per_bench.values())
    total_slow = sum(1.0 / row["runs_per_sec_cache_off"] for row in per_bench.values())
    aggregate = total_slow / total_fast

    lines = ["benchmark  cache on/s  cache off/s  speedup  snapshots"]
    for name, row in sorted(per_bench.items()):
        lines.append(
            f"{name:>9}  {row['runs_per_sec_cache_on']:>10.1f}  "
            f"{row['runs_per_sec_cache_off']:>11.1f}  "
            f"{row['speedup']:>6.2f}x  {int(row['snapshots']):>9}"
        )
    lines.append(f"aggregate wall-clock speedup: {aggregate:.2f}x")
    register_artifact("injection_throughput", "\n".join(lines))
    register_artifact_json(
        "injection_throughput",
        {
            "runs_per_mode": RUNS_PER_MODE,
            "seed": SEED,
            "per_benchmark": per_bench,
            "aggregate_speedup": aggregate,
        },
    )
    for name, row in per_bench.items():
        benchmark.extra_info[f"speedup_{name}"] = row["speedup"]
    benchmark.extra_info["aggregate_speedup"] = aggregate

    assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
        f"prefix cache speedup {aggregate:.2f}x below the "
        f"{MIN_AGGREGATE_SPEEDUP}x floor — fast path regressed"
    )

    # Time one cache-on injection sweep as the tracked number.
    supervisor = Supervisor(create("dgemm"), seed=SEED, snapshots=True)
    benchmark.pedantic(lambda: _rate(supervisor), rounds=3, iterations=1)
