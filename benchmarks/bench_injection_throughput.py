"""Injection fast paths — prefix-cache and vectorized-batch throughput.

Two gated measurements share this module:

* **Scalar prefix cache** — ``Supervisor.run_one`` with the snapshot
  cache on vs off for every registered injection benchmark, exactly the
  PR-4 bench.  Disabling the cache must cost at least
  ``MIN_SCALAR_SPEEDUP`` overall.
* **Vectorized batching** — ``BatchRunner.run_many`` (plus the scalar
  fallback for members it declines) vs a pure ``run_one`` loop over the
  same runs, for every benchmark with ``supports_batching``.  The
  batched path must deliver at least ``MIN_BATCHED_SPEEDUP`` aggregate
  over the scalar baseline; both paths use the prefix cache, so the
  ratio isolates the batching win.

Timings use ``time.process_time`` with the two sides interleaved and a
median over ``REPS`` so a loaded runner inflates neither side: CPU time
ignores scheduling gaps, interleaving exposes both paths to the same
frequency-boost phases, and the median discards the odd perturbed rep.
The numbers land in
``benchmarks/out/BENCH_injection_throughput.json`` via
``register_artifact_json`` so CI can chart both fast paths across
commits.

Run as a script to enforce the floors from CI::

    python benchmarks/bench_injection_throughput.py --floor 3.0 --scalar-floor 1.2

The process exits nonzero when either aggregate lands below its floor.
"""

import argparse
import sys
import time
from collections.abc import Sequence

from repro.benchmarks.registry import INJECTION_BENCHMARKS, create
from repro.carolfi.batchrunner import BatchRunner
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel

from _artifacts import register_artifact, register_artifact_json

#: Injections timed per (benchmark, mode) in the scalar cache sweep.
#: Heavy kernels (clamr) run ~10ms/injection on the slow path, so the
#: sweep stays under a minute.
RUNS_PER_MODE = 40

#: Injections per benchmark in the batched sweep.  Large enough for
#: three full-width groups at ``BATCH_SIZE`` so the stacked kernels
#: amortise their setup, small enough to keep the sweep under a minute.
BATCHED_RUNS = 192

#: Batch width for the throughput measurement.  Wider than the
#: campaign default (8): the bench measures the kernels' amortisation
#: ceiling, not a shard-friendly operating point.
BATCH_SIZE = 64

#: Median-of reps per timed side.
REPS = 3

SEED = 2017

#: The bench fails if disabling the cache costs less than this overall:
#: a silent fall-back to full replays is a performance regression.  The
#: gate is deliberately below the ~1.5-2x measured locally so it flags
#: the regression without flaking on a loaded CI runner.
MIN_SCALAR_SPEEDUP = 1.2

#: Aggregate floor for the vectorized batch path (issue acceptance:
#: >= 3x over the scalar injection loop).  Locally the sweep measures
#: ~3.0-3.4x under load and more on a quiet machine; interleaved
#: process-time medians keep the measurement stable.
MIN_BATCHED_SPEEDUP = 3.0

_MODELS = FaultModel.all()


def _rate(supervisor: Supervisor) -> float:
    start = time.perf_counter()
    for run in range(RUNS_PER_MODE):
        supervisor.run_one(run, _MODELS[run % len(_MODELS)])
    return RUNS_PER_MODE / (time.perf_counter() - start)


def scalar_sweep() -> tuple[dict[str, dict[str, float]], float]:
    """Cache-on vs cache-off rates for every injection benchmark."""
    per_bench: dict[str, dict[str, float]] = {}
    for name in INJECTION_BENCHMARKS:
        fast = Supervisor(create(name), seed=SEED, snapshots=True)
        slow = Supervisor(create(name), seed=SEED, snapshots=False)
        rate_fast = _rate(fast)
        rate_slow = _rate(slow)
        per_bench[name] = {
            "runs_per_sec_cache_on": rate_fast,
            "runs_per_sec_cache_off": rate_slow,
            "speedup": rate_fast / rate_slow,
            "snapshots": float(len(fast.prefix)),
            "total_steps": float(fast.total_steps),
        }
    total_fast = sum(1.0 / row["runs_per_sec_cache_on"] for row in per_bench.values())
    total_slow = sum(1.0 / row["runs_per_sec_cache_off"] for row in per_bench.values())
    return per_bench, total_slow / total_fast


def _batched_runs() -> list[tuple[int, FaultModel]]:
    return [(run, _MODELS[run % len(_MODELS)]) for run in range(BATCHED_RUNS)]


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _time_scalar_once(supervisor: Supervisor) -> float:
    start = time.process_time()
    for run, model in _batched_runs():
        supervisor.run_one(run, model)
    return time.process_time() - start


def _time_batched_once(supervisor: Supervisor) -> tuple[float, int]:
    start = time.process_time()
    runner = BatchRunner(supervisor, BATCH_SIZE)
    records = runner.run_many(_batched_runs())
    fallbacks = 0
    for run, model in _batched_runs():
        if run not in records:
            supervisor.run_one(run, model)
            fallbacks += 1
    return time.process_time() - start, fallbacks


def batched_sweep() -> tuple[dict[str, dict[str, float]], float]:
    """Batched vs scalar injection suffixes, prefix cache on for both."""
    per_bench: dict[str, dict[str, float]] = {}
    total_scalar = 0.0
    total_batched = 0.0
    for name in INJECTION_BENCHMARKS:
        bench = create(name)
        if not bench.supports_batching:
            continue
        supervisor = Supervisor(bench, seed=SEED, snapshots=True)
        # Warm the snapshot store the way a campaign's golden pass would.
        for run, model in _batched_runs()[:4]:
            supervisor.run_one(run, model)
        # Alternate the two sides inside each rep so frequency-boost
        # phases and cache state hit both equally, then take medians:
        # one boosted rep skews a best-of measurement toward whichever
        # side it happened to land on.
        scalar_reps: list[float] = []
        batched_reps: list[float] = []
        fallbacks = 0
        for _ in range(REPS):
            scalar_reps.append(_time_scalar_once(supervisor))
            rep, fallbacks = _time_batched_once(supervisor)
            batched_reps.append(rep)
        scalar = _median(scalar_reps)
        batched = _median(batched_reps)
        total_scalar += scalar
        total_batched += batched
        per_bench[name] = {
            "scalar_seconds": scalar,
            "batched_seconds": batched,
            "speedup": scalar / batched,
            "fallback_runs": float(fallbacks),
            "runs": float(BATCHED_RUNS),
        }
    return per_bench, total_scalar / total_batched


def _render(
    scalar: dict[str, dict[str, float]],
    scalar_aggregate: float,
    batched: dict[str, dict[str, float]],
    batched_aggregate: float,
) -> str:
    lines = ["benchmark  cache on/s  cache off/s  speedup  snapshots"]
    for name, row in sorted(scalar.items()):
        lines.append(
            f"{name:>9}  {row['runs_per_sec_cache_on']:>10.1f}  "
            f"{row['runs_per_sec_cache_off']:>11.1f}  "
            f"{row['speedup']:>6.2f}x  {int(row['snapshots']):>9}"
        )
    lines.append(f"aggregate prefix-cache speedup: {scalar_aggregate:.2f}x")
    lines.append("")
    lines.append("benchmark  scalar s  batched s  speedup  fallbacks")
    for name, row in sorted(batched.items()):
        lines.append(
            f"{name:>9}  {row['scalar_seconds']:>8.3f}  {row['batched_seconds']:>9.3f}  "
            f"{row['speedup']:>6.2f}x  {int(row['fallback_runs']):>4}/{int(row['runs'])}"
        )
    lines.append(
        f"aggregate batched speedup (batch {BATCH_SIZE}, median of {REPS}): "
        f"{batched_aggregate:.2f}x"
    )
    return "\n".join(lines)


def _publish(
    scalar: dict[str, dict[str, float]],
    scalar_aggregate: float,
    batched: dict[str, dict[str, float]],
    batched_aggregate: float,
) -> str:
    text = _render(scalar, scalar_aggregate, batched, batched_aggregate)
    register_artifact("injection_throughput", text)
    register_artifact_json(
        "injection_throughput",
        {
            "runs_per_mode": RUNS_PER_MODE,
            "batched_runs": BATCHED_RUNS,
            "batch_size": BATCH_SIZE,
            "reps": REPS,
            "seed": SEED,
            "per_benchmark": scalar,
            "aggregate_speedup": scalar_aggregate,
            "batched_per_benchmark": batched,
            "batched_aggregate_speedup": batched_aggregate,
        },
    )
    return text


def test_injection_throughput(benchmark):
    scalar, scalar_aggregate = scalar_sweep()
    batched, batched_aggregate = batched_sweep()
    _publish(scalar, scalar_aggregate, batched, batched_aggregate)

    for name, row in scalar.items():
        benchmark.extra_info[f"speedup_{name}"] = row["speedup"]
    for name, row in batched.items():
        benchmark.extra_info[f"batched_speedup_{name}"] = row["speedup"]
    benchmark.extra_info["aggregate_speedup"] = scalar_aggregate
    benchmark.extra_info["batched_aggregate_speedup"] = batched_aggregate

    assert scalar_aggregate >= MIN_SCALAR_SPEEDUP, (
        f"prefix cache speedup {scalar_aggregate:.2f}x below the "
        f"{MIN_SCALAR_SPEEDUP}x floor — fast path regressed"
    )
    assert batched_aggregate >= MIN_BATCHED_SPEEDUP, (
        f"batched speedup {batched_aggregate:.2f}x below the "
        f"{MIN_BATCHED_SPEEDUP}x floor — vectorized path regressed"
    )

    # Time one cache-on injection sweep as the tracked number.
    supervisor = Supervisor(create("dgemm"), seed=SEED, snapshots=True)
    benchmark.pedantic(lambda: _rate(supervisor), rounds=3, iterations=1)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--floor",
        type=float,
        default=MIN_BATCHED_SPEEDUP,
        help="minimum aggregate batched-vs-scalar speedup (default %(default)s)",
    )
    parser.add_argument(
        "--scalar-floor",
        type=float,
        default=MIN_SCALAR_SPEEDUP,
        help="minimum aggregate cache-on-vs-off speedup (default %(default)s)",
    )
    args = parser.parse_args(argv)

    scalar, scalar_aggregate = scalar_sweep()
    batched, batched_aggregate = batched_sweep()
    print(_publish(scalar, scalar_aggregate, batched, batched_aggregate))

    status = 0
    if scalar_aggregate < args.scalar_floor:
        print(
            f"FAIL: prefix cache speedup {scalar_aggregate:.2f}x "
            f"below the {args.scalar_floor}x floor"
        )
        status = 1
    if batched_aggregate < args.floor:
        print(
            f"FAIL: batched speedup {batched_aggregate:.2f}x "
            f"below the {args.floor}x floor"
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
