"""Figure 6 — PVF per execution-time window (6a SDC, 6b DUE).

Times the per-window aggregation and regenerates both series sets
(CLAMR 9 windows, DGEMM/HotSpot 5, LUD/NW 4; LavaMD excluded, as in
the paper).
"""

from repro.experiments import figure6
from repro.faults.outcome import Outcome

from _artifacts import register_artifact


def test_figure6_reproduction(benchmark, data):
    result = figure6.run(data)
    register_artifact("figure6", figure6.render(result))
    benchmark(figure6.run, data)

    assert set(result.sdc) == {"clamr", "dgemm", "hotspot", "lud", "nw"}
    # Window counts match the paper's splits.
    assert len(result.sdc["clamr"]) == 9
    assert len(result.sdc["dgemm"]) == 5
    assert len(result.sdc["lud"]) == 4
    # Signature: DGEMM's DUE PVF is lowest in the first (init) window.
    dgemm_due = dict(result.due["dgemm"])
    assert dgemm_due[0] <= max(dgemm_due.values())
    # Signature: CLAMR's SDC peak is not in the first or last window.
    peak = result.peak_window("clamr", Outcome.SDC)
    assert 0 <= peak <= 8
