"""Section 7 (future work) — hardened-benchmark injection campaigns.

Times one hardened injection test and regenerates the validation table:
unprotected vs hardened outcome shares, detection/correction rates and
measured protection overhead for every benchmark.
"""

from repro.benchmarks.registry import create
from repro.experiments import futurework
from repro.faults.models import FaultModel
from repro.hardening.hardened import HardenedSupervisor

from _artifacts import register_artifact


def test_futurework_reproduction(benchmark, data):
    result = futurework.run(data)
    register_artifact("futurework", futurework.render(result))
    # Timed unit: one hardened injection against DGEMM.
    supervisor = HardenedSupervisor(create("dgemm"), seed=77)
    counter = iter(range(10**9))
    benchmark(lambda: supervisor.run_one(next(counter), FaultModel.RANDOM))

    for name, campaign in result.hardened.items():
        base = result.baseline[name]
        residual = campaign.residual_harmful()
        before = base["sdc"] + base["due"]
        # Hardening never makes things worse...
        assert residual <= before + 0.05, name
        # ...and removes a meaningful share of the harm everywhere but
        # LavaMD, whose exposed data needs full modular replication —
        # exactly the paper's "biggest challenge" verdict (Section 6).
        if before > 0.1 and name != "lavamd":
            assert result.harmful_reduction(name) > 0.2, name
    assert result.harmful_reduction("lavamd") < 0.5  # guards alone cannot fix it
