"""Artifact collection shared by the bench modules.

Rendered paper artifacts are stored here so the conftest's terminal
summary hook can print them after the benchmark tables, and written to
``benchmarks/out/<name>.txt`` for later inspection.
"""

from __future__ import annotations

from pathlib import Path

ARTIFACTS: dict[str, str] = {}
_OUT_DIR = Path(__file__).parent / "out"


def register_artifact(name: str, text: str) -> None:
    """Record a rendered paper artifact for the terminal summary."""
    ARTIFACTS[name] = text
    _OUT_DIR.mkdir(exist_ok=True)
    (_OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
