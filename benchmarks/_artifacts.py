"""Artifact collection shared by the bench modules.

Rendered paper artifacts are stored here so the conftest's terminal
summary hook can print them after the benchmark tables, and written to
``benchmarks/out/<name>.txt`` for later inspection.  Machine-readable
companions go to ``benchmarks/out/BENCH_<name>.json`` so downstream
tooling (trend dashboards, CI comparisons) need not parse the tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

ARTIFACTS: dict[str, str] = {}
_OUT_DIR = Path(__file__).parent / "out"


def register_artifact(name: str, text: str) -> None:
    """Record a rendered paper artifact for the terminal summary."""
    ARTIFACTS[name] = text
    _OUT_DIR.mkdir(exist_ok=True)
    (_OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def register_artifact_json(name: str, payload: dict[str, Any]) -> Path:
    """Write a machine-readable artifact to ``benchmarks/out/BENCH_<name>.json``."""
    _OUT_DIR.mkdir(exist_ok=True)
    path = _OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
