"""Campaign engine scaling — injections/sec at 1/2/4 workers.

Times the sharded campaign engine end-to-end and records the
injections/sec achieved at each worker count (``benchmark.extra_info``
lands in the ``BENCH_*.json`` exports, so the parallel-scaling
trajectory is tracked across commits alongside the timing itself).
Speedup tops out at the machine's core count; on a single-core box the
sweep degenerates to measuring the engine's fan-out overhead, which is
worth tracking too.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.telemetry import Telemetry, TelemetryConfig

from _artifacts import register_artifact, register_artifact_json

WORKER_COUNTS = (1, 2, 4)
BROKER_WORKERS = 2

#: Rate-sweep campaign: dgemm injections are heavy enough (~10ms each)
#: that pool start-up does not swamp the per-worker throughput.
SCALING_CONFIG = CampaignConfig(benchmark="dgemm", injections=96, seed=11)
SCALING_SHARD_SIZE = 8

#: Cheap campaign for the serial-engine-overhead timing loop.
QUICK_CONFIG = CampaignConfig(
    benchmark="nw",
    injections=96,
    seed=11,
    benchmark_params={"n": 24, "rows_per_step": 4},
)


def _rate(workers: int, telemetry: Telemetry | None = None) -> float:
    start = time.perf_counter()
    result = run_campaign(
        SCALING_CONFIG,
        workers=workers,
        shard_size=SCALING_SHARD_SIZE,
        telemetry=telemetry,
    )
    elapsed = time.perf_counter() - start
    assert len(result) == SCALING_CONFIG.injections
    return SCALING_CONFIG.injections / elapsed


def _broker_rate() -> tuple[float, float | None, float | None]:
    """Broker-mode throughput plus heartbeat-RTT p50/p99 over localhost.

    Same campaign as the pool sweep, but executed by real
    ``repro-worker`` subprocesses behind a TCP broker with telemetry
    attached, so the fleet RTT histogram fills in — the latency floor
    the adaptive stealer's coordination-cost estimate rests on.
    """
    from repro.carolfi.engine import campaign_fingerprint, run_sharded_campaign
    from repro.service.broker import BrokerBackend
    from repro.telemetry.metrics import Histogram

    tel = Telemetry(TelemetryConfig())
    broker = BrokerBackend(
        SCALING_CONFIG, campaign_fingerprint(SCALING_CONFIG, SCALING_SHARD_SIZE)
    )
    host, port = broker.address
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker",
             f"{host}:{port}", "--name", f"bench-w{i}", "--once"],
            env=env,
        )
        for i in range(BROKER_WORKERS)
    ]
    try:
        assert broker.wait_for_workers(BROKER_WORKERS, timeout=30.0)
        start = time.perf_counter()
        result = run_sharded_campaign(
            SCALING_CONFIG,
            workers=BROKER_WORKERS,
            shard_size=SCALING_SHARD_SIZE,
            backend=broker,
            telemetry=tel,
        )
        elapsed = time.perf_counter() - start
    finally:
        broker.close()
        for proc in workers:
            proc.wait(timeout=30)
    assert len(result.records) == SCALING_CONFIG.injections
    rtt = next(
        (
            m
            for m in tel.registry.metrics()
            if m.name == "repro_service_heartbeat_rtt_seconds"
            and isinstance(m, Histogram)
        ),
        None,
    )
    p50 = rtt.quantile(0.5) if rtt is not None else None
    p99 = rtt.quantile(0.99) if rtt is not None else None
    return SCALING_CONFIG.injections / elapsed, p50, p99


def test_campaign_scaling(benchmark):
    rates = {w: _rate(w) for w in WORKER_COUNTS}
    # Same campaign with full metrics collection: the gap against the
    # plain serial rate is the telemetry overhead, tracked across commits.
    rate_with_metrics = _rate(1, telemetry=Telemetry(TelemetryConfig()))
    broker_rate, rtt_p50, rtt_p99 = _broker_rate()
    lines = ["workers  injections/sec  speedup"]
    for w in WORKER_COUNTS:
        lines.append(f"{w:>7}  {rates[w]:>14.1f}  {rates[w] / rates[1]:>6.2f}x")
    lines.append(
        f"1 (telemetry on)  {rate_with_metrics:>7.1f}  "
        f"{rate_with_metrics / rates[1]:>6.2f}x"
    )
    fmt_ms = lambda v: "-" if v is None else f"{v * 1000:.2f}ms"  # noqa: E731
    lines.append(
        f"{BROKER_WORKERS} (broker)  {broker_rate:>13.1f}  "
        f"{broker_rate / rates[1]:>6.2f}x  "
        f"rtt p50 {fmt_ms(rtt_p50)} p99 {fmt_ms(rtt_p99)}"
    )
    register_artifact("campaign_scaling", "\n".join(lines))
    register_artifact_json(
        "campaign_scaling",
        {
            "benchmark": SCALING_CONFIG.benchmark,
            "injections": SCALING_CONFIG.injections,
            "shard_size": SCALING_SHARD_SIZE,
            "runs_per_sec": {str(w): rates[w] for w in WORKER_COUNTS},
            "runs_per_sec_serial_telemetry": rate_with_metrics,
            "speedup_4_over_1": rates[4] / rates[1],
            "broker": {
                "workers": BROKER_WORKERS,
                "runs_per_sec": broker_rate,
                "heartbeat_rtt_p50_s": rtt_p50,
                "heartbeat_rtt_p99_s": rtt_p99,
            },
        },
    )
    benchmark.extra_info.update(
        {f"rate_workers_{w}": rates[w] for w in WORKER_COUNTS}
    )
    benchmark.extra_info["rate_serial_telemetry"] = rate_with_metrics
    benchmark.extra_info["rate_broker"] = broker_rate
    if rtt_p50 is not None:
        benchmark.extra_info["broker_rtt_p50_s"] = rtt_p50
    if rtt_p99 is not None:
        benchmark.extra_info["broker_rtt_p99_s"] = rtt_p99
    benchmark.extra_info["speedup_4_over_1"] = rates[4] / rates[1]
    # Time the parallel path itself (pool start-up included).
    benchmark.pedantic(
        lambda: run_campaign(
            SCALING_CONFIG, workers=4, shard_size=SCALING_SHARD_SIZE
        ),
        rounds=1,
        iterations=1,
    )


def test_campaign_serial_engine_overhead(benchmark):
    """The engine's serial path should cost about the same as the legacy loop."""
    result = benchmark.pedantic(
        lambda: run_campaign(QUICK_CONFIG, workers=1, shard_size=8),
        rounds=3,
        iterations=1,
    )
    assert len(result) == QUICK_CONFIG.injections
