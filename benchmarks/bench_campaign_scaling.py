"""Campaign engine scaling — injections/sec at 1/2/4 workers.

Times the sharded campaign engine end-to-end and records the
injections/sec achieved at each worker count (``benchmark.extra_info``
lands in the ``BENCH_*.json`` exports, so the parallel-scaling
trajectory is tracked across commits alongside the timing itself).
Speedup tops out at the machine's core count; on a single-core box the
sweep degenerates to measuring the engine's fan-out overhead, which is
worth tracking too.
"""

import time

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.telemetry import Telemetry, TelemetryConfig

from _artifacts import register_artifact, register_artifact_json

WORKER_COUNTS = (1, 2, 4)

#: Rate-sweep campaign: dgemm injections are heavy enough (~10ms each)
#: that pool start-up does not swamp the per-worker throughput.
SCALING_CONFIG = CampaignConfig(benchmark="dgemm", injections=96, seed=11)
SCALING_SHARD_SIZE = 8

#: Cheap campaign for the serial-engine-overhead timing loop.
QUICK_CONFIG = CampaignConfig(
    benchmark="nw",
    injections=96,
    seed=11,
    benchmark_params={"n": 24, "rows_per_step": 4},
)


def _rate(workers: int, telemetry: Telemetry | None = None) -> float:
    start = time.perf_counter()
    result = run_campaign(
        SCALING_CONFIG,
        workers=workers,
        shard_size=SCALING_SHARD_SIZE,
        telemetry=telemetry,
    )
    elapsed = time.perf_counter() - start
    assert len(result) == SCALING_CONFIG.injections
    return SCALING_CONFIG.injections / elapsed


def test_campaign_scaling(benchmark):
    rates = {w: _rate(w) for w in WORKER_COUNTS}
    # Same campaign with full metrics collection: the gap against the
    # plain serial rate is the telemetry overhead, tracked across commits.
    rate_with_metrics = _rate(1, telemetry=Telemetry(TelemetryConfig()))
    lines = ["workers  injections/sec  speedup"]
    for w in WORKER_COUNTS:
        lines.append(f"{w:>7}  {rates[w]:>14.1f}  {rates[w] / rates[1]:>6.2f}x")
    lines.append(
        f"1 (telemetry on)  {rate_with_metrics:>7.1f}  "
        f"{rate_with_metrics / rates[1]:>6.2f}x"
    )
    register_artifact("campaign_scaling", "\n".join(lines))
    register_artifact_json(
        "campaign_scaling",
        {
            "benchmark": SCALING_CONFIG.benchmark,
            "injections": SCALING_CONFIG.injections,
            "shard_size": SCALING_SHARD_SIZE,
            "runs_per_sec": {str(w): rates[w] for w in WORKER_COUNTS},
            "runs_per_sec_serial_telemetry": rate_with_metrics,
            "speedup_4_over_1": rates[4] / rates[1],
        },
    )
    benchmark.extra_info.update(
        {f"rate_workers_{w}": rates[w] for w in WORKER_COUNTS}
    )
    benchmark.extra_info["rate_serial_telemetry"] = rate_with_metrics
    benchmark.extra_info["speedup_4_over_1"] = rates[4] / rates[1]
    # Time the parallel path itself (pool start-up included).
    benchmark.pedantic(
        lambda: run_campaign(
            SCALING_CONFIG, workers=4, shard_size=SCALING_SHARD_SIZE
        ),
        rounds=1,
        iterations=1,
    )


def test_campaign_serial_engine_overhead(benchmark):
    """The engine's serial path should cost about the same as the legacy loop."""
    result = benchmark.pedantic(
        lambda: run_campaign(QUICK_CONFIG, workers=1, shard_size=8),
        rounds=3,
        iterations=1,
    )
    assert len(result) == QUICK_CONFIG.injections
