"""Ablation — checkpoint interval vs DUE recovery cost.

The paper: reducing DUE rates "can allow lowering the frequency of
checkpointing techniques".  This ablation injects crash-provoking
faults into LUD at random times and sweeps the checkpoint interval,
measuring recovery rate and wasted re-execution per interval.
"""

import numpy as np

from repro.benchmarks.registry import create
from repro.hardening.checkpoint import run_with_checkpoints
from repro.util.rng import derive_rng
from repro.util.tables import format_table

from _artifacts import register_artifact

_RUNS = 40


def _crashy_inject(rng):
    def inject(state):
        block = int(rng.integers(0, state.block_ctl.shape[0]))
        state.block_ctl[block] = (999, -1, 0)

    return inject


def test_checkpoint_interval_ablation(benchmark, data):
    bench = create("lud", n=24, block=4)
    rows = []
    for interval in (1, 2, 3, 6):
        recovered = 0
        wasted = []
        snapshots = []
        for run in range(_RUNS):
            rng = derive_rng(run, "ckpt-ablation", str(interval))
            state = bench.make_state(derive_rng(9, "ckpt-input"))
            step = int(rng.integers(0, bench.num_steps(state)))
            result = run_with_checkpoints(
                bench, state, interval=interval, inject=_crashy_inject(rng), inject_step=step
            )
            if result.recovered or (result.completed and result.failures == 0):
                recovered += 1
            wasted.append(result.wasted_fraction)
            snapshots.append(result.checkpoints_taken)
        rows.append(
            [
                interval,
                100.0 * recovered / _RUNS,
                100.0 * float(np.mean(wasted)),
                float(np.mean(snapshots)),
            ]
        )
    table = format_table(
        ["interval (steps)", "completed %", "wasted work %", "snapshots"],
        rows,
        title=f"ablation: checkpoint interval under crash faults (lud, {_RUNS} runs each)",
        floatfmt=".1f",
    )
    register_artifact("ablation_checkpoint", table)

    # Timed unit: one checkpointed clean run at interval 2.
    state = bench.make_state(derive_rng(9, "ckpt-input"))
    benchmark.pedantic(
        lambda: run_with_checkpoints(
            bench, bench.make_state(derive_rng(9, "ckpt-input")), interval=2
        ),
        rounds=3,
        iterations=1,
    )

    # Everything recovers (transient faults + pristine root snapshot),
    # and sparser checkpoints waste at least as much work on average.
    assert all(row[1] == 100.0 for row in rows)
    assert rows[-1][2] >= rows[0][2] - 5.0