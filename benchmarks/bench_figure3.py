"""Figure 3 — SDC FIT reduction vs tolerated relative error.

Times the tolerance-sweep reclassification over the beam campaigns'
SDC records and regenerates the five Figure 3 curves plus the text
anchors (HotSpot -85% at 0.5%, mantissa-bit saturation).
"""

from repro.experiments import figure3

from _artifacts import register_artifact


def test_figure3_reproduction(benchmark, data):
    result = figure3.run(data)
    register_artifact("figure3", figure3.render(result))
    benchmark(figure3.run, data)
    for name, curve in result.curves.items():
        reductions = [red for _, red in curve]
        assert reductions == sorted(reductions), name
        assert reductions[-1] <= 100.0
    # Every benchmark drops at the smallest tolerance already
    # (paper: "even a small acceptable error margin already decreases
    # the SDC FIT rate of all benchmarks").
    dropped = [result.curves[n][0][1] > 0 for n in result.curves]
    assert sum(dropped) >= 3
