"""Sections 4.3 / 6.1 — ABFT correctability and hardening coverage.

Times the mitigation analysis and regenerates both tables: the
ABFT-correctable share of observed beam SDCs and the coverage of the
paper's recommended selective-hardening plans.
"""

from repro.experiments import mitigation

from _artifacts import register_artifact


def test_mitigation_reproduction(benchmark, data):
    result = mitigation.run(data)
    register_artifact("mitigation", mitigation.render(result))
    benchmark(mitigation.run, data)

    # Paper: most observed DGEMM SDCs are ABFT-correctable.
    dgemm = result.abft["dgemm"]
    if dgemm.sdc_count >= 10:
        assert dgemm.correctable_fraction > 0.4
    # The algebraic plans cover every harmful fault (matrices+control
    # span the whole injectable image).
    assert result.coverage["dgemm"].coverage_fraction > 0.9
    assert result.coverage["lud"].coverage_fraction > 0.9
