"""Ablation — Flip-script site-selection policy (DESIGN.md choice).

The WEIGHTED policy (stack-share split, the default) is a calibration
decision; this ablation reruns a DGEMM campaign under all three
policies and shows how the outcome shares move, quantifying how much
of Figure 4's shape rests on the selection model.
"""

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.flipscript import SitePolicy
from repro.util.tables import format_table

from _artifacts import register_artifact

_INJECTIONS = 240


def _campaign(policy: SitePolicy):
    return run_campaign(
        CampaignConfig(
            benchmark="dgemm", injections=_INJECTIONS, seed=404, policy=policy
        )
    )


def test_policy_ablation(benchmark, data):
    results = {policy: _campaign(policy) for policy in SitePolicy}
    rows = []
    for policy, result in results.items():
        shares = result.outcome_fractions()
        rows.append(
            [
                policy.value,
                100.0 * shares["masked"],
                100.0 * shares["sdc"],
                100.0 * shares["due"],
            ]
        )
    table = format_table(
        ["site policy", "masked %", "sdc %", "due %"],
        rows,
        title=f"ablation: Flip-script site policy (dgemm, {_INJECTIONS} injections)",
        floatfmt=".1f",
    )
    register_artifact("ablation_policies", table)

    # Timed unit: one campaign batch under the default policy.
    benchmark.pedantic(
        lambda: run_campaign(
            CampaignConfig(benchmark="dgemm", injections=24, seed=405)
        ),
        rounds=3,
        iterations=1,
    )

    weighted = results[SitePolicy.WEIGHTED].outcome_fractions()
    footprint = results[SitePolicy.FOOTPRINT].outcome_fractions()
    # Pure footprint selection starves the control/pointer classes, so
    # it must produce fewer DUEs than the stack-aware default.
    assert footprint["due"] < weighted["due"]
