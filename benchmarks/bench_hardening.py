"""Hardening primitive throughput.

The Section 6.1 discussion weighs techniques by overhead; these benches
measure the software overhead of each detector on realistic sizes and
regenerate a small cost/coverage summary table.
"""

import numpy as np

from repro.hardening.abft import abft_check, abft_matmul
from repro.hardening.dwc import DuplicatedVariable
from repro.hardening.parity import ParityProtected
from repro.hardening.residue import ResidueChecker
from repro.hardening.selective import TECHNIQUE_COSTS, Technique, detection_probability
from repro.util.rng import derive_rng
from repro.util.tables import format_table

from _artifacts import register_artifact


def test_abft_verify_clean(benchmark):
    rng = derive_rng(1, "abft-bench")
    a = rng.standard_normal((64, 64))
    b = rng.standard_normal((64, 64))
    c, rs, cs = abft_matmul(a, b)
    result = benchmark(lambda: abft_check(c, rs, cs))
    assert result.outcome.value == "clean"


def test_abft_correct_single(benchmark):
    rng = derive_rng(2, "abft-bench")
    a = rng.standard_normal((64, 64))
    b = rng.standard_normal((64, 64))
    c, rs, cs = abft_matmul(a, b)
    c[10, 20] += 1.0
    result = benchmark(lambda: abft_check(c, rs, cs))
    assert result.outcome.value == "corrected"


def test_residue_check_array(benchmark):
    checker = ResidueChecker(15)
    values = derive_rng(3, "res-bench").integers(0, 2**30, size=4096)
    stored = checker.residue(values)
    assert benchmark(lambda: checker.check(values, stored))


def test_parity_scan(benchmark):
    protected = ParityProtected(
        derive_rng(4, "par-bench").integers(0, 2**30, size=4096).astype(np.int64)
    )
    assert benchmark(protected.check)


def test_dwc_compared_read(benchmark):
    var = DuplicatedVariable(derive_rng(5, "dwc-bench").standard_normal(1024))
    out = benchmark(var.read)
    assert out.shape == (1024,)


def test_technique_summary_table(benchmark):
    def build():
        rows = []
        for technique in Technique:
            mem, time_factor = TECHNIQUE_COSTS[technique]
            rows.append(
                [
                    technique.value,
                    100.0 * mem,
                    time_factor,
                    detection_probability(technique, "single"),
                    detection_probability(technique, "double"),
                    detection_probability(technique, "random"),
                    detection_probability(technique, "zero"),
                ]
            )
        return format_table(
            [
                "technique",
                "mem +%",
                "time x",
                "P(det|single)",
                "P(det|double)",
                "P(det|random)",
                "P(det|zero)",
            ],
            rows,
            title="Section 6.1 — technique cost and per-model detection",
            floatfmt=".2f",
        )

    table = benchmark(build)
    register_artifact("hardening_techniques", table)
    assert "parity" in table
