"""Section 4.2 — Trinity / exascale machine projections.

Times the projection math and regenerates the extrapolation table
(paper: SDC or DUE every 11-12 days at Trinity scale, almost daily at
exascale).
"""

from repro.experiments import extrapolation

from _artifacts import register_artifact


def test_extrapolation_reproduction(benchmark, data):
    result = extrapolation.run(data)
    register_artifact("extrapolation", extrapolation.render(result))
    benchmark(extrapolation.run, data)

    for name, projections in result.trinity.items():
        for outcome, projection in projections.items():
            exa = result.exascale[name][outcome]
            # Exascale is 10x the boards -> 10x shorter MTBF.
            assert abs(projection.mtbf_hours / exa.mtbf_hours - 10.0) < 1e-6
            # Trinity-scale MTBFs land in the paper's days-to-months band.
            assert 0.5 < projection.mtbf_days < 400.0
