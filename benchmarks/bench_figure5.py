"""Figure 5 — PVF per fault model (5a SDC, 5b DUE).

Times the per-model PVF aggregation and regenerates both tables,
asserting the qualitative signatures the paper's text calls out.
"""

from repro.experiments import figure5

from _artifacts import register_artifact


def test_figure5_reproduction(benchmark, data):
    result = figure5.run(data)
    register_artifact("figure5", figure5.render(result))
    benchmark(figure5.run, data)

    # Signature: HotSpot's Single model sits at the low end of the SDC
    # PVFs (small errors dissipate through the stencil); a tolerance of
    # a few points absorbs small-campaign statistics.
    hotspot = result.sdc["hotspot"]
    assert hotspot["single"] <= min(hotspot.values()) + 8.0
    # Signature: Single ~ Double for the algebraic codes.
    for name in ("dgemm", "lud"):
        assert abs(result.sdc[name]["single"] - result.sdc[name]["double"]) < 15.0
    # Signature: the Random model's DUE PVF is at least the Zero
    # model's for the algebraic codes (Random converts SDCs to DUEs).
    for name in ("dgemm", "lud"):
        assert result.due[name]["random"] >= result.due[name]["zero"] - 5.0
