"""Figure 4 — outcomes of fault injections (Masked / SDC / DUE).

Times one CAROL-FI injection test (interrupt, flip, resume, classify)
and regenerates the six-benchmark outcome-share table.
"""

from repro.benchmarks.registry import create
from repro.carolfi.supervisor import Supervisor
from repro.experiments import figure4
from repro.faults.models import FaultModel

from _artifacts import register_artifact


def test_figure4_reproduction(benchmark, data):
    result = figure4.run(data)
    register_artifact("figure4", figure4.render(result))
    benchmark(figure4.run, data)
    assert len(result.shares) == 6
    for name, shares in result.shares.items():
        assert abs(sum(shares.values()) - 1.0) < 1e-9, name
    # CLAMR masks a solid majority, as in the paper.
    assert result.shares["clamr"]["masked"] > 0.5


def test_single_injection_dgemm(benchmark):
    supervisor = Supervisor(create("dgemm"), seed=7)
    counter = iter(range(10**9))
    models = FaultModel.all()
    benchmark(lambda: supervisor.run_one(next(counter), models[next(counter) % 4]))


def test_single_injection_nw(benchmark):
    supervisor = Supervisor(create("nw"), seed=7)
    counter = iter(range(10**9))
    benchmark(lambda: supervisor.run_one(next(counter), FaultModel.SINGLE))
