"""Ablation — SECDED ECC on vs off (DESIGN.md device-model choice).

The paper stresses its FIT rates hold "even if ECC is enabled".  This
ablation reruns a beam campaign on the machine model with ECC disabled:
cache upsets that SECDED would absorb (or convert to detected MCAs)
then reach the program, raising the SDC rate — quantifying what the
protection buys on this device model.
"""

from repro.beam.experiment import BeamExperiment
from repro.faults.outcome import Outcome
from repro.phi.config import PhiConfig
from repro.util.tables import format_table

from _artifacts import register_artifact

_TRIALS = 300


def test_ecc_ablation(benchmark, data):
    on = BeamExperiment("lud", seed=2020).run_campaign(_TRIALS)
    off = BeamExperiment(
        "lud", seed=2020, config=PhiConfig(ecc_enabled=False)
    ).run_campaign(_TRIALS)

    rows = []
    for label, campaign in (("SECDED on", on), ("SECDED off", off)):
        rows.append(
            [
                label,
                campaign.count(Outcome.MASKED),
                campaign.count(Outcome.SDC),
                campaign.count(Outcome.DUE),
                sum(1 for t in campaign.trials if t.effect == "machine_check"),
            ]
        )
    table = format_table(
        ["config", "masked", "sdc", "due", "MCA aborts"],
        rows,
        title=f"ablation: ECC on/off (lud, {_TRIALS} strike trials)",
    )
    register_artifact("ablation_ecc", table)

    # Timed unit: a short campaign with ECC enabled.
    experiment = BeamExperiment("lud", seed=2021)
    benchmark.pedantic(lambda: experiment.run_campaign(20), rounds=3, iterations=1)

    # Without SECDED, single-bit cache upsets reach the program: the
    # SDC count cannot drop, and cache-origin MCA aborts disappear
    # (interconnect protocol errors are detected independently of ECC).
    assert off.count(Outcome.SDC) >= on.count(Outcome.SDC)
    cache_mcas = sum(
        1
        for t in off.trials
        if t.effect == "machine_check" and "cache" in t.due_detail
    )
    assert cache_mcas == 0
