"""Ablation — robustness to the cross-section calibration.

The per-resource sensitivity table is the reproduction's single
calibration artifact (DESIGN.md §2).  This ablation perturbs every
resource's cross section by independent random factors in [0.5, 2.0]
and reruns beam campaigns: the *shape* conclusions (multi-element SDCs
dominate, DUE < SDC for the algebraic codes, FIT magnitudes within the
paper's band) must survive any reasonable re-calibration, otherwise
they would be artifacts of the table rather than of the modelled
physics.
"""

from repro.beam.experiment import BeamExperiment
from repro.beam.fit import estimate_fit
from repro.beam.sensitivity import (
    DEFAULT_SENSITIVITY,
    DeviceSensitivity,
    ResourceSensitivity,
)
from repro.util.rng import derive_rng
from repro.util.tables import format_table

from _artifacts import register_artifact

_TRIALS = 250
_BENCHMARKS = ("dgemm", "lud")


def _perturbed(seed: int) -> DeviceSensitivity:
    rng = derive_rng(seed, "sensitivity-ablation")
    entries = []
    for entry in DEFAULT_SENSITIVITY.entries.values():
        factor = float(rng.uniform(0.5, 2.0))
        entries.append(
            ResourceSensitivity(
                entry.resource, entry.cross_section_cm2 * factor, entry.occupancy
            )
        )
    return DeviceSensitivity(entries)


def test_sensitivity_perturbation_ablation(benchmark, data):
    rows = []
    shapes_hold = []
    for label, table in [("default", DEFAULT_SENSITIVITY)] + [
        (f"perturbed-{seed}", _perturbed(seed)) for seed in (1, 2, 3)
    ]:
        for name in _BENCHMARKS:
            campaign = BeamExperiment(name, seed=3000, sensitivity=table).run_campaign(
                _TRIALS
            )
            report = estimate_fit(campaign)
            sdcs = campaign.sdc_records()
            multi = (
                sum(1 for r in sdcs if r.sdc_metrics.get("pattern") != "single")
                / len(sdcs)
                if sdcs
                else 1.0
            )
            rows.append([label, name, report.sdc.fit, report.due.fit, 100.0 * multi])
            shapes_hold.append(
                report.due.fit <= report.sdc.fit  # algebraic codes: DUE < SDC
                and multi >= 0.5  # multi-element SDCs dominate
                and 5.0 < report.sdc.fit < 600.0  # paper's magnitude band
            )
    table_text = format_table(
        ["table", "benchmark", "SDC FIT", "DUE FIT", "multi-elem %"],
        rows,
        title=f"ablation: cross-section table perturbed x[0.5, 2] ({_TRIALS} trials)",
        floatfmt=".1f",
    )
    register_artifact("ablation_sensitivity", table_text)

    # Timed unit: FIT estimation over one campaign.
    campaign = BeamExperiment("lud", seed=3001).run_campaign(60)
    benchmark(lambda: estimate_fit(campaign))

    assert sum(shapes_hold) >= len(shapes_hold) - 1  # robust, allow one wobble
