"""Extension — per-step fault propagation tracking.

Times one lockstep propagation profile and regenerates the propagation
summary table (spread, compounding, attenuation per benchmark).
"""

from repro.benchmarks.registry import create
from repro.analysis.propagation import propagation_profile
from repro.experiments import propagation
from repro.faults.models import FaultModel

from _artifacts import register_artifact


def test_propagation_reproduction(benchmark, data):
    result = propagation.run(data)
    register_artifact("propagation", propagation.render(result))

    bench = create("lud", n=24, block=4)
    counter = iter(range(10**9))
    benchmark(
        lambda: propagation_profile(
            bench, seed=next(counter), model=FaultModel.RANDOM
        )
    )

    for name, profiles in result.profiles.items():
        assert profiles, name
    # Somebody propagates: the iterative codes produce multi-element
    # corruption in a visible share of profiles.
    lud = result.summary("lud")
    assert lud["grown"] > 0.0
