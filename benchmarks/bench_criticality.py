"""Section 6 — per-benchmark criticality tables.

Times the portion-grouping analysis and regenerates the criticality
table (paper anchors: DGEMM matrices 43/19 and control 38/38, CLAMR
Sort/Tree/others, LUD matrices 54/28, ...).
"""

from repro.experiments import criticality

from _artifacts import register_artifact


def test_criticality_reproduction(benchmark, data):
    result = criticality.run(data)
    register_artifact("criticality", criticality.render(result))
    benchmark(criticality.run, data)

    # Control-portion faults are DUE-prone across the algebraic codes.
    for name in ("dgemm", "lud"):
        by_portion = {r.portion: r for r in result.portions[name]}
        assert by_portion["control"].due.value > 0.15
    # CLAMR's three paper portions are all present.
    clamr_portions = {r.portion for r in result.portions["clamr"]}
    assert clamr_portions == {"sort", "tree", "others"}
