"""Substrate performance: golden runtimes of the six benchmarks.

Campaign throughput is benchmark-runtime bound (one injection = one
full re-execution), so these are the numbers that size every figure's
wall-clock cost.
"""

import pytest

from repro.benchmarks.registry import create, names
from repro.util.rng import derive_rng


@pytest.mark.parametrize("name", names())
def test_golden_run(benchmark, name):
    bench = create(name)
    counter = iter(range(10**9))
    result = benchmark(lambda: bench.golden(derive_rng(next(counter), "kernel")))
    assert result.size > 0


def test_clamr_kdtree_build(benchmark):
    from repro.benchmarks.clamr.kdtree import KdTree

    rng = derive_rng(5, "kd-bench")
    x, y = rng.random(480), rng.random(480)
    tree = benchmark(lambda: KdTree.build(x, y, leaf_size=8))
    assert int(tree.n_nodes[()]) > 1


def test_clamr_neighbour_queries(benchmark):
    from repro.benchmarks.clamr.kdtree import KdTree

    rng = derive_rng(6, "kd-bench")
    x, y = rng.random(480), rng.random(480)
    tree = KdTree.build(x, y, leaf_size=8)
    qx, qy = rng.random(480), rng.random(480)
    found = benchmark(lambda: tree.query_nearest(x, y, qx, qy))
    assert found.shape == (480,)
