"""Shared infrastructure for the reproduction benchmarks.

Every ``bench_*`` module times a core operation with pytest-benchmark
*and* regenerates its paper artifact (figure series / table rows).
Rendered artifacts are written to ``benchmarks/out/<name>.txt`` and
echoed into the terminal summary, so ``pytest benchmarks/
--benchmark-only`` prints the paper-vs-measured rows for every figure
and table.

Campaign sizes scale with ``REPRO_BENCH_SCALE`` (default 0.25; 1.0
reproduces the full statistics, 0.05 is a smoke run).
"""

from __future__ import annotations

import os

import pytest

from _artifacts import ARTIFACTS
from repro.experiments.data import ExperimentData


@pytest.fixture(scope="session")
def data() -> ExperimentData:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    # REPRO_WORKERS > 1 runs the injection campaigns on the sharded
    # parallel engine; the default stays serial so timings are stable.
    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    return ExperimentData(seed=2017, scale=scale, workers=workers)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not ARTIFACTS:
        return
    tr = terminalreporter
    tr.section("paper reproduction artifacts")
    for name in sorted(ARTIFACTS):
        tr.write_line("")
        tr.write_line(f"==== {name} " + "=" * max(0, 66 - len(name)))
        for line in ARTIFACTS[name].splitlines():
            tr.write_line(line)
