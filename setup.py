"""Legacy setuptools shim.

Kept so ``pip install -e .`` works on minimal offline environments
whose setuptools lacks PEP 660 editable-wheel support; all project
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
