#!/usr/bin/env python
"""A simulated day at the LANSCE beam line.

Reproduces the paper's Section 4 workflow end to end for one benchmark:

1. check the flux tuning — pick a beam intensity that keeps observed
   errors below 1e-4 per execution so double-strike events stay
   negligible (Section 4.1);
2. run a strike campaign on the Xeon Phi machine model while HotSpot
   executes (Section 4.2);
3. report SDC/DUE FIT rates with confidence intervals, the spatial
   distribution of the corrupted outputs (Section 4.3), and the FIT
   reduction under accepted error tolerances (Section 4.4);
4. extrapolate to a Trinity-sized machine (19,000 boards).

Run:  python examples/beam_day.py
"""

from repro.analysis import fit_reduction_curve, project_machine, TRINITY_BOARDS
from repro.beam import BeamExperiment, BeamSession, LanceBeam, estimate_fit
from repro.faults import Outcome
from repro.util.rng import derive_rng
from repro.util.tables import format_series, format_table

TRIALS = 800
BENCHMARK = "hotspot"


def main() -> None:
    # --- 1. flux tuning ----------------------------------------------------
    beam = LanceBeam(flux_n_cm2_s=1.0e6)
    session = BeamSession(beam, execution_seconds=1.0)
    stats = session.simulate(20_000, derive_rng(7, "session"))
    print(
        f"beam tuning at {beam.flux_n_cm2_s:.1e} n/cm2/s: "
        f"{stats.strikes_per_execution:.2e} strikes/execution, "
        f"{stats.multi_strike_fraction:.2e} multi-strike executions"
    )
    max_flux = session.max_flux_for_error_rate(1e-4, visible_probability=0.3)
    print(f"flux keeping errors/execution below 1e-4: {max_flux:.2e} n/cm2/s")

    # --- 2. strike campaign --------------------------------------------------
    print(f"\nirradiating {BENCHMARK} for {TRIALS} strike trials ...")
    experiment = BeamExperiment(BENCHMARK, seed=2016)
    campaign = experiment.run_campaign(TRIALS)

    # --- 3. FIT report -------------------------------------------------------
    report = estimate_fit(campaign, beam=beam)
    print(
        f"\nSDC FIT {report.sdc.fit:.1f} "
        f"[{report.sdc.lower:.1f}, {report.sdc.upper:.1f}] "
        f"({report.sdc.events} events)   "
        f"DUE FIT {report.due.fit:.1f} "
        f"[{report.due.lower:.1f}, {report.due.upper:.1f}]"
    )
    print(
        f"equivalent exposure: {report.equivalent_beam_hours:.1f} beam hours, "
        f"{report.equivalent_natural_hours / 8766:.0f} years natural"
    )

    rows = [
        [pattern, estimate.fit]
        for pattern, estimate in report.sdc_by_pattern.items()
        if estimate.events
    ]
    print()
    print(format_table(["pattern", "FIT"], rows, title="spatial distribution of SDCs"))

    sdc_errors = [r.sdc_metrics["max_rel_err"] for r in campaign.sdc_records()]
    if sdc_errors:
        curve = fit_reduction_curve(sdc_errors)
        print()
        print(
            format_series(
                "FIT reduction vs tolerance (tol %, reduction %)",
                [100 * t for t, _ in curve],
                [r for _, r in curve],
                floatfmt=".0f",
            )
        )

    # --- 4. machine-scale view ----------------------------------------------
    due_projection = project_machine(max(report.due.fit, 1e-9), TRINITY_BOARDS)
    print(
        f"\nat Trinity scale ({TRINITY_BOARDS} boards): one {BENCHMARK} DUE "
        f"every {due_projection.mtbf_days:.1f} days"
    )
    masked = campaign.probability(Outcome.MASKED)
    print(f"(architectural + program masking absorbed {masked:.0%} of strikes)")


if __name__ == "__main__":
    main()
