#!/usr/bin/env python
"""Selective hardening driven by criticality (the paper's Section 6.1).

1. Run an injection campaign against LUD and grade its code portions.
2. Compare the paper's recommended plan (residue mod 15 on the
   matrices, duplication-with-comparison on the control variables)
   against a naive whole-program RMT plan: coverage vs. overhead.
3. Demonstrate the ABFT building block correcting a real corrupted
   matrix product.

Run:  python examples/selective_hardening.py
"""

import numpy as np

from repro.analysis import criticality_by_portion
from repro.carolfi import CampaignConfig, run_campaign
from repro.hardening import (
    RECOMMENDED_PLANS,
    HardeningPlan,
    Technique,
    abft_check,
    abft_matmul,
    evaluate_plan,
)
from repro.util.rng import derive_rng
from repro.util.tables import format_table

INJECTIONS = 400


def main() -> None:
    print(f"injecting {INJECTIONS} faults into lud ...")
    result = run_campaign(CampaignConfig(benchmark="lud", injections=INJECTIONS, seed=11))

    print()
    rows = [
        [r.portion, r.injections, 100.0 * r.sdc.value, 100.0 * r.due.value]
        for r in criticality_by_portion(result.records)
    ]
    print(format_table(["portion", "faults", "SDC %", "DUE %"], rows, floatfmt=".1f"))

    paper_plan = RECOMMENDED_PLANS["lud"]
    blanket_plan = HardeningPlan(
        "lud",
        {"matrices": Technique.RMT, "control": Technique.RMT},
        rationale="naive: redundant execution over everything",
    )
    print()
    plan_rows = []
    for plan in (paper_plan, blanket_plan):
        report = evaluate_plan(result.records, plan)
        portion_bytes = {"matrices": 48 * 48 * 4 * 2.0, "control": 12 * 3 * 8.0}
        plan_rows.append(
            [
                plan.rationale[:46],
                100.0 * report.coverage_fraction,
                100.0 * report.expected_detection_fraction,
                100.0 * plan.memory_overhead_fraction(portion_bytes),
            ]
        )
    print(
        format_table(
            ["plan", "covered %", "detected %", "mem overhead %"],
            plan_rows,
            title="selective vs blanket hardening",
            floatfmt=".1f",
        )
    )

    # --- ABFT demo -----------------------------------------------------------
    rng = derive_rng(3, "abft-demo")
    a = rng.standard_normal((24, 24))
    b = rng.standard_normal((24, 24))
    c, row_check, col_check = abft_matmul(a, b)
    c[5, 17] += 3.0  # a beam strike lands in the output tile
    verdict = abft_check(c, row_check, col_check)
    fixed = np.allclose(verdict.matrix, a @ b, atol=1e-8)
    print(
        f"\nABFT demo: corrupted C[5,17] -> outcome={verdict.outcome.value}, "
        f"corrections={verdict.corrections}, matches A@B again: {fixed}"
    )


if __name__ == "__main__":
    main()
