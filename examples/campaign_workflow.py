#!/usr/bin/env python
"""The artifact's experiment workflow, end to end (Appendix A.4).

The paper's artifact works in three moves: write a configuration file,
run the fault injector with it (plus a repetition count), then run the
parser scripts over the persisted logs.  A physical beam campaign adds
a sizing step: how much beam time buys the statistics you need.

This example does all four on the reproduction:

1. size a beam campaign for the paper's CI criterion (>=100 events,
   sub-10% intervals) with the statistics-driven planner;
2. write an artifact-style CAROL-FI config file;
3. run it through the same entry point the ``repro-carolfi`` CLI uses;
4. re-derive every summary from the JSONL log alone with the parser
   tooling (``repro-parse-logs``).

Run:  python examples/campaign_workflow.py
"""

import io
import tempfile
from pathlib import Path

from repro.beam.planner import plan_campaign
from repro.carolfi.configfile import run_from_config
from repro.logtools import summarize_injection_log

CONFIG_TEMPLATE = """
[carol-fi]
benchmark = lud
injections = 400
seed = 2017
fault_models = single, double, random, zero
policy = weighted
log = {log}

[benchmark.params]
n = 48
block = 4
"""


def main() -> None:
    # --- 1. plan the beam time ------------------------------------------------
    print("sizing a beam campaign for the paper's CI criterion ...")
    plan = plan_campaign(("dgemm", "lud"), seed=2017, pilot_trials=150)
    print(plan.render())

    # --- 2 + 3. config-file driven injection campaign -------------------------
    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "lud.jsonl"
        config_path = Path(tmp) / "lud.conf"
        config_path.write_text(CONFIG_TEMPLATE.format(log=log_path))
        print(f"\nrunning CAROL-FI from {config_path.name} (300 repetitions) ...")
        result = run_from_config(config_path, repetitions=300)
        shares = result.outcome_fractions()
        print(
            f"  outcomes: masked {shares['masked']:.1%}  "
            f"SDC {shares['sdc']:.1%}  DUE {shares['due']:.1%}"
        )

        # --- 4. everything again, from the log alone -------------------------
        print("\nre-deriving the summaries from the persisted log:")
        buffer = io.StringIO()
        summarize_injection_log([str(log_path)], buffer)
        print(buffer.getvalue())


if __name__ == "__main__":
    main()
