#!/usr/bin/env python
"""CLAMR under the microscope: AMR dynamics and a targeted injection.

1. Run the adaptive shallow-water simulation and watch the mesh refine
   around the expanding dam-break wave (the paper: CLAMR is most
   sensitive "when the number of active cells reaches its maximum").
2. Render the final water height as ASCII art.
3. Interrupt a fresh run mid-execution CAROL-FI style, corrupt the sort
   permutation (the paper's most SDC-prone CLAMR portion), and report
   what happens downstream.

Run:  python examples/clamr_wave.py
"""

import numpy as np

from repro.benchmarks import Clamr
from repro.carolfi import Supervisor
from repro.faults import FaultModel, Outcome
from repro.util.rng import derive_rng

_SHADES = " .:-=+*#%@"


def ascii_field(grid: np.ndarray) -> str:
    lo, hi = float(grid.min()), float(grid.max())
    span = max(hi - lo, 1e-12)
    idx = ((grid - lo) / span * (len(_SHADES) - 1)).astype(int)
    return "\n".join("".join(_SHADES[v] for v in row) for row in idx)


def main() -> None:
    bench = Clamr()
    state = bench.make_state(derive_rng(1, "wave"))
    print("timestep  cells")
    for index in range(bench.num_steps(state)):
        bench.step(state, index)
        if index % 6 == 5:
            print(f"{index // 6 + 1:8d}  {int(state.mesh.ncells[()]):5d}")
    print("\nfinal water height:")
    print(ascii_field(bench.output(state)))

    # --- targeted injection into the Sort portion ---------------------------
    print("\ninjecting a Random fault into the sort permutation mid-run ...")
    supervisor = Supervisor(Clamr(), seed=99)
    outcomes = {o: 0 for o in Outcome.all()}
    shown = False
    for run_index in range(24):
        # Interrupt at a gather phase (phase 1 of some timestep) where
        # the permutation is live and pending consumption.
        step = 6 * (run_index % 9) + 1
        record = supervisor.run_one(run_index, FaultModel.RANDOM, interrupt_step=step)
        outcomes[record.outcome] += 1
        if not shown and record.site.var_class == "sort":
            detail = record.due_detail or record.sdc_metrics
            print(
                f"  e.g. run {run_index}: hit {record.site.variable} "
                f"(window {record.time_window + 1}) -> {record.outcome.value} {detail}"
            )
            shown = True
    print(
        "  outcomes over 24 mid-gather injections: "
        + ", ".join(f"{o.value} {n}" for o, n in outcomes.items())
    )


if __name__ == "__main__":
    main()
