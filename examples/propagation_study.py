#!/usr/bin/env python
"""How does one fault become many wrong outputs?

The paper observes that errors in iterative HPC codes "not only tend to
propagate, but also tend to compound", while HotSpot's open-system
stencil attenuates them.  This example makes that visible: it injects
one Random fault into LUD (in-place, compounding) and one into HotSpot
(dissipating), traces the corrupted-element count step by step, and
renders both trajectories as ASCII sparklines.

Run:  python examples/propagation_study.py
"""

from repro.analysis.propagation import propagation_profile
from repro.benchmarks import create
from repro.faults import FaultModel

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    top = max(values) or 1.0
    return "".join(_BARS[int(v / top * (len(_BARS) - 1))] for v in values)


def trace(name: str, seeds: range) -> None:
    bench = create(name)
    print(f"\n=== {name}")
    shown = 0
    for seed in seeds:
        profile = propagation_profile(bench, seed=seed, model=FaultModel.RANDOM)
        if profile.crashed:
            print(
                f"  seed {seed}: {profile.site.variable} -> DUE after "
                f"{len(profile.points)} steps ({profile.crash_detail.split(':')[0]})"
            )
            shown += 1
        elif profile.final_wrong > 0:
            counts = [p.wrong_elements for p in profile.points]
            rels = [p.max_rel_err for p in profile.points]
            print(
                f"  seed {seed}: {profile.site.variable} "
                f"wrong {counts[0]} -> {counts[-1]} elements  |{sparkline(counts)}|"
            )
            print(
                f"          max rel err {rels[0]:.2e} -> {rels[-1]:.2e}  "
                f"(monotone growth {profile.monotone_growth_fraction():.2f})"
            )
            shown += 1
        if shown >= 3:
            break


def main() -> None:
    trace("lud", range(30))      # in-place factorisation: compounds
    trace("hotspot", range(30))  # open-system stencil: spreads but attenuates
    trace("clamr", range(30))    # AMR pipeline: spreads or aborts
    print(
        "\nLUD's corruption grows monotonically (compounding); HotSpot's "
        "footprint widens while its relative error shrinks (attenuation); "
        "CLAMR either contaminates the mesh or trips its own sanity checks."
    )


if __name__ == "__main__":
    main()
