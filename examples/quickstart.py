#!/usr/bin/env python
"""Quickstart: a CAROL-FI injection campaign in thirty lines.

Runs 400 high-level fault injections against the blocked DGEMM
benchmark — rotating the paper's four fault models (Single, Double,
Random, Zero) — and prints the outcome shares (Figure 4's bars for one
benchmark), the per-fault-model SDC/DUE vulnerability, and the most
critical code portions.

Run:  python examples/quickstart.py
"""

from repro.analysis import criticality_by_portion, pvf_by_fault_model
from repro.carolfi import CampaignConfig, run_campaign
from repro.faults import Outcome
from repro.util.tables import format_table

INJECTIONS = 400


def main() -> None:
    config = CampaignConfig(benchmark="dgemm", injections=INJECTIONS, seed=2017)
    print(f"injecting {INJECTIONS} faults into {config.benchmark} ...")
    result = run_campaign(config)

    shares = result.outcome_fractions()
    print(
        f"\noutcomes: masked {shares['masked']:.1%}  "
        f"SDC {shares['sdc']:.1%}  DUE {shares['due']:.1%}"
    )

    rows = []
    sdc = pvf_by_fault_model(result.records, Outcome.SDC)
    due = pvf_by_fault_model(result.records, Outcome.DUE)
    for model in ("single", "double", "random", "zero"):
        rows.append(
            [model, 100.0 * sdc[model].value, 100.0 * due[model].value]
        )
    print()
    print(format_table(["fault model", "SDC PVF %", "DUE PVF %"], rows, floatfmt=".1f"))

    print()
    portion_rows = [
        [r.portion, r.injections, 100.0 * r.sdc.value, 100.0 * r.due.value]
        for r in criticality_by_portion(result.records)
    ]
    print(
        format_table(
            ["portion", "faults", "SDC %", "DUE %"],
            portion_rows,
            title="criticality of code portions (harden the top row first)",
            floatfmt=".1f",
        )
    )


if __name__ == "__main__":
    main()
