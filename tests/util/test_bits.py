"""Bit-manipulation primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bits import (
    bit_width,
    flip_bit_inplace,
    flip_bits_inplace,
    get_bit,
    randomize_element_inplace,
    zero_element_inplace,
)

DTYPES = [np.int8, np.int32, np.int64, np.float32, np.float64, np.uint16]


@pytest.mark.parametrize(
    "dtype,width",
    [(np.int8, 8), (np.int32, 32), (np.int64, 64), (np.float32, 32), (np.float64, 64)],
)
def test_bit_width(dtype, width):
    assert bit_width(dtype) == width


def test_flip_bit_changes_integer_value():
    arr = np.array([0, 0, 0], dtype=np.int64)
    flip_bit_inplace(arr, 1, 3)
    assert arr.tolist() == [0, 8, 0]


def test_flip_bit_is_involution():
    arr = np.array([12345], dtype=np.int64)
    flip_bit_inplace(arr, 0, 17)
    flip_bit_inplace(arr, 0, 17)
    assert arr[0] == 12345


def test_flip_high_bit_makes_int64_negative():
    arr = np.array([1], dtype=np.int64)
    flip_bit_inplace(arr, 0, 63)
    assert arr[0] < 0


def test_flip_sign_bit_of_float64():
    arr = np.array([2.5])
    flip_bit_inplace(arr, 0, 63)
    assert arr[0] == -2.5


def test_flip_low_mantissa_bit_is_tiny():
    arr = np.array([1.0])
    flip_bit_inplace(arr, 0, 0)
    assert arr[0] != 1.0
    assert abs(arr[0] - 1.0) < 1e-12


def test_get_bit_roundtrip():
    arr = np.array([0b1010], dtype=np.int32)
    assert get_bit(arr, 0, 1) == 1
    assert get_bit(arr, 0, 0) == 0
    assert get_bit(arr, 0, 3) == 1


def test_flip_bits_distinct_required():
    arr = np.array([0], dtype=np.int64)
    with pytest.raises(ValueError):
        flip_bits_inplace(arr, 0, [3, 3])


def test_flip_bits_multiple():
    arr = np.array([0], dtype=np.int64)
    flip_bits_inplace(arr, 0, [0, 2])
    assert arr[0] == 5


def test_zero_element():
    arr = np.array([[1.5, 2.5], [3.5, 4.5]])
    zero_element_inplace(arr, 3)
    assert arr[1, 1] == 0.0
    assert arr[0, 0] == 1.5


def test_randomize_element_deterministic(rng):
    a = np.array([0.0, 0.0])
    b = np.array([0.0, 0.0])
    randomize_element_inplace(a, 1, np.random.default_rng(5))
    randomize_element_inplace(b, 1, np.random.default_rng(5))
    assert a[1] == b[1] or (np.isnan(a[1]) and np.isnan(b[1]))
    assert a[0] == 0.0


def test_out_of_range_index_raises():
    arr = np.zeros(4)
    with pytest.raises(IndexError):
        flip_bit_inplace(arr, 4, 0)
    with pytest.raises(IndexError):
        flip_bit_inplace(arr, -1, 0)


def test_out_of_range_bit_raises():
    arr = np.zeros(4, dtype=np.float32)
    with pytest.raises(IndexError):
        flip_bit_inplace(arr, 0, 32)


def test_empty_array_raises():
    with pytest.raises(IndexError):
        zero_element_inplace(np.zeros(0), 0)


def test_non_contiguous_rejected():
    arr = np.zeros((4, 4))[:, ::2]
    with pytest.raises(ValueError):
        flip_bit_inplace(arr, 0, 0)


def test_object_array_rejected():
    arr = np.array([object()])
    with pytest.raises(TypeError):
        flip_bit_inplace(arr, 0, 0)


def test_non_array_rejected():
    with pytest.raises(TypeError):
        flip_bit_inplace([1, 2, 3], 0, 0)


def test_flip_only_touches_target_element():
    arr = np.arange(16, dtype=np.int32)
    before = arr.copy()
    flip_bit_inplace(arr, 7, 5)
    changed = np.flatnonzero(arr != before)
    assert changed.tolist() == [7]


@settings(max_examples=60, deadline=None)
@given(
    index=st.integers(0, 9),
    bit=st.integers(0, 63),
    value=st.integers(-(2**62), 2**62),
)
def test_flip_twice_restores_any_int64(index, bit, value):
    arr = np.full(10, value, dtype=np.int64)
    flip_bit_inplace(arr, index, bit)
    flip_bit_inplace(arr, index, bit)
    assert arr[index] == value


@settings(max_examples=60, deadline=None)
@given(index=st.integers(0, 5), bit=st.integers(0, 31))
def test_flip_changes_exactly_one_bit_float32(index, bit):
    arr = np.linspace(1, 2, 6, dtype=np.float32)
    before = arr.copy().view(np.uint32)
    flip_bit_inplace(arr, index, bit)
    after = arr.view(np.uint32)
    diff = before ^ after
    assert diff[index] == np.uint32(1) << np.uint32(bit)
    assert np.all(np.delete(diff, index) == 0)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_zero_then_value_is_zero_all_dtypes(data):
    dtype = data.draw(st.sampled_from(DTYPES))
    size = data.draw(st.integers(1, 8))
    index = data.draw(st.integers(0, size - 1))
    arr = np.ones(size, dtype=dtype)
    zero_element_inplace(arr, index)
    assert arr[index] == 0
