"""FIT / MTBF / fluence conversions."""

import pytest

from repro.util.units import (
    FIT_HOURS,
    SEA_LEVEL_FLUX_N_CM2_H,
    acceleration_factor,
    cross_section_from_counts,
    fit_from_cross_section,
    fit_to_mtbf_hours,
    mtbf_hours_to_fit,
    natural_hours_covered,
)


def test_reference_flux_is_13():
    assert SEA_LEVEL_FLUX_N_CM2_H == 13.0


def test_cross_section_from_counts():
    assert cross_section_from_counts(10, 1e10) == pytest.approx(1e-9)


def test_cross_section_validates():
    with pytest.raises(ValueError):
        cross_section_from_counts(1, 0.0)
    with pytest.raises(ValueError):
        cross_section_from_counts(-1, 1.0)


def test_fit_from_cross_section():
    # sigma * flux * 1e9: 1e-9 cm^2 at 13 n/cm^2/h -> 13 FIT.
    assert fit_from_cross_section(1e-9) == pytest.approx(13.0)


def test_fit_mtbf_roundtrip():
    fit = 113.0
    mtbf = fit_to_mtbf_hours(fit)
    assert mtbf_hours_to_fit(mtbf) == pytest.approx(fit)


def test_trinity_scale_mtbf_about_11_days():
    # Paper: SDC for LUD (~140 FIT read-off, 113-190 plausible) every
    # 11-12 days at 19,000 boards. 190 FIT x 19,000 boards ~ 11.5 days.
    mtbf_days = fit_to_mtbf_hours(190.0, devices=19_000) / 24.0
    assert 10.0 < mtbf_days < 13.0


def test_mtbf_validates():
    with pytest.raises(ValueError):
        fit_to_mtbf_hours(0.0)
    with pytest.raises(ValueError):
        fit_to_mtbf_hours(10.0, devices=0)
    with pytest.raises(ValueError):
        mtbf_hours_to_fit(-1.0)


def test_acceleration_factor_orders_of_magnitude():
    # acceleration_factor returns natural hours per beam *second*; the
    # dimensionless flux ratio (x3600) is 6-8 orders of magnitude, as
    # the paper states for LANSCE.
    low_ratio = acceleration_factor(1e5) * 3600.0
    high_ratio = acceleration_factor(2.5e6) * 3600.0
    assert 1e6 < low_ratio < 1e8
    assert 1e8 < high_ratio < 1e10


def test_acceleration_validates():
    with pytest.raises(ValueError):
        acceleration_factor(0.0)
    with pytest.raises(ValueError):
        acceleration_factor(1e5, natural_flux_n_cm2_h=0.0)


def test_natural_hours_covered_57000_years():
    # 500 beam hours at ~2.5e6 n/cm^2/s at least: fluence = 4.5e12;
    # natural hours = fluence / 13 ~ 3.5e11 h >> 5e8 h (57k years).
    fluence = 2.5e6 * 500 * 3600
    hours = natural_hours_covered(fluence)
    years = hours / 8766.0
    assert years > 57_000


def test_natural_hours_validates():
    with pytest.raises(ValueError):
        natural_hours_covered(-1.0)
    with pytest.raises(ValueError):
        natural_hours_covered(1.0, natural_flux_n_cm2_h=0.0)


def test_fit_hours_constant():
    assert FIT_HOURS == 1e9
