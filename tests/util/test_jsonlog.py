"""JSONL campaign log store."""

import json

import numpy as np
import pytest

from repro.util.jsonlog import JsonlLog, dump_records, load_records, load_records_tolerant


def test_append_and_iterate(tmp_path):
    log = JsonlLog(tmp_path / "log.jsonl")
    log.append({"a": 1})
    log.append({"a": 2})
    assert [r["a"] for r in log] == [1, 2]
    assert len(log) == 2


def test_extend(tmp_path):
    log = JsonlLog(tmp_path / "log.jsonl")
    log.extend([{"x": i} for i in range(5)])
    assert len(log) == 5


def test_numpy_values_sanitised(tmp_path):
    log = JsonlLog(tmp_path / "log.jsonl")
    log.append(
        {
            "scalar": np.int64(7),
            "floaty": np.float32(1.5),
            "array": np.arange(3),
            "nested": {"v": np.float64(2.5), "list": [np.int32(1)]},
        }
    )
    record = next(iter(log))
    assert record["scalar"] == 7
    assert record["floaty"] == 1.5
    assert record["array"] == [0, 1, 2]
    assert record["nested"]["v"] == 2.5
    assert record["nested"]["list"] == [1]


def test_missing_file_iterates_empty(tmp_path):
    log = JsonlLog(tmp_path / "nope.jsonl")
    assert list(log) == []
    assert len(log) == 0


def test_dump_overwrites(tmp_path):
    path = tmp_path / "out.jsonl"
    dump_records(path, [{"v": 1}])
    dump_records(path, [{"v": 2}])
    assert load_records(path) == [{"v": 2}]


def test_load_skips_blank_lines(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n\n{"a": 2}\n')
    assert len(load_records(path)) == 2


def test_creates_parent_dirs(tmp_path):
    log = JsonlLog(tmp_path / "deep" / "dir" / "log.jsonl")
    log.append({"ok": True})
    assert len(log) == 1


def test_records_durable_without_close(tmp_path):
    """Every append is flushed, so a second reader sees it immediately."""
    log = JsonlLog(tmp_path / "log.jsonl")
    log.append({"v": 1})
    assert load_records(tmp_path / "log.jsonl") == [{"v": 1}]  # handle still open
    log.close()


def test_context_manager_appends(tmp_path):
    with JsonlLog(tmp_path / "log.jsonl") as log:
        log.append({"v": 1})
    assert load_records(tmp_path / "log.jsonl") == [{"v": 1}]


def test_partial_trailing_line_skipped(tmp_path):
    """A writer killed mid-append must not poison later reads."""
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n{"a": 2}\n{"a": 3, "tru', encoding="utf-8")
    assert load_records(path) == [{"a": 1}, {"a": 2}]
    assert [r["a"] for r in JsonlLog(path)] == [1, 2]


def test_partial_trailing_line_strict_raises(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n{"a": 2, "tru', encoding="utf-8")
    with pytest.raises(json.JSONDecodeError):
        load_records(path, strict=True)


def test_interior_corruption_still_raises(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\nnot json at all\n{"a": 3}\n', encoding="utf-8")
    with pytest.raises(json.JSONDecodeError):
        load_records(path)


def test_append_after_close_reopens(tmp_path):
    log = JsonlLog(tmp_path / "log.jsonl")
    log.append({"v": 1})
    log.close()
    log.append({"v": 2})
    log.close()
    assert len(log) == 2


def test_tolerant_reader_counts_corrupt_interior_lines(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text(
        '{"a": 1}\nnot json at all\n{"b": 2}\n[1, 2, 3]\n{"c": 3}\n',
        encoding="utf-8",
    )
    records, skipped = load_records_tolerant(path)
    assert records == [{"a": 1}, {"b": 2}, {"c": 3}]
    assert skipped == 2  # one unparseable line, one non-dict record


def test_tolerant_reader_missing_file(tmp_path):
    assert load_records_tolerant(tmp_path / "absent.jsonl") == ([], 0)


def test_tolerant_reader_clean_file(tmp_path):
    path = tmp_path / "log.jsonl"
    with JsonlLog(path) as log:
        log.extend([{"i": i} for i in range(3)])
    records, skipped = load_records_tolerant(path)
    assert len(records) == 3 and skipped == 0
