"""Deterministic named random streams."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, spawn_rngs


def test_same_path_same_stream():
    a = derive_rng(7, "beam", "dgemm").random(8)
    b = derive_rng(7, "beam", "dgemm").random(8)
    assert np.array_equal(a, b)


def test_different_seed_different_stream():
    a = derive_rng(7, "x").random(8)
    b = derive_rng(8, "x").random(8)
    assert not np.array_equal(a, b)


def test_different_names_different_stream():
    a = derive_rng(7, "x").random(8)
    b = derive_rng(7, "y").random(8)
    assert not np.array_equal(a, b)


def test_path_order_matters():
    a = derive_rng(7, "a", "b").random(8)
    b = derive_rng(7, "b", "a").random(8)
    assert not np.array_equal(a, b)


def test_nested_path_differs_from_flat():
    a = derive_rng(7, "ab").random(4)
    b = derive_rng(7, "a", "b").random(4)
    assert not np.array_equal(a, b)


def test_spawn_count_and_independence():
    streams = spawn_rngs(3, 5, "workers")
    assert len(streams) == 5
    draws = [s.random(4) for s in streams]
    for i in range(5):
        for j in range(i + 1, 5):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_deterministic():
    a = spawn_rngs(3, 2, "w")[1].random(4)
    b = spawn_rngs(3, 2, "w")[1].random(4)
    assert np.array_equal(a, b)


def test_spawn_zero_is_empty():
    assert spawn_rngs(3, 0, "w") == []


def test_spawn_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(3, -1, "w")
